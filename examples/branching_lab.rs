//! Cheap branching for exploratory processing (paper §1: "the same
//! computation may proceed independently on different versions of the
//! blob"; §2.1 BRANCH).
//!
//! A dataset is ingested once; two alternative "processing algorithms"
//! then evolve it on independent branches — each just a cloned-cheap
//! [`blobseer::Blob`] handle. The storage statistics show what "cheap"
//! means: branches share all untouched pages and metadata with the
//! trunk.
//!
//! Run with: `cargo run --example branching_lab`

use blobseer::{Blob, BlobSeer, ByteRange, Version};
use blobseer_workloads::AppendStream;

const PAGE: u64 = 4096;
const SEED: u64 = 0xda7a;

fn main() {
    let store = BlobSeer::builder()
        .page_size(PAGE)
        .data_providers(10)
        .metadata_providers(8)
        .build()
        .unwrap();

    // Ingest a 1 MiB dataset as a stream of appends.
    let trunk = store.create();
    let mut stream = AppendStream::new(SEED, 8 * 1024, 64 * 1024);
    let mut last = Version(0);
    while stream.produced() < 1 << 20 {
        last = trunk.append(&stream.next_chunk()).unwrap();
    }
    trunk.sync(last).unwrap();
    let base = trunk.latest().unwrap();
    let size = base.len();
    let pages_before = store.stats().physical_pages;
    println!(
        "trunk {}: {size} bytes in {pages_before} pages, snapshot {}",
        trunk.id(),
        base.version()
    );

    // Two algorithms branch from the same snapshot and diverge.
    let upper = trunk.branch(base.version()).unwrap();
    let xored = trunk.branch(base.version()).unwrap();
    let transform_a = |b: u8| b.to_ascii_uppercase();
    let transform_b = |b: u8| b ^ 0xFF;
    let va = apply(&upper, base.version(), size, transform_a);
    let vb = apply(&xored, base.version(), size, transform_b);

    // Each branch sees its own transformation of the region...
    let sample_at = window_offset(size) + 1024; // inside the rewritten window
    let sample = ByteRange::new(sample_at, 16);
    let original = AppendStream::expected(SEED, sample_at, 16);
    let got_a = upper.snapshot(va).unwrap().read(sample).unwrap();
    let got_b = xored.snapshot(vb).unwrap().read(sample).unwrap();
    assert_eq!(&got_a[..], &original.iter().map(|&b| transform_a(b)).collect::<Vec<_>>()[..]);
    assert_eq!(&got_b[..], &original.iter().map(|&b| transform_b(b)).collect::<Vec<_>>()[..]);
    // ...while the trunk and the shared history are untouched.
    assert_eq!(&base.read(sample).unwrap()[..], &original[..]);
    assert_eq!(&upper.snapshot(base.version()).unwrap().read(sample).unwrap()[..], &original[..]);
    println!(
        "branches diverged: {} -> uppercased, {} -> xored; trunk intact",
        upper.id(),
        xored.id()
    );

    // The bill: both branches rewrote a 128 KiB window (32 pages each);
    // everything else is shared.
    let stats = store.stats();
    let added = stats.physical_pages - pages_before;
    println!(
        "physical pages added by both branches: {added} \
         (vs {} for two full copies)",
        2 * pages_before
    );
    assert!(added <= 2 * 32 + 4, "branching must not copy the blob");
    println!("metadata: {} nodes across trunk + 2 branches", stats.metadata_nodes);
}

/// Page-aligned start of the 128 KiB window the branches rewrite.
fn window_offset(size: u64) -> u64 {
    (size / 2) & !(PAGE - 1)
}

/// "Process" a 128 KiB window in the middle of the branch: read from the
/// branch point, transform, overwrite in place on the branch.
fn apply(branch: &Blob, base: Version, size: u64, f: impl Fn(u8) -> u8) -> Version {
    let window = 128 * 1024;
    let offset = window_offset(size);
    let data = branch.snapshot(base).unwrap().read(ByteRange::new(offset, window)).unwrap();
    let transformed: Vec<u8> = data.iter().map(|&b| f(b)).collect();
    let v = branch.write(&transformed, offset).unwrap();
    branch.sync(v).unwrap();
    v
}
