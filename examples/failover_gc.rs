//! Operating a BlobSeer deployment: replication, provider failure and
//! recovery, and version garbage collection.
//!
//! The paper defers "volatility and failures" to future work (§6) and
//! mentions replication as an open question (§3.2); this example shows
//! the extensions this reproduction builds on top of the core protocol.
//!
//! Run with: `cargo run --example failover_gc`

use blobseer::{BlobError, BlobSeer, ProviderId, Version};

const PAGE: u64 = 4096;

fn main() {
    // 8 providers, every page stored twice, node cache on.
    let store = BlobSeer::builder()
        .page_size(PAGE)
        .data_providers(8)
        .metadata_providers(8)
        .replication(2)
        .metadata_cache(10_000)
        .build()
        .unwrap();
    // This example drives the flat, id-keyed facade (the wrappers over
    // the handle API) — ids are what an ops tool would hold.
    let blob = store.create().id();

    // A day of "log" traffic: 20 appends + 10 compacting overwrites.
    let mut last = Version(0);
    for i in 0..20u8 {
        last = store.append(blob, &vec![i; PAGE as usize * 2]).unwrap();
    }
    for i in 0..10u8 {
        last = store.write(blob, &vec![100 + i; PAGE as usize], u64::from(i) * 2 * PAGE).unwrap();
    }
    store.sync(blob, last).unwrap();
    let size = store.get_size(blob, last).unwrap();
    println!(
        "ingested: {} versions, {} bytes, {} physical pages (x2 replication)",
        last,
        size,
        store.stats().physical_pages
    );

    // --- Failure: take a provider down mid-flight. ---
    store.fail_provider(ProviderId(3)).unwrap();
    let all = store.read(blob, last, 0, size).unwrap();
    println!("provider 3 down: full {}-byte read still served from replicas", all.len());
    // Writes keep working too (allocation skips the failed node).
    let during = store.append(blob, b"written during the outage").unwrap();
    store.sync(blob, during).unwrap();
    store.recover_provider(ProviderId(3)).unwrap();
    println!("provider 3 recovered; {} now at {}", blob, during);

    // --- Garbage collection: retire everything before v25. ---
    let keep_from = Version(25);
    let before = store.stats();
    let report = store.retire_versions(blob, keep_from).unwrap();
    let after = store.stats();
    println!(
        "gc: retired v1..v24 -> {} nodes and {} pages reclaimed ({} bytes with replicas)",
        report.nodes_removed, report.pages_removed, report.bytes_reclaimed
    );
    println!(
        "    physical pages {} -> {}, metadata nodes {} -> {}",
        before.physical_pages, after.physical_pages, before.metadata_nodes, after.metadata_nodes
    );

    // Retired versions answer with a clean, typed error...
    match store.read(blob, Version(5), 0, 1) {
        Err(BlobError::VersionRetired { version, .. }) => {
            println!("reading retired {version}: VersionRetired (as designed)");
        }
        other => panic!("expected VersionRetired, got {other:?}"),
    }
    // ...while every retained snapshot is fully intact.
    for v in keep_from.raw()..=during.raw() {
        let v = Version(v);
        let sz = store.get_size(blob, v).unwrap();
        store.read(blob, v, 0, sz).unwrap();
    }
    println!("all retained snapshots verified readable");

    // The metadata cache quietly absorbed most node fetches.
    let meta = store.stats().metadata;
    println!(
        "metadata DHT saw {} gets / {} puts (cache in front)",
        meta.total_gets, meta.total_puts
    );
}
