//! Writer fault tolerance, end to end: a writer dies mid-update, the
//! blob wedges, the lease sweeper aborts the hole, ingest recovers.
//!
//! ```sh
//! cargo run --release --example writer_crash
//! ```

use blobseer::{BlobError, BlobSeer, ByteRange, Bytes, CrashPoint};
use blobseer_workloads::{AppendStream, CrashyIngest};

fn main() {
    let store = BlobSeer::builder()
        .page_size(64 * 1024)
        .data_providers(8)
        .metadata_providers(4)
        .pipeline_threads(4)
        .lease_ttl_ticks(256)
        .build()
        .expect("valid config");
    let blob = store.create();

    // A healthy prefix.
    let v1 = blob.append(&vec![0xAB; 128 * 1024]).expect("append");
    blob.sync(v1).expect("publish");
    println!("healthy: v1 published, {} bytes", blob.size(v1).unwrap());

    // The writer of v2 dies right after its version is assigned...
    let dead = blob
        .crash_append(Bytes::from(vec![0xEE; 128 * 1024]), CrashPoint::AfterPrepare)
        .expect("crash injection");
    // ...and two later writers finish their work but cannot publish.
    let p3 = blob.append_pipelined(Bytes::from(vec![3u8; 128 * 1024])).expect("append");
    let p4 = blob.append_pipelined(Bytes::from(vec![4u8; 128 * 1024])).expect("append");
    let (v3, v4) = (p3.wait().expect("complete"), p4.wait().expect("complete"));
    println!(
        "wedged: {dead:?} holds the order; v3/v4 complete but GET_RECENT = {:?}",
        blob.recent_version().unwrap()
    );

    // Production recovery: the lease lapses, the sweeper aborts.
    store.advance_lease_clock(store.config().lease_ttl_ticks + 1);
    let swept = store.sweep_expired_leases();
    println!("sweep: aborted {:?}", swept.aborted);
    blob.sync(v4).expect("later versions publish over the hole");
    println!(
        "recovered: GET_RECENT = {:?} ({v3:?}, {v4:?} published)",
        blob.recent_version().unwrap()
    );

    // The hole is typed, and later snapshots read it as zeros.
    match blob.snapshot(dead) {
        Err(BlobError::VersionAborted { version, .. }) => {
            println!("the hole: snapshot({version:?}) -> VersionAborted (as designed)")
        }
        other => panic!("expected a typed hole, got {other:?}"),
    }
    let snap = blob.snapshot(v4).expect("published");
    let hole = snap.read(ByteRange::new(128 * 1024, 128 * 1024)).expect("read");
    assert!(hole.iter().all(|&b| b == 0), "the hole reads as zeros");
    println!("v4 spans {} bytes; the dead writer's region reads as zeros", snap.len());

    // The same story at scale, via the crash-injecting ingest driver:
    // every 6th writer dies, content stays verifiable throughout.
    let blob2 = store.create();
    let mut stream = AppendStream::new(7, 32 * 1024, 96 * 1024);
    let report = CrashyIngest::new(4, 6).run(&store, &blob2, &mut stream, 30).expect("ingest");
    let snap = blob2.snapshot(report.last).expect("published");
    CrashyIngest::verify(&snap, 7, &report).expect("verified");
    println!(
        "crashy ingest: {} appends, {} writers died, {} bytes verified, {} versions aborted total",
        report.appends,
        report.crashed,
        report.bytes,
        store.stats().vm.aborted
    );

    // Every one of those deaths leaked pages no tree references (the
    // dead writers' pre-leaf stores). The orphan scrubber takes them
    // back — and a second pass proves nothing live was touched.
    let before = store.stats().physical_bytes;
    let scrub = store.scrub_orphans().expect("scrub");
    println!(
        "scrub: reclaimed {} orphaned pages / {} bytes (storage {before} -> {} bytes)",
        scrub.pages_reclaimed,
        scrub.bytes_reclaimed,
        store.stats().physical_bytes
    );
    assert!(scrub.pages_reclaimed > 0, "writer deaths must have leaked");
    assert_eq!(store.scrub_orphans().expect("rescrub").pages_reclaimed, 0, "fixpoint");
    CrashyIngest::verify(&blob2.snapshot(report.last).expect("published"), 7, &report)
        .expect("content intact after the scrub");
    println!("all surviving content re-verified after the scrub");
}
