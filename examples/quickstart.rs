//! Quickstart: the full BlobSeer primitive set in one sitting, through
//! the handle API — `Blob` to mutate, `Snapshot` to read,
//! `PendingWrite` to pipeline.
//!
//! Run with: `cargo run --example quickstart`

use blobseer::{BlobSeer, ByteRange, Bytes, Version};

fn main() {
    // An in-process deployment: 8 data providers, 8 metadata providers,
    // 4 KiB pages (small, so this demo exercises multi-page paths).
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(8)
        .metadata_providers(8)
        .build()
        .expect("valid configuration");

    // CREATE: a new blob starts as the empty snapshot, version 0.
    let blob = store.create();
    println!("created {}", blob.id());

    // APPEND twice; each append produces a new snapshot version.
    let v1 = blob.append(&[b'a'; 10_000]).unwrap();
    let v2 = blob.append(&[b'b'; 10_000]).unwrap();
    println!("appended 10 KB twice -> versions {v1}, {v2}");

    // SYNC = read-your-writes; a Snapshot then pins one version and
    // caches the version-manager resolution, so every read below is
    // VM-free.
    blob.sync(v2).unwrap();
    let snap = blob.snapshot(v2).unwrap();
    assert_eq!(snap.len(), 20_000);

    // WRITE overwrites a range (unaligned offsets are fine), creating v3.
    let v3 = blob.write(&[b'X'; 5_000], 7_500).unwrap();
    blob.sync(v3).unwrap();

    // Every version remains readable — versioning is the whole point.
    let before = snap.read(ByteRange::new(7_500, 5_000)).unwrap();
    let after = blob.snapshot(v3).unwrap().read(ByteRange::new(7_500, 5_000)).unwrap();
    assert!(before.iter().all(|&b| b == b'a' || b == b'b'));
    assert!(after.iter().all(|&b| b == b'X'));
    println!("v2 keeps the old bytes, v3 sees the overwrite");

    // Zero-copy scatter read: page-backed windows instead of a gather.
    let scatter = snap.read_scatter(ByteRange::new(0, 12_288)).unwrap();
    println!(
        "scatter read of 12 KiB: {} refcounted page windows, no contiguous buffer",
        scatter.segments().len()
    );

    // Pipelined appends: versions are assigned in call order while the
    // metadata work overlaps on the engine's pipeline pool.
    let pending: Vec<_> = (0..4u8)
        .map(|i| blob.append_pipelined(Bytes::from(vec![b'p' + i; 4096])).unwrap())
        .collect();
    let last = pending.into_iter().map(|p| p.wait().unwrap()).max().unwrap();
    blob.sync(last).unwrap();
    println!("4 pipelined appends in flight -> published up to {last}");

    // GET_RECENT names a published version for polling readers.
    let recent = blob.recent_version().unwrap();
    assert_eq!(recent, Version(7));

    // BRANCH forks cheaply: no data or metadata is copied.
    let fork = blob.branch(v2).unwrap();
    let f3 = fork.append(&[b'z'; 1_000]).unwrap();
    fork.sync(f3).unwrap();
    println!(
        "branched at {v2}: fork grew to {} bytes while {} stayed at {} bytes",
        fork.latest().unwrap().len(),
        blob.id(),
        blob.latest().unwrap().len(),
    );

    // The storage bill shows the sharing: all those versions of a 20 KB
    // blob cost nowhere near a full copy each.
    let stats = store.stats();
    println!(
        "physical: {} pages / {} bytes; metadata nodes: {}",
        stats.physical_pages, stats.physical_bytes, stats.metadata_nodes
    );
}
