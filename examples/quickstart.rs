//! Quickstart: the full BlobSeer primitive set in one sitting.
//!
//! Run with: `cargo run --example quickstart`

use blobseer::{BlobSeer, Version};

fn main() {
    // An in-process deployment: 8 data providers, 8 metadata providers,
    // 4 KiB pages (small, so this demo exercises multi-page paths).
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(8)
        .metadata_providers(8)
        .build()
        .expect("valid configuration");

    // CREATE: a new blob starts as the empty snapshot, version 0.
    let blob = store.create();
    println!("created {blob}");

    // APPEND twice; each append produces a new snapshot version.
    let v1 = store.append(blob, &[b'a'; 10_000]).unwrap();
    let v2 = store.append(blob, &[b'b'; 10_000]).unwrap();
    println!("appended 10 KB twice -> versions {v1}, {v2}");

    // SYNC = read-your-writes: wait for publication, then read.
    store.sync(blob, v2).unwrap();
    assert_eq!(store.get_size(blob, v2).unwrap(), 20_000);

    // WRITE overwrites a range (unaligned offsets are fine), creating v3.
    let v3 = store.write(blob, &[b'X'; 5_000], 7_500).unwrap();
    store.sync(blob, v3).unwrap();

    // Every version remains readable — versioning is the whole point.
    let before = store.read(blob, v2, 7_500, 5_000).unwrap();
    let after = store.read(blob, v3, 7_500, 5_000).unwrap();
    assert!(before.iter().all(|&b| b == b'a' || b == b'b'));
    assert!(after.iter().all(|&b| b == b'X'));
    println!("v2 keeps the old bytes, v3 sees the overwrite");

    // GET_RECENT names a published version for polling readers.
    let recent = store.get_recent(blob).unwrap();
    assert_eq!(recent, Version(3));

    // BRANCH forks cheaply: no data or metadata is copied.
    let fork = store.branch(blob, v2).unwrap();
    let f3 = store.append(fork, &[b'z'; 1_000]).unwrap();
    store.sync(fork, f3).unwrap();
    println!(
        "branched at {v2}: fork grew to {} bytes while {blob} stayed at {} bytes",
        store.get_size(fork, f3).unwrap(),
        store.get_size(blob, recent).unwrap(),
    );

    // The storage bill shows the sharing: 3 + 1 versions of a 20 KB
    // blob cost nowhere near 4x the logical size.
    let stats = store.stats();
    println!(
        "physical: {} pages / {} bytes; metadata nodes: {}",
        stats.physical_pages, stats.physical_bytes, stats.metadata_nodes
    );
}
