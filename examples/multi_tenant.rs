//! Operating a *shared* BlobSeer deployment: tenant quotas, throttling,
//! weighted-fair pipelining, and live quota adjustment.
//!
//! The paper evaluates one cooperative application under heavy
//! concurrency; this example shows the PR 8 extension for the
//! multi-tenant case — token-bucket admission control so one tenant's
//! burst cannot become every other tenant's latency.
//!
//! Run with: `cargo run --example multi_tenant`

use blobseer::{BlobError, BlobSeer, QosConfig, TenantId, TenantQuota};

const QUIET: TenantId = TenantId(1);
const NOISY: TenantId = TenantId(2);

fn main() {
    // QoS is opt-in per store. The default quota is unlimited, so only
    // the tenants you name are ever throttled: here the noisy tenant
    // gets a tight op bucket (100 ops/s, no burst slack) and a short
    // 2 ms admission deadline deployment-wide.
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(8)
        .metadata_providers(8)
        .qos(
            QosConfig::default()
                .with_tenant(
                    NOISY.raw(),
                    TenantQuota { ops_per_sec: 100, burst_ops: 1, ..TenantQuota::unlimited() },
                )
                .with_max_wait_ms(2),
        )
        .build()
        .unwrap();

    // Handles carry the tenant; every update through them is admitted
    // against that tenant's buckets (one tenant per blob — see the
    // engine's qos module docs).
    let quiet_blob = store.create().for_tenant(QUIET);
    let noisy_blob = store.create().for_tenant(NOISY);

    // --- Blocking path: waits, then fails typed at the deadline. ---
    // The noisy tenant fires 20 back-to-back appends against a bucket
    // that refills every 10 ms but may only wait 2 ms: most attempts
    // are refused at the deadline and retried — the compliant client
    // loop. Crucially, admission runs before any side effect, so a
    // refused append leaves nothing behind: no version, no pages.
    let mut refusals = 0u64;
    let mut last = None;
    for i in 0..20u8 {
        loop {
            match noisy_blob.append(&[i; 512]) {
                Ok(v) => {
                    last = Some(v);
                    break;
                }
                Err(BlobError::QuotaExceeded { tenant }) => {
                    assert_eq!(tenant, NOISY);
                    refusals += 1;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    noisy_blob.sync(last.unwrap()).unwrap();
    println!("noisy tenant: 20 appends published, {refusals} refusals retried through");

    // The quiet tenant, meanwhile, is never throttled.
    let mut qlast = None;
    for i in 0..20u8 {
        qlast = Some(quiet_blob.append(&[i; 512]).unwrap());
    }
    quiet_blob.sync(qlast.unwrap()).unwrap();
    println!("quiet tenant: 20 appends published, zero waits");

    // --- Per-tenant accounting: admitted + throttled == submitted. ---
    for (name, tenant) in [("quiet", QUIET), ("noisy", NOISY)] {
        let s = store.tenant_qos_stats(tenant).unwrap();
        println!(
            "{name} ({tenant}): admitted={} throttled={} wait_p99={}ns",
            s.admitted, s.throttled, s.wait.p99_ns
        );
    }

    // --- Live adjustment: quotas are runtime state, not build state. ---
    // Ops raise the noisy tenant's budget; waiting callers pick the new
    // rate up within one sleep slice (~10 ms), no rebuild, no restart.
    store.set_tenant_quota(NOISY, TenantQuota::unlimited()).unwrap();
    let before = store.tenant_qos_stats(NOISY).unwrap().throttled;
    let mut last = None;
    for i in 0..20u8 {
        last = Some(noisy_blob.append(&[i; 512]).unwrap());
    }
    noisy_blob.sync(last.unwrap()).unwrap();
    let after = store.tenant_qos_stats(NOISY).unwrap().throttled;
    assert_eq!(before, after);
    println!("quota raised to unlimited: 20 more appends, zero new refusals");

    // --- Non-blocking path: pipelined submission never waits. ---
    // Cap the noisy tenant again, tighter: over-budget *submission*
    // fails immediately with the same typed error, instead of queueing
    // unbounded work behind the quota.
    store
        .set_tenant_quota(
            NOISY,
            TenantQuota { ops_per_sec: 1, burst_ops: 1, ..TenantQuota::unlimited() },
        )
        .unwrap();
    let first = noisy_blob.append_pipelined(blobseer::Bytes::from(vec![7u8; 512])).unwrap();
    let second = noisy_blob.append_pipelined(blobseer::Bytes::from(vec![8u8; 512]));
    match second {
        Err(BlobError::QuotaExceeded { tenant }) => {
            println!("pipelined over budget: immediate QuotaExceeded for {tenant} (no waiting)");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let v = first.wait().unwrap();
    noisy_blob.sync(v).unwrap();

    // The same numbers are on the Prometheus endpoint, labeled per
    // tenant, next to the per-provider latency splits.
    let text = store.metrics_text();
    for line in text.lines().filter(|l| l.starts_with("blobseer_qos_throttled_total")) {
        println!("exposition: {line}");
    }
}
