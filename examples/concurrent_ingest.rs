//! Heavy access concurrency on the real engine: many writers append and
//! overwrite while many readers scan published snapshots — the paper's
//! target regime ("a large number of clients ... concurrently read,
//! write and append"). Each writer keeps a pipeline of non-blocking
//! appends in flight ([`blobseer::PendingWrite`]); readers pin
//! snapshots so their scans never touch the version manager. Prints
//! achieved throughput and shows what the partial-border-set protocol
//! buys over serialized metadata builds.
//!
//! Run with: `cargo run --release --example concurrent_ingest`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use blobseer::{BlobSeer, ConcurrencyMode};
use blobseer_workloads::{AppendStream, PipelinedIngest};

const WRITERS: usize = 8;
const READERS: usize = 4;
const APPENDS_PER_WRITER: usize = 150;
const PIPELINE_DEPTH: usize = 4;
const PAGE: u64 = 16 * 1024;

fn main() {
    for mode in [ConcurrencyMode::Concurrent, ConcurrencyMode::SerializedMetadata] {
        let (secs, bytes, reads) = run(mode);
        println!(
            "{mode:?}: {:.1} MB ingested in {secs:.2}s = {:.1} MB/s aggregate, {reads} reads served",
            bytes as f64 / 1e6,
            bytes as f64 / 1e6 / secs,
        );
    }
}

fn run(mode: ConcurrencyMode) -> (f64, u64, u64) {
    let store = BlobSeer::builder()
        .page_size(PAGE)
        .data_providers(16)
        .metadata_providers(16)
        .io_threads(8)
        .concurrency_mode(mode)
        .build()
        .unwrap();
    let blob = store.create();
    // Seed the blob so readers always have something published.
    let v = blob.append(&vec![0u8; PAGE as usize]).unwrap();
    blob.sync(v).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let bytes_written = Arc::new(AtomicU64::new(0));
    let reads_done = Arc::new(AtomicU64::new(0));

    // Readers poll for a recent snapshot and scan prefixes through it.
    let mut readers = Vec::new();
    for r in 0..READERS {
        let blob = blob.clone();
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads_done);
        readers.push(std::thread::spawn(move || {
            let mut n = 0u64;
            let mut buf = vec![0u8; 256 * 1024];
            while !stop.load(Ordering::Relaxed) {
                let snap = blob.latest().unwrap();
                let len = (snap.len() / (r as u64 + 2)).clamp(1, 256 * 1024) as usize;
                snap.read_into(0, &mut buf[..len]).unwrap();
                n += 1;
            }
            reads.fetch_add(n, Ordering::Relaxed);
        }));
    }

    let t0 = Instant::now();
    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let blob = blob.clone();
        let bytes = Arc::clone(&bytes_written);
        writers.push(std::thread::spawn(move || {
            // Depth-bounded pipelining (wait on the oldest when the
            // window fills, then drain + sync) lives in the shared
            // workloads driver.
            let mut stream = AppendStream::new(w as u64, 4096, 32 * 1024);
            let report = PipelinedIngest::new(PIPELINE_DEPTH)
                .run(&blob, &mut stream, APPENDS_PER_WRITER as u64)
                .unwrap();
            bytes.fetch_add(report.bytes, Ordering::Relaxed);
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }

    // Integrity: the final snapshot's size equals everything written.
    let expected = bytes_written.load(Ordering::Relaxed) + PAGE;
    assert_eq!(blob.latest().unwrap().len(), expected);
    (secs, bytes_written.load(Ordering::Relaxed), reads_done.load(Ordering::Relaxed))
}
