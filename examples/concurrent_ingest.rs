//! Heavy access concurrency on the real engine: many writers append and
//! overwrite while many readers scan published snapshots — the paper's
//! target regime ("a large number of clients ... concurrently read,
//! write and append"). Prints achieved throughput and shows what the
//! partial-border-set protocol buys over serialized metadata builds.
//!
//! Run with: `cargo run --release --example concurrent_ingest`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use blobseer::{BlobSeer, ConcurrencyMode};
use blobseer_workloads::AppendStream;

const WRITERS: usize = 8;
const READERS: usize = 4;
const APPENDS_PER_WRITER: usize = 150;
const PAGE: u64 = 16 * 1024;

fn main() {
    for mode in [ConcurrencyMode::Concurrent, ConcurrencyMode::SerializedMetadata] {
        let (secs, bytes, reads) = run(mode);
        println!(
            "{mode:?}: {:.1} MB ingested in {secs:.2}s = {:.1} MB/s aggregate, {reads} reads served",
            bytes as f64 / 1e6,
            bytes as f64 / 1e6 / secs,
        );
    }
}

fn run(mode: ConcurrencyMode) -> (f64, u64, u64) {
    let store = BlobSeer::builder()
        .page_size(PAGE)
        .data_providers(16)
        .metadata_providers(16)
        .io_threads(8)
        .concurrency_mode(mode)
        .build()
        .unwrap();
    let blob = store.create();
    // Seed the blob so readers always have something published.
    let v = store.append(blob, &vec![0u8; PAGE as usize]).unwrap();
    store.sync(blob, v).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let bytes_written = Arc::new(AtomicU64::new(0));
    let reads_done = Arc::new(AtomicU64::new(0));

    // Readers poll GET_RECENT and scan random published prefixes.
    let mut readers = Vec::new();
    for r in 0..READERS {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads_done);
        readers.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = store.get_recent(blob).unwrap();
                let size = store.get_size(blob, v).unwrap();
                let len = (size / (r as u64 + 2)).clamp(1, 256 * 1024);
                store.read(blob, v, 0, len).unwrap();
                n += 1;
            }
            reads.fetch_add(n, Ordering::Relaxed);
        }));
    }

    let t0 = Instant::now();
    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let store = store.clone();
        let bytes = Arc::clone(&bytes_written);
        writers.push(std::thread::spawn(move || {
            let mut stream = AppendStream::new(w as u64, 4096, 32 * 1024);
            let mut last = blobseer::Version(0);
            for _ in 0..APPENDS_PER_WRITER {
                let chunk = stream.next_chunk();
                bytes.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                last = store.append(blob, &chunk).unwrap();
            }
            store.sync(blob, last).unwrap();
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }

    // Integrity: the final snapshot's size equals everything written.
    let v = store.get_recent(blob).unwrap();
    let expected = bytes_written.load(Ordering::Relaxed) + PAGE;
    assert_eq!(store.get_size(blob, v).unwrap(), expected);
    (secs, bytes_written.load(Ordering::Relaxed), reads_done.load(Ordering::Relaxed))
}
