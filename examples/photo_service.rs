//! The paper's §2.2 motivating scenario, end to end: an online photo
//! service storing every uploaded picture in one huge blob.
//!
//! * multiple "site" threads APPEND pictures concurrently through
//!   cloned [`blobseer::Blob`] handles;
//! * an analytics pass (map-reduce style) READs disjoint parts of a
//!   pinned [`blobseer::Snapshot`] — the version manager is consulted
//!   once, however many workers share the snapshot;
//! * an enhancement pass overwrites some pictures in place — producing
//!   a *new version* while the analytics snapshot stays immutable.
//!
//! Run with: `cargo run --example photo_service`

use blobseer::{BlobSeer, Snapshot, Version};
use blobseer_workloads::photo::{map_chunk, CameraStats, Photo, RECORD_BYTES};
use blobseer_workloads::DisjointChunks;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SITES: usize = 4;
const PHOTOS_PER_SITE: usize = 32;
const CAMERAS: u16 = 5;
const WORKERS: u64 = 8;

fn main() {
    let store = BlobSeer::builder()
        .page_size(RECORD_BYTES as u64) // one picture per page
        .data_providers(12)
        .metadata_providers(8)
        .build()
        .unwrap();
    let blob = store.create();

    // ---- Ingest: sites upload concurrently (paper: "Pictures are
    // APPEND'ed concurrently to the blob from multiple sites"). ----
    let mut handles = Vec::new();
    for site in 0..SITES {
        let blob = blob.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(site as u64);
            let mut last = Version(0);
            for _ in 0..PHOTOS_PER_SITE {
                let photo = Photo::random(&mut rng, CAMERAS);
                last = blob.append(&photo.encode()).unwrap();
            }
            last
        }));
    }
    let newest = handles.into_iter().map(|h| h.join().unwrap()).max().unwrap();
    blob.sync(newest).unwrap();

    let snapshot = blob.latest().unwrap();
    let total_photos = snapshot.len() / RECORD_BYTES as u64;
    println!(
        "ingested {total_photos} photos ({} bytes) across {SITES} sites -> snapshot {}",
        snapshot.len(),
        snapshot.version()
    );
    assert_eq!(total_photos as usize, SITES * PHOTOS_PER_SITE);

    // ---- Analytics: workers read disjoint record-aligned chunks of the
    // snapshot (the map phase), then merge (the reduce phase). ----
    let stats = analyze(&snapshot);
    println!("camera  photos  avg contrast");
    for (camera, count, avg) in stats.rows() {
        println!("  #{camera:<4} {count:>6}  {avg:>10.2}");
    }
    assert_eq!(stats.total(), total_photos);

    // ---- Enhancement: overwrite the first 20 pictures in place (paper:
    // "overwriting the picture with its processed version saves
    // computation time when processing future blob versions"). ----
    let mut last = snapshot.version();
    for i in 0..20u64 {
        let offset = i * RECORD_BYTES as u64;
        // One picture = one page: the scatter read hands back the
        // stored page itself, no copy.
        let raw = snapshot.read(blobseer::ByteRange::new(offset, RECORD_BYTES as u64)).unwrap();
        let enhanced = Photo::decode(&raw).expect("valid record").enhance();
        last = blob.write(&enhanced.encode(), offset).unwrap();
    }
    blob.sync(last).unwrap();

    // The enhanced snapshot shows higher contrast; the analytics
    // snapshot is untouched (versioning at work).
    let after = analyze(&blob.snapshot(last).unwrap());
    let before_total: f64 = stats.rows().map(|(_, n, avg)| avg * n as f64).sum();
    let after_total: f64 = after.rows().map(|(_, n, avg)| avg * n as f64).sum();
    println!(
        "enhancement pass: total contrast {before_total:.0} -> {after_total:.0} \
         (snapshot {} still reads the originals)",
        snapshot.version()
    );
    assert!(after_total > before_total);
    let again = analyze(&snapshot);
    assert_eq!(again.total(), stats.total());

    let s = store.stats();
    println!(
        "storage: {} physical pages for {} logical photo-versions ({} metadata nodes)",
        s.physical_pages,
        total_photos + 20,
        s.metadata_nodes,
    );
}

/// The map-reduce pass of §2.2 over one pinned snapshot. Workers clone
/// the `Snapshot` handle — zero version-manager traffic in this loop.
fn analyze(snapshot: &Snapshot) -> CameraStats {
    let size = snapshot.len();
    let records = size / RECORD_BYTES as u64;
    let per_worker = blobseer_types::div_ceil(records, WORKERS) * RECORD_BYTES as u64;
    let chunks = DisjointChunks::new(size, per_worker);
    let mut handles = Vec::new();
    for range in chunks.iter() {
        let snapshot = snapshot.clone();
        handles.push(std::thread::spawn(move || {
            let data = snapshot.read(range).unwrap();
            map_chunk(&data)
        }));
    }
    let mut merged = CameraStats::default();
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    merged
}
