#!/usr/bin/env sh
# Offline markdown link checker over README.md, the root documents and
# docs/*.md: relative targets must exist, #fragments must match a
# heading. The check itself is the root package's `docs_links` test,
# so it also runs under tier-1 `cargo test`; this script is the
# standalone entry point used by CI's docs job and by hand:
#
#   tools/check-links.sh
set -eu
cd "$(dirname "$0")/.."
exec cargo test -q --test docs_links
