//! BlobSeer reproduction workspace root.
//!
//! This facade re-exports the public API of the [`blobseer`] crate
//! (`crates/core`) so downstream consumers can depend on the workspace
//! root package; the top-level `tests/` and `examples/` exercise the
//! same API through the `blobseer` dependency directly.

pub use blobseer::*;
