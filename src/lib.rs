//! BlobSeer reproduction workspace root. See the `blobseer` crate for the library.
