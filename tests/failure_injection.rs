//! Failure injection: what happens when a writer stalls mid-protocol.
//!
//! The paper defers node volatility/failures to future work (§6), but
//! the *protocol-level* consequences of a stalled writer are well
//! defined and testable: later versions cannot publish (total order),
//! readers of *published* versions are never affected, dependent
//! waiters time out rather than hang, and everything resumes when the
//! stalled writer finishes. We provoke these situations by driving the
//! substrate crates directly, bypassing the engine's write pipeline.

use std::sync::Arc;
use std::time::Duration;

use blobseer_dht::Dht;
use blobseer_meta::{
    build_meta, read_meta, Lineage, MetaStore, NodeKey, RootRef, TreeNode, TreeReader,
    UpdateContext,
};
use blobseer_types::{BlobError, ByteRange, NodePos, PageDescriptor, PageId, ProviderId, Version};
use blobseer_version::{ConcurrencyMode, UpdateKind, VersionManager};

const PSIZE: u64 = 4;

fn pd(page_index: u64, pid: u128) -> PageDescriptor {
    PageDescriptor {
        pid: PageId(pid),
        page_index,
        provider: ProviderId(0),
        valid_len: PSIZE as u32,
    }
}

fn commit(store: &MetaStore, nodes: Vec<(NodeKey, TreeNode)>) {
    for (k, n) in nodes {
        store.put(k, n);
    }
}

/// A version manager plus metadata store with version 1 (4 pages)
/// published.
fn seeded() -> (VersionManager, MetaStore, blobseer_types::BlobId, Lineage) {
    let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5));
    let meta = MetaStore::new(4, Duration::from_millis(100));
    let blob = vm.create();
    let lineage = vm.lineage(blob).unwrap();
    let a = vm.assign(blob, UpdateKind::Append { size: 4 * PSIZE }).unwrap();
    let ctx = UpdateContext {
        vw: a.vw,
        range: a.range,
        new_root: a.new_root,
        overrides: a.overrides.clone(),
        ref_root: a.ref_root,
    };
    let leaves: Vec<_> = (0..4).map(|i| pd(i, 100 + i as u128)).collect();
    let reader = TreeReader::new(&meta, &lineage);
    commit(&meta, build_meta(&reader, &ctx, &leaves).unwrap());
    vm.complete(blob, a.vw).unwrap();
    (vm, meta, blob, lineage)
}

#[test]
fn stalled_writer_blocks_publication_not_assignment() {
    let (vm, meta, blob, lineage) = seeded();
    // Writer A (v2) is assigned but never completes (crash).
    let a2 = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
    // Writer B (v3) still gets a version, builds and completes fine.
    let a3 = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
    assert_eq!(a3.vw, Version(3));
    let ctx = UpdateContext {
        vw: a3.vw,
        range: a3.range,
        new_root: a3.new_root,
        overrides: a3.overrides.clone(),
        ref_root: a3.ref_root,
    };
    let reader = TreeReader::new(&meta, &lineage);
    let leaves = vec![pd(5, 305)];
    commit(&meta, build_meta(&reader, &ctx, &leaves).unwrap());
    vm.complete(blob, a3.vw).unwrap();

    // Total order holds: nothing past v1 is published while v2 stalls.
    assert_eq!(vm.get_recent(blob).unwrap(), Version(1));
    assert!(matches!(vm.get_size(blob, Version(3)), Err(BlobError::VersionNotPublished { .. })));
    // SYNC on the stalled chain times out instead of hanging.
    assert_eq!(
        vm.sync(blob, Version(3), Duration::from_millis(30)),
        Err(BlobError::Timeout("snapshot publication"))
    );

    // The "crashed" writer revives and completes: everything publishes.
    let ctx2 = UpdateContext {
        vw: a2.vw,
        range: a2.range,
        new_root: a2.new_root,
        overrides: a2.overrides.clone(),
        ref_root: a2.ref_root,
    };
    commit(&meta, build_meta(&reader, &ctx2, &[pd(4, 204)]).unwrap());
    vm.complete(blob, a2.vw).unwrap();
    assert_eq!(vm.get_recent(blob).unwrap(), Version(3));
}

#[test]
fn published_readers_never_wait_on_inflight_writers() {
    let (vm, meta, blob, lineage) = seeded();
    // An in-flight writer that will never store its nodes.
    let _stalled = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
    // Reading published v1 touches only complete metadata: it must
    // succeed immediately (well under the 100 ms DHT timeout).
    let (size, root) = vm.read_view(blob, Version(1)).unwrap();
    assert_eq!(size, 4 * PSIZE);
    let reader = TreeReader::new(&meta, &lineage);
    let t0 = std::time::Instant::now();
    let pds = read_meta(&reader, root.unwrap(), ByteRange::new(0, size), PSIZE).unwrap();
    assert_eq!(pds.len(), 4);
    assert!(t0.elapsed() < Duration::from_millis(50), "no blocking on published reads");
}

#[test]
fn dependent_reader_times_out_on_missing_inflight_metadata() {
    let (vm, meta, blob, lineage) = seeded();
    // v2 assigned, never built. A read *at v2's root* (as the unaligned
    // merge path of a v3 writer would attempt) must block and then time
    // out — not hang, not return stale data.
    let a2 = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
    let root2 = RootRef { version: a2.vw, pos: a2.new_root };
    let reader = TreeReader::new(&meta, &lineage);
    let t0 = std::time::Instant::now();
    let err = read_meta(&reader, root2, ByteRange::new(0, PSIZE), PSIZE).unwrap_err();
    assert_eq!(err, BlobError::Timeout("metadata tree node"));
    assert!(t0.elapsed() >= Duration::from_millis(100), "the wait was real");
}

#[test]
fn late_metadata_release_unblocks_waiters() {
    // A reader blocked on an in-flight node proceeds the moment the
    // writer stores it — the §4.2 handoff, under an induced delay.
    let meta = Arc::new(MetaStore::with_dht(Arc::new(Dht::new(2)), Duration::from_secs(5)));
    let lineage = Lineage::root(blobseer_types::BlobId(1));
    let key = NodeKey { blob: lineage.blob(), version: Version(2), pos: NodePos::new(0, 1) };
    let m2 = Arc::clone(&meta);
    let k2 = key;
    let waiter = std::thread::spawn(move || {
        let t0 = std::time::Instant::now();
        let node = m2.get_wait(&k2).unwrap();
        (node, t0.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    let leaf = TreeNode::Leaf { pid: PageId(9), provider: ProviderId(0), valid_len: 4 };
    meta.put(key, leaf);
    let (node, waited) = waiter.join().unwrap();
    assert_eq!(node, leaf);
    assert!(waited >= Duration::from_millis(45));
    assert!(waited < Duration::from_secs(1), "released promptly, not at timeout");
}

#[test]
fn engine_write_beyond_end_leaves_orphan_pages_only() {
    // A failed WRITE may have pre-stored interior pages (Algorithm 2
    // stores data before version assignment); those orphans must not
    // corrupt any published snapshot.
    let store = blobseer::BlobSeer::builder()
        .page_size(64)
        .data_providers(3)
        .metadata_providers(3)
        .build()
        .unwrap();
    let blob = store.create().id();
    let v1 = store.append(blob, &[9u8; 64]).unwrap();
    store.sync(blob, v1).unwrap();
    // Offset 1000 > size 64: rejected at the version manager, after the
    // interior page was already shipped.
    assert!(matches!(store.write(blob, &[1u8; 128], 1000), Err(BlobError::WriteBeyondEnd { .. })));
    // Snapshot v1 is intact; no new version exists.
    assert_eq!(store.get_recent(blob).unwrap(), v1);
    assert_eq!(store.read(blob, v1, 0, 64).unwrap(), vec![9u8; 64]);
    // The orphan pages exist physically (documented behaviour, same as
    // the paper's prototype) but are unreachable from any snapshot.
    let stats = store.stats();
    assert!(stats.physical_pages >= 1);
}
