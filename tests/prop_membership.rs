//! Property: elastic membership is invisible to readers. For any
//! random interleaving of healthy appends, crashed writers, GC
//! retires, provider joins (`add_provider`), provider drains
//! (`drain_provider`) and orphan scrubs:
//!
//! (a) **oracle equivalence** — every snapshot of the elastic
//!     deployment is byte-identical to the same snapshot of an oracle
//!     deployment that ran the same ingest ops on a static cluster
//!     (joins/drains/scrubs elided): membership churn never changes
//!     what readers see, only where the bytes live;
//! (b) **drain completeness** — a successfully drained provider holds
//!     **zero** pages (its backing store is literally empty), and it
//!     stays empty: retirement refuses all later stores;
//! (c) **convergence** — once quiescent, a follow-up
//!     `repair_replicas` copies nothing and a second `scrub_orphans`
//!     reclaims nothing: the drain left a clean, fully replicated
//!     deployment.
//!
//! Crashed writers use the deterministic lease path (crash, advance
//! the clock, sweep) so the elastic and oracle runs cannot diverge on
//! which versions abort — that keeps the oracle comparison exact
//! rather than modulo races.

use std::sync::Arc;

use blobseer::{
    BlobError, BlobSeer, ByteRange, Bytes, CrashPoint, MemoryPageStore, PageStore, ProviderId,
    Version,
};
use proptest::prelude::*;

const PSIZE: u64 = 32;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// A healthy append that publishes (runs on both deployments).
    Append { len: usize, fill: u8 },
    /// A writer that dies at the given pipeline prefix; recovery (lease
    /// expiry + sweep) runs before the next op (both deployments).
    Crash { len: usize, fill: u8, point: CrashPoint },
    /// Retire all history below the newest readable version (both).
    Retire,
    /// Join a fresh provider (elastic deployment only).
    AddProvider,
    /// Drain the `pick`-th registered provider (elastic only). A
    /// refusal ([`BlobError::DrainConflict`] — already retired, or too
    /// few survivors) is a legal outcome; anything else must succeed.
    Drain { pick: usize },
    /// Reclaim leaked pages mid-run (elastic only).
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let point = prop_oneof![
        Just(CrashPoint::AfterPrepare),
        Just(CrashPoint::AfterBoundaryPages),
        Just(CrashPoint::AfterPartialMetadata),
        Just(CrashPoint::BeforeNotify),
    ];
    prop_oneof![
        3 => (1usize..200, any::<u8>()).prop_map(|(len, fill)| Op::Append { len, fill }),
        2 => (1usize..200, any::<u8>(), point)
            .prop_map(|(len, fill, point)| Op::Crash { len, fill, point }),
        1 => Just(Op::Retire),
        1 => Just(Op::AddProvider),
        2 => (0usize..8).prop_map(|pick| Op::Drain { pick }),
        1 => Just(Op::Scrub),
    ]
}

fn fill_bytes(len: usize, fill: u8) -> Bytes {
    Bytes::from(
        (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(7) | 1).collect::<Vec<_>>(),
    )
}

fn elastic_store(stores: &[Arc<MemoryPageStore>]) -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(stores.len())
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .lease_ttl_ticks(64)
        .replication(2)
        .page_stores(stores.iter().map(|s| s.clone() as Arc<dyn PageStore>).collect())
        .build()
        .unwrap()
}

fn oracle_store() -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(3)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .lease_ttl_ticks(64)
        .replication(2)
        .build()
        .unwrap()
}

/// The reader's view of every version up to `upto`: `Some(bytes)` if
/// readable, `None` if aborted or retired. Any other error panics.
fn reader_view(blob: &blobseer::Blob, upto: Version) -> Vec<Option<Bytes>> {
    (1..=upto.raw())
        .map(Version)
        .map(|v| match blob.snapshot(v) {
            Ok(snap) => Some(snap.read(ByteRange::new(0, snap.len())).unwrap()),
            Err(BlobError::VersionAborted { .. }) | Err(BlobError::VersionRetired { .. }) => None,
            Err(other) => panic!("unexpected read error on {v}: {other}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn membership_churn_is_invisible_to_readers(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        // Elastic deployment: shared page-store handles, one per
        // provider, indexed by provider id — invariant (b) inspects
        // them directly.
        let mut page_stores: Vec<Arc<MemoryPageStore>> =
            (0..3).map(|_| Arc::new(MemoryPageStore::new())).collect();
        let store = elastic_store(&page_stores);
        let oracle = oracle_store();
        let blob = store.create();
        let oracle_blob = oracle.create();
        let ttl = store.config().lease_ttl_ticks;

        let mut last_assigned = Version(0);
        let mut drained: Vec<ProviderId> = Vec::new();

        for op in &ops {
            match *op {
                Op::Append { len, fill } => {
                    let data = fill_bytes(len, fill);
                    let v = blob.append_bytes(data.clone()).unwrap();
                    blob.sync(v).unwrap();
                    let ov = oracle_blob.append_bytes(data).unwrap();
                    oracle_blob.sync(ov).unwrap();
                    prop_assert_eq!(v, ov, "deployments diverged on version assignment");
                    last_assigned = v;
                }
                Op::Crash { len, fill, point } => {
                    let data = fill_bytes(len, fill);
                    let v = blob.crash_append(data.clone(), point).unwrap();
                    store.advance_lease_clock(ttl + 1);
                    let report = store.sweep_expired_leases();
                    prop_assert!(report.aborted.contains(&(blob.id(), v)));
                    let ov = oracle_blob.crash_append(data, point).unwrap();
                    oracle.advance_lease_clock(ttl + 1);
                    let oreport = oracle.sweep_expired_leases();
                    prop_assert!(oreport.aborted.contains(&(oracle_blob.id(), ov)));
                    prop_assert_eq!(v, ov);
                    last_assigned = v;
                }
                Op::Retire => {
                    let keep = blob.recent_version().unwrap();
                    prop_assert_eq!(keep, oracle_blob.recent_version().unwrap());
                    if keep > Version(0) {
                        // All ingest is quiescent between ops, so the
                        // two deployments must agree on the outcome.
                        let res = blob.retire_versions(keep);
                        let ores = oracle_blob.retire_versions(keep);
                        match (res, ores) {
                            (Ok(_), Ok(_)) => {}
                            (Err(BlobError::GcConflict(_)), Err(BlobError::GcConflict(_))) => {}
                            (res, ores) => panic!(
                                "retire outcomes diverged: elastic {res:?}, oracle {ores:?}"
                            ),
                        }
                    }
                }
                Op::AddProvider => {
                    let backing = Arc::new(MemoryPageStore::new());
                    let id = store.add_provider_store(backing.clone() as Arc<dyn PageStore>);
                    // Ids are assigned sequentially and never reused,
                    // so the handle vec stays indexable by raw id.
                    prop_assert_eq!(id, ProviderId(page_stores.len() as u32));
                    page_stores.push(backing);
                }
                Op::Drain { pick } => {
                    let victim = ProviderId((pick % page_stores.len()) as u32);
                    match store.drain_provider(victim) {
                        Ok(report) => {
                            prop_assert_eq!(report.provider, victim);
                            // (b) drain completeness: the victim's
                            // backing store is literally empty.
                            prop_assert_eq!(
                                page_stores[victim.raw() as usize].page_count(),
                                0,
                                "drained provider still holds pages"
                            );
                            drained.push(victim);
                        }
                        // Already retired / being re-picked, or too few
                        // survivors: a legal refusal, nothing moved.
                        Err(BlobError::DrainConflict(_)) => {}
                        Err(other) => panic!("drain of {victim} failed: {other}"),
                    }
                }
                Op::Scrub => {
                    store.scrub_orphans().unwrap();
                }
            }
        }

        // Quiesce both deployments.
        if last_assigned > Version(0) {
            match blob.sync(last_assigned) {
                Ok(()) | Err(BlobError::VersionAborted { .. }) => {}
                Err(other) => panic!("final sync failed: {other}"),
            }
            match oracle_blob.sync(last_assigned) {
                Ok(()) | Err(BlobError::VersionAborted { .. }) => {}
                Err(other) => panic!("final oracle sync failed: {other}"),
            }
        }
        store.advance_lease_clock(ttl + 1);
        store.sweep_expired_leases();
        oracle.advance_lease_clock(ttl + 1);
        oracle.sweep_expired_leases();

        // (a) oracle equivalence: the reader's view of every version is
        // identical on the elastic and static deployments — including
        // *which* versions are readable at all.
        let elastic_view = reader_view(&blob, last_assigned);
        let oracle_view = reader_view(&oracle_blob, last_assigned);
        prop_assert_eq!(
            elastic_view, oracle_view,
            "membership churn changed what readers see"
        );

        // (c) convergence: scrub to reclaim crash leaks, then one
        // repair pass converges the copy placement to the post-churn
        // chains — a *join* legitimately re-routes successor chains,
        // so this pass may move copies (that is the rebalance). After
        // it, the deployment is a fixed point: a second repair copies
        // and trims nothing, a second scrub reclaims nothing, and the
        // reader's view never wavered.
        store.scrub_orphans().unwrap();
        let view_before = reader_view(&blob, last_assigned);
        let rebalance = store.repair_replicas().unwrap();
        prop_assert_eq!(rebalance.copies_failed, 0);
        prop_assert_eq!(
            rebalance.pages_unrepairable, 0,
            "membership churn lost the last copy of a page"
        );
        let repair = store.repair_replicas().unwrap();
        prop_assert_eq!(repair.copies_repaired, 0, "rebalance left a chain slot unfilled");
        prop_assert_eq!(repair.copies_failed, 0);
        prop_assert_eq!(repair.pages_unrepairable, 0);
        prop_assert_eq!(repair.strays_trimmed, 0, "rebalance left a stray copy behind");
        let scrub = store.scrub_orphans().unwrap();
        prop_assert_eq!(scrub.pages_reclaimed, 0, "the rebalance or first scrub left a leak");
        prop_assert_eq!(reader_view(&blob, last_assigned), view_before);

        // (b) again, end-state: retirement is forever — every drained
        // provider is still empty after all subsequent ingest, repair
        // and scrubbing.
        for victim in drained {
            prop_assert_eq!(page_stores[victim.raw() as usize].page_count(), 0);
        }
        let members = store.membership();
        prop_assert_eq!(members.registered, page_stores.len());
    }
}
