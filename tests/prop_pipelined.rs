//! Property: pipelined and blocking writes are observationally
//! identical. For any sequence of WRITE/APPEND operations, applying it
//! through `write_pipelined`/`append_pipelined` (depth-bounded, waits
//! deferred) must publish byte-identical snapshots — every version —
//! to applying it through the blocking `write`/`append` path.

use std::collections::VecDeque;

use blobseer::{Blob, BlobSeer, ByteRange, Bytes, PendingWrite, Version};
use proptest::prelude::*;

const PSIZE: u64 = 32;
const DEPTH: usize = 4;

#[derive(Clone, Debug)]
enum Op {
    Append { len: usize, fill: u8 },
    Write { offset_permille: u16, len: usize, fill: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (1usize..200, any::<u8>()).prop_map(|(len, fill)| Op::Append { len, fill }),
        1 => (0u16..=1000, 1usize..150, any::<u8>())
            .prop_map(|(offset_permille, len, fill)| Op::Write { offset_permille, len, fill }),
    ]
}

fn fill_bytes(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(13) | 1).collect()
}

fn build() -> Blob {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(5)
        .metadata_providers(3)
        .io_threads(2)
        .pipeline_threads(DEPTH)
        .build()
        .unwrap()
        .create()
}

/// Resolve an op against the latest *assigned* size so both drivers
/// compute identical absolute offsets. Returns `(offset, data)`.
fn resolve(op: &Op, assigned_size: u64) -> (u64, Vec<u8>) {
    match *op {
        Op::Append { len, fill } => (assigned_size, fill_bytes(len, fill)),
        Op::Write { offset_permille, len, fill } => {
            (assigned_size * u64::from(offset_permille) / 1000, fill_bytes(len, fill))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipelined_equals_blocking(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let blocking = build();
        let pipelined = build();

        // Blocking driver.
        let mut size = 0u64;
        let mut last = Version(0);
        for op in &ops {
            let (offset, data) = resolve(op, size);
            last = match *op {
                Op::Append { .. } => blocking.append(&data).unwrap(),
                Op::Write { .. } => blocking.write(&data, offset).unwrap(),
            };
            size = size.max(offset + data.len() as u64);
        }
        blocking.sync(last).unwrap();

        // Pipelined driver: up to DEPTH updates in flight, waits
        // deferred until the window fills.
        let mut size = 0u64;
        let mut inflight: VecDeque<PendingWrite> = VecDeque::new();
        for op in &ops {
            let (offset, data) = resolve(op, size);
            let data_len = data.len() as u64;
            let pending = match *op {
                Op::Append { .. } => pipelined.append_pipelined(Bytes::from(data)).unwrap(),
                Op::Write { .. } => {
                    pipelined.write_pipelined(Bytes::from(data), offset).unwrap()
                }
            };
            inflight.push_back(pending);
            if inflight.len() > DEPTH {
                inflight.pop_front().unwrap().wait().unwrap();
            }
            size = size.max(offset + data_len);
        }
        let mut newest = Version(0);
        for pending in inflight {
            newest = newest.max(pending.wait().unwrap());
        }
        prop_assert_eq!(newest, last, "both drivers assign the same version sequence");
        pipelined.sync(newest).unwrap();

        // Every published snapshot must be byte-identical.
        for v in 0..=last.raw() {
            let v = Version(v);
            let a = blocking.snapshot(v).unwrap();
            let b = pipelined.snapshot(v).unwrap();
            prop_assert_eq!(a.len(), b.len(), "{:?} size", v);
            let range = ByteRange::new(0, a.len());
            prop_assert_eq!(
                &a.read(range).unwrap()[..],
                &b.read(range).unwrap()[..],
                "{:?} content",
                v
            );
        }
    }
}
