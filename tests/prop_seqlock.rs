//! Torn-read oracle for the wait-free snapshot publication path.
//!
//! For random interleavings of concurrent publishes, aborts, retires
//! and branch creation against a pool of hot readers:
//!
//! (a) **atomicity** — every `(version, size, root_span)` triple a
//!     reader observes from the seqlock cell matches, word for word,
//!     some triple that was *atomically published* (the oracle: a
//!     `seq -> words` map fed by the publish probe, which fires under
//!     the blob mutex and therefore records the exact committed
//!     publication history). A torn read — words from two different
//!     publications — can match no oracle entry and fails here;
//! (b) **monotonicity** — the publication *sequence* each reader
//!     observes never goes backwards and is never odd. (The version
//!     word itself may legally regress: retiring up to a trailing
//!     aborted hole moves the readable frontier down, which is a new
//!     publication, not a stale one — hence the oracle keys on the
//!     seqlock sequence, not the version.)
//!
//! A separate deterministic test exercises the proptest shim's
//! shrinker on a seeded known-bad op script, pinning the exact
//! minimized counterexample.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use blobseer_types::{BlobError, BlobId};
use blobseer_version::{ConcurrencyMode, UpdateKind, VersionManager};
use proptest::prelude::*;

const PSIZE: u64 = 4;

fn vm() -> Arc<VersionManager> {
    Arc::new(VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5)))
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// assign + complete: publishes a new version.
    Append { pages: u64 },
    /// assign + begin/commit abort: punches an in-flight hole (its own
    /// publication when it unblocks queued successors).
    Abort,
    /// begin_retire at the current readable frontier.
    Retire,
    /// Fork at the current readable frontier (pins parent history).
    Branch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..4).prop_map(|pages| Op::Append { pages }),
        2 => Just(Op::Abort),
        1 => Just(Op::Retire),
        1 => Just(Op::Branch),
    ]
}

/// Apply one op; races with the other mutator surface as the typed
/// errors tolerated below, anything else is a real failure.
fn apply(vm: &VersionManager, blob: BlobId, op: Op) {
    match op {
        Op::Append { pages } => {
            let a = vm.assign(blob, UpdateKind::Append { size: pages * PSIZE }).unwrap();
            vm.complete(blob, a.vw).unwrap();
        }
        Op::Abort => {
            let a = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
            vm.begin_abort(blob, a.vw).unwrap();
            vm.commit_abort(blob, a.vw).unwrap();
        }
        Op::Retire => {
            let keep = vm.get_recent(blob).unwrap();
            if keep.raw() == 0 {
                return;
            }
            match vm.begin_retire(blob, keep) {
                Ok(_) => {}
                // In-flight updates or a branch pin from the racing
                // mutator: a legal refusal.
                Err(BlobError::GcConflict(_)) | Err(BlobError::VersionNotPublished { .. }) => {}
                Err(e) => panic!("retire: unexpected {e:?}"),
            }
        }
        Op::Branch => {
            let at = vm.get_recent(blob).unwrap();
            match vm.branch(blob, at) {
                Ok(fork) => {
                    // The fork is born readable.
                    vm.latest_view(fork).unwrap();
                }
                Err(
                    BlobError::VersionRetired { .. }
                    | BlobError::VersionAborted { .. }
                    | BlobError::VersionNotPublished { .. },
                ) => {}
                Err(e) => panic!("branch: unexpected {e:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_observed_triple_was_atomically_published(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let vm = vm();
        let blob = vm.create();

        // The oracle. Creation publishes without firing the probe, so
        // seed it with the initial cell state before any reader runs.
        let oracle: Arc<Mutex<HashMap<u64, [u64; 3]>>> = Arc::new(Mutex::new(HashMap::new()));
        {
            let (words, seq, _) = vm.debug_hot_read(blob).unwrap();
            oracle.lock().unwrap().insert(seq, words);
        }
        {
            let oracle = Arc::clone(&oracle);
            vm.set_publish_probe(Some(Box::new(move |b, seq, words| {
                if b == blob {
                    oracle.lock().unwrap().insert(seq, words);
                }
            })));
        }

        let done = AtomicBool::new(false);
        let vm_ref = &vm;
        let done_ref = &done;
        // Readers buffer raw observations and validate only after the
        // join: a reader can race ahead of the probe's map insert, so
        // checking against the oracle mid-run would be a false alarm.
        let traces: Vec<Vec<(u64, [u64; 3])>> = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        let mut trace = Vec::new();
                        while !done_ref.load(Ordering::Acquire) {
                            let (words, seq, _retries) = vm_ref.debug_hot_read(blob).unwrap();
                            trace.push((seq, words));
                            std::thread::yield_now();
                        }
                        trace
                    })
                })
                .collect();

            // Two mutators interleave halves of the script against the
            // readers (and each other).
            let (left, right): (Vec<_>, Vec<_>) =
                ops.iter().enumerate().partition(|(i, _)| i % 2 == 0);
            let mutators: Vec<_> = [left, right]
                .into_iter()
                .map(|half| {
                    scope.spawn(move || {
                        for (_, op) in half {
                            apply(vm_ref, blob, *op);
                        }
                    })
                })
                .collect();
            for m in mutators {
                m.join().unwrap();
            }
            done.store(true, Ordering::Release);
            readers.into_iter().map(|r| r.join().unwrap()).collect()
        });
        vm.set_publish_probe(None);

        let oracle = oracle.lock().unwrap();
        for trace in &traces {
            let mut last_seq = 0u64;
            for &(seq, words) in trace {
                // (b) monotone, never mid-publication.
                prop_assert_eq!(seq % 2, 0, "reader returned an odd (torn) sequence {}", seq);
                prop_assert!(seq >= last_seq, "sequence went backwards: {} -> {}", last_seq, seq);
                last_seq = seq;
                // (a) word-for-word match with an atomic publication.
                match oracle.get(&seq) {
                    Some(&published) => prop_assert_eq!(
                        published, words,
                        "torn read: words at seq {} mix publications", seq
                    ),
                    None => prop_assert!(false, "observed seq {} was never published", seq),
                }
            }
        }

        // Post-churn: the cell is the newest oracle entry and agrees
        // with the locked truth.
        let (words, seq, _) = vm.debug_hot_read(blob).unwrap();
        prop_assert_eq!(oracle.get(&seq).copied(), Some(words));
        prop_assert_eq!(oracle.keys().max().copied(), Some(seq), "cell lags a publication");
        let (v, view) = vm.latest_view(blob).unwrap();
        prop_assert_eq!(v.raw(), words[0]);
        prop_assert_eq!(view.size, words[1]);
    }
}

/// Single-threaded replay for the shrinker exercise: `0` = append one
/// page, anything else = abort. Fails (returns true) when the final
/// readable version disagrees with the script length — which happens
/// exactly when the script ends in an abort (a trailing hole keeps the
/// readable frontier behind the assigned frontier).
fn leaves_trailing_hole(script: &[u64]) -> bool {
    let vm = vm();
    let blob = vm.create();
    for &code in script {
        let op = if code == 0 { Op::Append { pages: 1 } } else { Op::Abort };
        apply(&vm, blob, op);
    }
    let (words, _, _) = vm.debug_hot_read(blob).unwrap();
    words[0] != script.len() as u64
}

#[test]
fn shrinker_reduces_a_known_bad_script_to_its_kernel() {
    // Seeded known-bad: the trailing abort is the one load-bearing op.
    // The shrinker must strip the three appends and the mid-script
    // abort (whose hole is re-covered by later appends) and land on
    // the 1-op kernel.
    let seed = vec![0u64, 1, 0, 0, 1];
    assert!(leaves_trailing_hole(&seed), "the seeded script must already fail");
    let minimal = proptest::test_runner::minimize(
        &proptest::collection::vec(0u64..2, 0..8),
        seed,
        |script| leaves_trailing_hole(script),
        4096,
    );
    assert_eq!(minimal, vec![1], "expected the single-abort kernel");
}
