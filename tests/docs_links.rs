//! Offline markdown link checker over `README.md` + `docs/*.md` (and
//! the other root-level documents): every relative link must point at
//! a file that exists in the repository, and every `#fragment` must
//! match a heading in its target file. External (`http[s]://`,
//! `mailto:`) links are *not* fetched — the build container is
//! offline, and rot there is a different problem — but everything the
//! repo can verify about its own doc graph is verified here, so the
//! growing doc set cannot silently break. Runs with tier-1
//! `cargo test`; CI's docs job calls it via `tools/check-links.sh`.

use std::collections::HashSet;
use std::path::PathBuf;

/// Strip fenced code blocks (``` ... ```) so `[x](y)` inside examples
/// is not treated as a link, and so headings inside fences are not
/// collected as anchors.
fn strip_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            out.push('\n');
            continue;
        }
        if !in_fence {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// GitHub-style anchor slugs of every heading in `text`.
fn anchors(text: &str) -> HashSet<String> {
    let mut slugs = HashSet::new();
    for line in strip_fences(text).lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('#') {
            continue;
        }
        let title = trimmed.trim_start_matches('#').trim();
        let mut slug = String::new();
        for c in title.chars() {
            match c {
                ' ' => slug.push('-'),
                c if c.is_alphanumeric() => slug.extend(c.to_lowercase()),
                '-' | '_' => slug.push(c),
                _ => {} // punctuation (backticks, dots, colons, …) drops
            }
        }
        slugs.insert(slug);
    }
    slugs
}

/// Every inline-link target `[...](target)` in `text`, with nesting
///-aware bracket matching (link texts here often contain `` ` `` and
/// `[]`-free code, but be permissive).
fn link_targets(text: &str) -> Vec<String> {
    let stripped = strip_fences(text);
    let bytes = stripped.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            // Find the matching close bracket.
            let mut depth = 1;
            let mut j = i + 1;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // An inline link needs `](` immediately after.
            if depth == 0 && j < bytes.len() && bytes[j] == b'(' {
                if let Some(close) = stripped[j + 1..].find(')') {
                    targets.push(stripped[j + 1..j + 1 + close].to_string());
                    i = j + 1 + close;
                    continue;
                }
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    targets
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = ["README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("readable docs entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() >= 5, "expected README + root docs + docs/*.md, found {files:?}");

    let mut broken: Vec<String> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable markdown");
        let dir = file.parent().expect("file has a parent");
        for target in link_targets(&text) {
            let target = target.trim();
            // Split an optional title: [x](path "title") — none used
            // here, but cheap to tolerate.
            let target = target.split_whitespace().next().unwrap_or("");
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target, None),
            };
            let resolved: PathBuf = if path_part.is_empty() {
                file.clone() // same-file anchor
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!("{}: link '{target}' → missing {resolved:?}", file.display()));
                continue;
            }
            if let Some(fragment) = fragment {
                let anchor_text = if path_part.is_empty() {
                    text.clone()
                } else {
                    std::fs::read_to_string(&resolved).expect("readable link target")
                };
                if !anchors(&anchor_text).contains(fragment) {
                    broken.push(format!(
                        "{}: link '{target}' → no heading '#{fragment}' in {resolved:?}",
                        file.display()
                    ));
                }
            }
        }
    }
    assert!(broken.is_empty(), "broken markdown links:\n  {}", broken.join("\n  "));
}

#[test]
fn checker_sees_through_its_own_machinery() {
    // The checker is itself code that can rot: pin its parsing rules.
    let text = "# My Heading: `code`!\n\
                [ok](#my-heading-code)\n\
                ```rust\n[not_a_link](ignored.md)\nfn x() {}\n```\n\
                see [`docs`](README.md) and ![img](logo.png)\n\
                plain [brackets] and (parens) alone";
    let targets = link_targets(text);
    assert_eq!(targets, vec!["#my-heading-code", "README.md", "logo.png"]);
    assert!(anchors(text).contains("my-heading-code"));
}
