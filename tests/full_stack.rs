//! Cross-crate integration tests: the public API driven by the workload
//! generators, spanning `blobseer`, `blobseer-workloads` and the
//! substrate crates.

use blobseer::{BlobSeer, Version};
use blobseer_workloads::photo::{map_chunk, CameraStats, Photo, RECORD_BYTES};
use blobseer_workloads::{AppendStream, DisjointChunks};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn append_stream_every_snapshot_verifiable() {
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(6)
        .metadata_providers(4)
        .build()
        .unwrap();
    let blob = store.create().id();
    let seed = 0xfeed;
    let mut stream = AppendStream::new(seed, 100, 9000);
    let mut boundaries = vec![0u64];
    let mut last = Version(0);
    for _ in 0..40 {
        let chunk = stream.next_chunk();
        last = store.append(blob, &chunk).unwrap();
        boundaries.push(stream.produced());
    }
    store.sync(blob, last).unwrap();
    // Every snapshot's full content matches the deterministic stream.
    for (v, &size) in boundaries.iter().enumerate() {
        let v = Version(v as u64);
        assert_eq!(store.get_size(blob, v).unwrap(), size);
        let got = store.read(blob, v, 0, size).unwrap();
        assert_eq!(got, AppendStream::expected(seed, 0, size), "{v}");
    }
    // And arbitrary windows of the newest snapshot match too.
    let total = *boundaries.last().unwrap();
    for (off, len) in [(0u64, 1u64), (total / 3, 10_000), (total - 1, 1)] {
        let len = len.min(total - off);
        assert_eq!(
            store.read(blob, last, off, len).unwrap(),
            AppendStream::expected(seed, off, len)
        );
    }
}

#[test]
fn concurrent_sites_and_analytics_pipeline() {
    // The §2.2 scenario as a test: concurrent uploads, then map-reduce
    // over a snapshot while more uploads continue, then verification
    // that the analyzed snapshot was immutable throughout.
    let store = BlobSeer::builder()
        .page_size(RECORD_BYTES as u64)
        .data_providers(8)
        .metadata_providers(8)
        .build()
        .unwrap();
    let blob = store.create().id();

    let upload = |seed: u64, n: usize| {
        let store = store.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut last = Version(0);
            for _ in 0..n {
                last = store.append(blob, &Photo::random(&mut rng, 3).encode()).unwrap();
            }
            last
        })
    };

    // Wave 1.
    let w1: Vec<_> = (0..3).map(|s| upload(s, 20)).collect();
    let newest = w1.into_iter().map(|h| h.join().unwrap()).max().unwrap();
    store.sync(blob, newest).unwrap();
    let snapshot = store.get_recent(blob).unwrap();
    let snap_size = store.get_size(blob, snapshot).unwrap();

    // Wave 2 runs while we analyze `snapshot`.
    let w2: Vec<_> = (10..13).map(|s| upload(s, 20)).collect();
    let chunks = DisjointChunks::new(snap_size, 8 * RECORD_BYTES as u64);
    let mut stats = CameraStats::default();
    for range in chunks.iter() {
        let data = store.read(blob, snapshot, range.offset, range.size).unwrap();
        stats.merge(&map_chunk(&data));
    }
    assert_eq!(stats.total(), 60, "wave-1 photos, exactly");
    for h in w2 {
        h.join().unwrap();
    }
    // The analyzed snapshot hasn't moved; the blob has.
    assert_eq!(store.get_size(blob, snapshot).unwrap(), snap_size);
    let now = store.get_recent(blob).unwrap();
    assert_eq!(store.get_size(blob, now).unwrap(), 120 * RECORD_BYTES as u64);
}

#[test]
fn branches_of_branches_with_streams() {
    let store = BlobSeer::builder()
        .page_size(1024)
        .data_providers(5)
        .metadata_providers(5)
        .build()
        .unwrap();
    let seed = 1;
    let blob = store.create().id();
    let mut stream = AppendStream::new(seed, 500, 1500);
    let mut last = Version(0);
    for _ in 0..10 {
        last = store.append(blob, &stream.next_chunk()).unwrap();
    }
    store.sync(blob, last).unwrap();
    let base_size = store.get_size(blob, last).unwrap();

    // Chain of 4 branches, each appending its own marker.
    let mut chain = vec![(blob, last)];
    for i in 0..4u8 {
        let (parent, at) = *chain.last().unwrap();
        let child = store.branch(parent, at).unwrap().id();
        let v = store.append(child, &[i; 100]).unwrap();
        store.sync(child, v).unwrap();
        chain.push((child, v));
    }
    // Every branch: shared prefix identical to the stream, own suffix
    // stacked markers.
    for (depth, &(id, v)) in chain.iter().enumerate().skip(1) {
        let size = store.get_size(id, v).unwrap();
        assert_eq!(size, base_size + depth as u64 * 100);
        let prefix = store.read(id, v, 0, base_size).unwrap();
        assert_eq!(prefix, AppendStream::expected(seed, 0, base_size));
        for d in 0..depth {
            let marker = store.read(id, v, base_size + d as u64 * 100, 100).unwrap();
            assert!(marker.iter().all(|&b| b == d as u8), "branch {depth} marker {d}");
        }
    }
    // The trunk never grew.
    assert_eq!(store.get_size(blob, store.get_recent(blob).unwrap()).unwrap(), base_size);
}

#[test]
fn concurrent_writers_on_sibling_branches() {
    // Branches are fully independent after the fork: concurrent writers
    // on N sibling branches must never interfere, while the shared
    // prefix stays byte-identical through every lineage.
    let store =
        BlobSeer::builder().page_size(512).data_providers(6).metadata_providers(4).build().unwrap();
    let trunk = store.create().id();
    let seed = 0xabcd;
    let mut stream = AppendStream::new(seed, 200, 1000);
    let mut last = Version(0);
    for _ in 0..8 {
        last = store.append(trunk, &stream.next_chunk()).unwrap();
    }
    store.sync(trunk, last).unwrap();
    let base_size = store.get_size(trunk, last).unwrap();

    let branches: Vec<_> = (0..4).map(|_| store.branch(trunk, last).unwrap().id()).collect();
    let mut handles = Vec::new();
    for (i, &b) in branches.iter().enumerate() {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            let mut v = Version(0);
            for k in 0..20u8 {
                v = store.append(b, &[i as u8 * 20 + k; 100]).unwrap();
            }
            store.sync(b, v).unwrap();
            v
        }));
    }
    let finals: Vec<Version> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, (&b, &v)) in branches.iter().zip(&finals).enumerate() {
        assert_eq!(store.get_size(b, v).unwrap(), base_size + 20 * 100);
        // Shared prefix intact through this branch's lineage.
        let prefix = store.read(b, v, 0, base_size).unwrap();
        assert_eq!(prefix, AppendStream::expected(seed, 0, base_size), "branch {i}");
        // Own suffix: the last appended marker.
        let tail = store.read(b, v, base_size + 19 * 100, 100).unwrap();
        assert!(tail.iter().all(|&x| x == i as u8 * 20 + 19));
    }
    // The trunk never moved.
    assert_eq!(store.get_recent(trunk).unwrap(), last);
}

#[test]
fn get_recent_is_monotonic_under_load() {
    let store = BlobSeer::builder()
        .page_size(2048)
        .data_providers(4)
        .metadata_providers(4)
        .build()
        .unwrap();
    let blob = store.create().id();
    let v = store.append(blob, &[0u8; 100]).unwrap();
    store.sync(blob, v).unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = {
        let store = store.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut prev = Version(0);
            let mut observed = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let v = store.get_recent(blob).unwrap();
                assert!(v >= prev, "GET_RECENT went backwards: {v} < {prev}");
                // The spec also promises the size of any returned
                // version is immediately available.
                store.get_size(blob, v).unwrap();
                prev = v;
                observed += 1;
            }
            observed
        })
    };
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let store = store.clone();
        writers.push(std::thread::spawn(move || {
            let mut stream = AppendStream::new(w, 50, 2000);
            for _ in 0..50 {
                store.append(blob, &stream.next_chunk()).unwrap();
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(watcher.join().unwrap() > 0);
    store.sync(blob, Version(201)).unwrap();
}

#[test]
fn stats_reconcile_with_logical_state() {
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(7)
        .metadata_providers(3)
        .build()
        .unwrap();
    let blob = store.create().id();
    let v1 = store.append(blob, &vec![1u8; 10 * 4096]).unwrap();
    let v2 = store.write(blob, &vec![2u8; 4096], 0).unwrap();
    store.sync(blob, v2).unwrap();
    let _ = v1;
    let stats = store.stats();
    assert_eq!(stats.physical_pages, 11);
    assert_eq!(stats.physical_bytes, 11 * 4096);
    assert_eq!(stats.vm.blobs, 1);
    assert_eq!(stats.vm.assigned, 2);
    assert_eq!(stats.vm.published, 2);
    // 10-page tree (10+5+3+2+1+1 nodes... exactly what the planner says)
    // plus the single-page overwrite's spine.
    assert_eq!(stats.metadata_nodes, stats.metadata.total_entries);
    assert!(stats.providers.iter().map(|p| p.pages).sum::<usize>() == 11);
}
