//! Property: writer crashes never corrupt the store. For any sequence
//! of WRITE/APPEND operations where an arbitrary subset of writers dies
//! at an arbitrary prefix of its pipelined update:
//!
//! (a) every surviving writer's version still publishes once the dead
//!     versions are aborted, and
//! (b) every published snapshot is byte-identical to a blocking-write
//!     oracle in which dead updates grow the blob (their assigned
//!     offsets are part of the total order) but contribute only what
//!     they made durable *as metadata*: nothing for crashes before the
//!     leaf store, their full bytes for a crash after it (repair fills
//!     gaps, never overwrites — see `crates/core/src/abort.rs`), and
//! (c) every crashed version is a typed `VersionAborted` hole.

use blobseer::{Blob, BlobSeer, ByteRange, Bytes, CrashPoint, PendingWrite, Version};
use proptest::prelude::*;

const PSIZE: u64 = 32;

#[derive(Clone, Copy, Debug)]
enum Fate {
    Survive,
    /// Crash at the given pipeline prefix; `defer` leaves the wedged
    /// version in place while later updates pile up behind it (abort
    /// happens at the end), `!defer` aborts right away.
    Crash {
        point: CrashPoint,
        defer: bool,
    },
}

#[derive(Clone, Debug)]
enum Op {
    Append { len: usize, fill: u8, fate: Fate },
    Write { offset_permille: u16, len: usize, fill: u8, fate: Fate },
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    prop_oneof![
        3 => Just(Fate::Survive),
        1 => (
            prop_oneof![
                Just(CrashPoint::AfterPrepare),
                Just(CrashPoint::AfterBoundaryPages),
                Just(CrashPoint::AfterPartialMetadata),
                Just(CrashPoint::BeforeNotify),
            ],
            any::<bool>()
        )
            .prop_map(|(point, defer)| Fate::Crash { point, defer }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (1usize..200, any::<u8>(), fate_strategy())
            .prop_map(|(len, fill, fate)| Op::Append { len, fill, fate }),
        1 => (0u16..=1000, 1usize..150, any::<u8>(), fate_strategy())
            .prop_map(|(offset_permille, len, fill, fate)| Op::Write {
                offset_permille,
                len,
                fill,
                fate
            }),
    ]
}

fn fill_bytes(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(13) | 1).collect()
}

fn build() -> (BlobSeer, Blob) {
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(5)
        .metadata_providers(3)
        .io_threads(2)
        .pipeline_threads(4)
        .build()
        .unwrap();
    let blob = store.create();
    (store, blob)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn crashed_writers_never_corrupt_survivors(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let (store, blob) = build();

        // Oracle: a zero-filled buffer to which every update applies at
        // its assigned offset — survivors copy their bytes, dead
        // writers only grow the blob. `expected[v]` snapshots the
        // buffer right after version v+1 was assigned.
        let mut oracle: Vec<u8> = Vec::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        let mut crashed: Vec<bool> = Vec::new();

        let mut pendings: Vec<PendingWrite> = Vec::new();
        let mut deferred: Vec<Version> = Vec::new();
        let mut assigned_size = 0u64;

        for op in &ops {
            let (offset, data, fate) = match *op {
                Op::Append { len, fill, fate } => (assigned_size, fill_bytes(len, fill), fate),
                Op::Write { offset_permille, len, fill, fate } => (
                    assigned_size * u64::from(offset_permille) / 1000,
                    fill_bytes(len, fill),
                    fate,
                ),
            };
            let end = offset + data.len() as u64;
            if oracle.len() < end as usize {
                oracle.resize(end as usize, 0);
            }
            assigned_size = assigned_size.max(end);

            match fate {
                Fate::Survive => {
                    oracle[offset as usize..end as usize].copy_from_slice(&data);
                    let pending = match *op {
                        Op::Append { .. } => blob.append_pipelined(Bytes::from(data)).unwrap(),
                        Op::Write { .. } => {
                            blob.write_pipelined(Bytes::from(data), offset).unwrap()
                        }
                    };
                    crashed.push(false);
                    prop_assert_eq!(pending.version().raw() as usize, crashed.len());
                    pendings.push(pending);
                }
                Fate::Crash { point, defer } => {
                    // A crash point past AfterPrepare merges boundary
                    // bytes from snapshot vw−1 on *this* thread, which
                    // would block while an unaborted hole sits below.
                    let point = if deferred.is_empty() { point } else { CrashPoint::AfterPrepare };
                    // A writer that died only after all its leaves
                    // were stored leaves its content behind (repair
                    // fills gaps, never overwrites); every earlier
                    // crash point stored no leaf, so the hole reads as
                    // predecessor bytes + zeros.
                    if point == CrashPoint::BeforeNotify {
                        oracle[offset as usize..end as usize].copy_from_slice(&data);
                    }
                    let v = match *op {
                        Op::Append { .. } => {
                            blob.crash_append(Bytes::from(data), point).unwrap()
                        }
                        Op::Write { .. } => {
                            blob.crash_write(Bytes::from(data), offset, point).unwrap()
                        }
                    };
                    crashed.push(true);
                    prop_assert_eq!(v.raw() as usize, crashed.len());
                    if defer || !deferred.is_empty() || blob.abort(v).is_err() {
                        deferred.push(v);
                    }
                }
            }
            expected.push(oracle.clone());
        }

        // Recovery: abort the piled-up holes lowest-first (each repair
        // waits only on strictly lower, already-repaired versions).
        deferred.sort_unstable();
        deferred.dedup();
        for v in deferred {
            match blob.abort(v) {
                // The background sweeper may have beaten us to a
                // version that piled up long enough for later stages
                // to run — equally valid recovery.
                Ok(()) | Err(blobseer::BlobError::AbortConflict(_)) => {}
                other => panic!("abort of deferred {v:?} failed: {other:?}"),
            }
        }
        // (a) every survivor publishes.
        let mut newest = Version(0);
        for pending in pendings {
            newest = newest.max(pending.wait().unwrap());
        }
        if newest > Version(0) {
            blob.sync(newest).unwrap();
        }

        // (b) + (c): every version is either byte-identical to the
        // oracle or a typed hole.
        for (i, &died) in crashed.iter().enumerate() {
            let v = Version(i as u64 + 1);
            if died {
                prop_assert!(
                    matches!(blob.snapshot(v), Err(blobseer::BlobError::VersionAborted { .. })),
                    "{:?} must be an aborted hole",
                    v
                );
                continue;
            }
            let snap = blob.snapshot(v).unwrap();
            prop_assert_eq!(snap.len() as usize, expected[i].len(), "{:?} size", v);
            if snap.is_empty() {
                continue;
            }
            let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
            prop_assert_eq!(&bytes[..], &expected[i][..], "{:?} content", v);
        }
        let aborted_total = crashed.iter().filter(|&&c| c).count() as u64;
        prop_assert_eq!(store.stats().vm.aborted, aborted_total);
    }
}
