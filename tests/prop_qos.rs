//! Property tests of the QoS admission path (PR 8).
//!
//! Two statements, checked together on random multi-tenant workloads:
//!
//! * **Throttling is invisible in the data plane.** A throttled
//!   [`MultiTenantIngest`] run (tight op quota + 1 ms admission
//!   deadline on the zipf-head tenant, refusals retried) publishes
//!   byte-identical content to an unthrottled oracle run of the same
//!   seed — QoS may delay or refuse an update, never corrupt, reorder
//!   within a tenant, or drop one.
//! * **Admission conservation.** Per tenant, the engine's counters
//!   account for every attempt: `admitted` equals the appends that
//!   published (each chunk is admitted exactly once, however many
//!   refusals preceded it) and `throttled` equals the refusals the
//!   driver retried through — nothing admitted is lost, nothing
//!   refused goes uncounted.

use blobseer::{BlobSeer, QosConfig, TenantId, TenantQuota};
use blobseer_workloads::MultiTenantIngest;
use proptest::prelude::*;

fn build(qos: Option<QosConfig>) -> BlobSeer {
    let mut b = BlobSeer::builder()
        .page_size(512)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2);
    if let Some(q) = qos {
        b = b.qos(q);
    }
    b.build().expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    #[test]
    fn throttled_ingest_matches_unthrottled_oracle(
        seed in any::<u64>(),
        tenants in 1usize..=3,
        skew_steps in 0u8..=2,
        max_burst in 1usize..=3,
        appends in 8u64..=16,
        ops_per_sec in 20u64..=50,
    ) {
        let driver = MultiTenantIngest::new(tenants, skew_steps as f64 * 0.6, max_burst)
            .chunk_len(64, 512);

        // Oracle: the same workload with no QoS subsystem at all.
        let free = build(None);
        let (free_blobs, free_report) = driver.run(&free, seed, appends).unwrap();

        // Measured: tenant 0 (the zipf head) on a tight op bucket with
        // burst 1 and a 1 ms admission deadline, so back-to-back
        // bursts genuinely get refused and retried.
        let qos = QosConfig::default()
            .with_tenant(
                0,
                TenantQuota { ops_per_sec, burst_ops: 1, ..TenantQuota::unlimited() },
            )
            .with_max_wait_ms(1);
        let gated = build(Some(qos));
        let (gated_blobs, gated_report) = driver.run(&gated, seed, appends).unwrap();

        for i in 0..tenants {
            // Data plane: byte-identical published state per tenant.
            prop_assert_eq!(free_report.tenants[i].appends, gated_report.tenants[i].appends);
            prop_assert_eq!(free_report.tenants[i].bytes, gated_report.tenants[i].bytes);
            prop_assert_eq!(free_report.tenants[i].last, gated_report.tenants[i].last);
            MultiTenantIngest::verify(&free_blobs[i], seed, &free_report.tenants[i]).unwrap();
            MultiTenantIngest::verify(&gated_blobs[i], seed, &gated_report.tenants[i]).unwrap();

            // Control plane: admitted + throttled == submitted.
            let stats = gated.tenant_qos_stats(TenantId(i as u32)).unwrap();
            let r = &gated_report.tenants[i];
            prop_assert_eq!(stats.admitted, r.appends, "each published chunk admitted once");
            prop_assert_eq!(stats.throttled, r.throttled, "each refusal counted once");
            let submitted = r.appends + r.throttled;
            prop_assert_eq!(stats.admitted + stats.throttled, submitted);
            if i > 0 {
                prop_assert_eq!(stats.throttled, 0, "unlimited tenants are never refused");
            }
        }
    }
}
