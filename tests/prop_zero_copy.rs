//! Property tests for the zero-copy write path: `write_bytes` /
//! `append_bytes` must be observationally identical to the `&[u8]` API
//! across unaligned offsets and page sizes, with and without the
//! zero-copy carving and chunked-dispatch optimizations.

use blobseer::{BlobSeer, Bytes};
use proptest::prelude::*;

/// Deterministic, offset-dependent payload so misplaced bytes are
/// detected no matter where they land.
fn pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8).collect()
}

fn build(page_size: u64, zero_copy: bool, chunks: usize) -> BlobSeer {
    BlobSeer::builder()
        .page_size(page_size)
        .data_providers(4)
        .metadata_providers(4)
        .io_threads(3)
        .zero_copy_pages(zero_copy)
        .io_chunks_per_thread(chunks)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// An interleaving of appends and overwrites applied through the
    /// slice API and through the zero-copy Bytes API produces blobs
    /// that read back byte-identical, at every prefix version.
    #[test]
    fn bytes_api_matches_slice_api(
        page_pow in 8u32..12, // 256 B .. 2 KiB pages
        ops in proptest::collection::vec((any::<u64>(), 1usize..6000, any::<u64>()), 1..10),
    ) {
        let psize = 1u64 << page_pow;
        let slice_store = build(psize, false, 0); // the pre-PR baseline
        let bytes_store = build(psize, true, 1); // the optimized path
        let a = slice_store.create().id();
        let b = bytes_store.create().id();

        let mut size = 0u64;
        for (i, (seed, len, off_sel)) in ops.into_iter().enumerate() {
            let data = pattern(seed, len);
            if i % 2 == 0 || size == 0 {
                let va = slice_store.append(a, &data).unwrap();
                let vb = bytes_store.append_bytes(b, Bytes::from(data)).unwrap();
                prop_assert_eq!(va, vb);
                size += len as u64;
            } else {
                // Unaligned overwrite somewhere inside the blob; may
                // also grow it past the end.
                let offset = off_sel % size;
                let va = slice_store.write(a, &data, offset).unwrap();
                let vb = bytes_store.write_bytes(b, Bytes::from(data), offset).unwrap();
                prop_assert_eq!(va, vb);
                size = size.max(offset + len as u64);
            }
        }

        let v = slice_store.get_recent(a).unwrap();
        prop_assert_eq!(v, bytes_store.get_recent(b).unwrap());
        slice_store.sync(a, v).unwrap();
        bytes_store.sync(b, v).unwrap();
        prop_assert_eq!(slice_store.get_size(a, v).unwrap(), size);
        prop_assert_eq!(bytes_store.get_size(b, v).unwrap(), size);
        let want = slice_store.read(a, v, 0, size).unwrap();
        let got = bytes_store.read(b, v, 0, size).unwrap();
        prop_assert_eq!(want, got);
    }

    /// Appending slices of one shared refcounted buffer (the paper's
    /// "huge upload, one wire buffer" shape) reconstructs the buffer.
    #[test]
    fn shared_buffer_slices_append_back_to_identity(
        page_pow in 8u32..11,
        total in 2000usize..20000,
        cuts in proptest::collection::vec(1usize..2000, 0..6),
    ) {
        let store = build(1u64 << page_pow, true, 1);
        let blob = store.create().id();
        let source = Bytes::from(pattern(42, total));

        let mut at = 0usize;
        let mut last = None;
        for cut in cuts {
            let end = (at + cut).min(total);
            if end > at {
                last = Some(store.append_bytes(blob, source.slice(at..end)).unwrap());
                at = end;
            }
        }
        if at < total {
            last = Some(store.append_bytes(blob, source.slice(at..total)).unwrap());
            at = total;
        }
        let v = last.unwrap();
        store.sync(blob, v).unwrap();
        prop_assert_eq!(store.get_size(blob, v).unwrap(), at as u64);
        prop_assert_eq!(store.read(blob, v, 0, at as u64).unwrap(), source.as_ref());
    }
}
