//! Property: the orphan scrubber is safe and complete. For any random
//! mix of surviving appends, crashed writers (every `CrashPoint`),
//! explicit aborts and GC retires:
//!
//! (a) **safety** — no live page is ever reclaimed: every readable
//!     snapshot is byte-identical before and after `scrub_orphans`;
//! (b) **completeness** — all leaked pages are reclaimed: once the
//!     deployment is quiescent a second scrub finds every scanned page
//!     marked live and deletes nothing (the leak counter is zero);
//! (c) **accounting** — physical storage drops by exactly the bytes
//!     the report claims.

use blobseer::{BlobError, BlobSeer, ByteRange, Bytes, CrashPoint, Version};
use proptest::prelude::*;

const PSIZE: u64 = 32;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// A healthy append that publishes.
    Append { len: usize, fill: u8 },
    /// A writer that dies at the given pipeline prefix; recovery (lease
    /// expiry + sweep + repair) runs before the next op.
    Crash { len: usize, fill: u8, point: CrashPoint },
    /// A pipelined append cancelled right away (explicit abort; racing
    /// completion is allowed to win).
    Abort { len: usize, fill: u8 },
    /// Retire all history below the newest readable version.
    Retire,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let point = prop_oneof![
        Just(CrashPoint::AfterPrepare),
        Just(CrashPoint::AfterBoundaryPages),
        Just(CrashPoint::AfterPartialMetadata),
        Just(CrashPoint::BeforeNotify),
    ];
    prop_oneof![
        3 => (1usize..200, any::<u8>()).prop_map(|(len, fill)| Op::Append { len, fill }),
        2 => (1usize..200, any::<u8>(), point)
            .prop_map(|(len, fill, point)| Op::Crash { len, fill, point }),
        1 => (1usize..100, any::<u8>()).prop_map(|(len, fill)| Op::Abort { len, fill }),
        1 => Just(Op::Retire),
    ]
}

fn fill_bytes(len: usize, fill: u8) -> Bytes {
    Bytes::from(
        (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(7) | 1).collect::<Vec<_>>(),
    )
}

/// Every still-readable snapshot's bytes, oldest first.
fn readable_snapshots(blob: &blobseer::Blob, upto: Version) -> Vec<(Version, Bytes)> {
    (1..=upto.raw())
        .map(Version)
        .filter_map(|v| match blob.snapshot(v) {
            Ok(snap) => {
                let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
                Some((v, bytes))
            }
            Err(BlobError::VersionAborted { .. }) | Err(BlobError::VersionRetired { .. }) => None,
            Err(other) => panic!("unexpected read error on {v}: {other}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn scrub_never_reclaims_live_pages_and_reclaims_all_leaks(
        ops in proptest::collection::vec(op_strategy(), 1..25)
    ) {
        let store = BlobSeer::builder()
            .page_size(PSIZE)
            .data_providers(3)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(2)
            .lease_ttl_ticks(64)
            .build()
            .unwrap();
        let blob = store.create();
        let ttl = store.config().lease_ttl_ticks;
        let mut last_assigned = Version(0);

        for op in &ops {
            match *op {
                Op::Append { len, fill } => {
                    let v = blob.append_bytes(fill_bytes(len, fill)).unwrap();
                    blob.sync(v).unwrap();
                    last_assigned = v;
                }
                Op::Crash { len, fill, point } => {
                    let v = blob.crash_append(fill_bytes(len, fill), point).unwrap();
                    store.advance_lease_clock(ttl + 1);
                    let report = store.sweep_expired_leases();
                    prop_assert!(report.aborted.contains(&(blob.id(), v)));
                    last_assigned = v;
                }
                Op::Abort { len, fill } => {
                    let pending = blob.append_pipelined(fill_bytes(len, fill)).unwrap();
                    last_assigned = pending.version();
                    match pending.abort() {
                        Ok(()) | Err(BlobError::AbortConflict(_)) => {}
                        Err(other) => panic!("abort failed: {other}"),
                    }
                }
                Op::Retire => {
                    let keep = blob.recent_version().unwrap();
                    if keep > Version(0) {
                        match blob.retire_versions(keep) {
                            // An Abort op whose explicit abort lost the
                            // race leaves a published version; a
                            // pending abort can also still be in
                            // flight. Both surface as GcConflict —
                            // retirement is simply skipped this round.
                            Ok(_) | Err(BlobError::GcConflict(_)) => {}
                            Err(other) => panic!("retire failed: {other}"),
                        }
                    }
                }
            }
        }
        // Quiesce: any abort-raced completion publishes, stuck repairs
        // retry, and the in-flight table drains.
        if last_assigned > Version(0) {
            match blob.sync(last_assigned) {
                Ok(()) | Err(BlobError::VersionAborted { .. }) => {}
                Err(other) => panic!("final sync failed: {other}"),
            }
        }
        store.advance_lease_clock(ttl + 1);
        store.sweep_expired_leases();

        // (a) safety: readable snapshots are byte-identical across the
        // scrub.
        let before = readable_snapshots(&blob, last_assigned);
        let physical_before = store.stats().physical_bytes;
        let report = store.scrub_orphans().unwrap();
        let after = readable_snapshots(&blob, last_assigned);
        prop_assert_eq!(before, after, "a live page was reclaimed");

        // (c) accounting: the report's bytes match the stores'.
        prop_assert_eq!(
            store.stats().physical_bytes,
            physical_before - report.bytes_reclaimed
        );

        // (b) completeness: at quiescence the leak counter is zero —
        // everything still stored is marked live, and a second pass
        // reclaims nothing.
        let again = store.scrub_orphans().unwrap();
        prop_assert_eq!(again.pages_reclaimed, 0, "first scrub left a leak behind");
        prop_assert_eq!(again.pages_exempt, 0);
        prop_assert_eq!(again.pages_scanned as usize, again.pages_marked);
        prop_assert_eq!(again.pages_scanned, store.stats().physical_pages as u64);
    }
}
