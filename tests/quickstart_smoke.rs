//! Smoke test pinning the *flat, id-keyed* facade end-to-end: the
//! wrapper surface (CREATE → APPEND → SYNC → WRITE → READ →
//! GET_RECENT → BRANCH → stats) must keep working with bare `BlobId`s
//! even as the handle API (`Blob`/`Snapshot`, exercised by
//! `examples/quickstart.rs` and `crates/core/tests/handles.rs`)
//! evolves — the deprecation-free wrapper policy of ROADMAP.md.

use blobseer::{BlobSeer, Version};

#[test]
fn quickstart_append_read_version_ordering() {
    let store = BlobSeer::builder()
        .page_size(4096)
        .data_providers(8)
        .metadata_providers(8)
        .build()
        .expect("valid configuration");

    // CREATE: a new blob starts as the empty snapshot, version 0.
    let blob = store.create().id();
    assert_eq!(store.get_size(blob, Version(0)).unwrap(), 0);

    // APPEND twice; versions are assigned in total order.
    let v1 = store.append(blob, &[b'a'; 10_000]).unwrap();
    let v2 = store.append(blob, &[b'b'; 10_000]).unwrap();
    assert!(v1 < v2, "appends must be versioned in submission order");

    // SYNC = read-your-writes; sizes reflect each snapshot.
    store.sync(blob, v2).unwrap();
    assert_eq!(store.get_size(blob, v1).unwrap(), 10_000);
    assert_eq!(store.get_size(blob, v2).unwrap(), 20_000);

    // Read back both snapshots: v1 is all 'a', v2 is 'a' then 'b'.
    assert!(store.read(blob, v1, 0, 10_000).unwrap().iter().all(|&b| b == b'a'));
    let full = store.read(blob, v2, 0, 20_000).unwrap();
    assert!(full[..10_000].iter().all(|&b| b == b'a'));
    assert!(full[10_000..].iter().all(|&b| b == b'b'));

    // WRITE overwrites an unaligned range, creating v3; v2 is immutable.
    let v3 = store.write(blob, &[b'X'; 5_000], 7_500).unwrap();
    store.sync(blob, v3).unwrap();
    let before = store.read(blob, v2, 7_500, 5_000).unwrap();
    let after = store.read(blob, v3, 7_500, 5_000).unwrap();
    assert!(before.iter().all(|&b| b == b'a' || b == b'b'));
    assert!(after.iter().all(|&b| b == b'X'));

    // GET_RECENT observes the latest published version.
    assert_eq!(store.get_recent(blob).unwrap(), Version(3));

    // BRANCH forks from v2; the fork evolves independently.
    let fork = store.branch(blob, v2).unwrap().id();
    let f3 = store.append(fork, &[b'z'; 1_000]).unwrap();
    store.sync(fork, f3).unwrap();
    assert_eq!(store.get_size(fork, f3).unwrap(), 21_000);
    assert_eq!(store.get_size(blob, Version(3)).unwrap(), 20_000);

    // Version ordering across the whole history stays strict.
    let versions = [Version(0), v1, v2, v3];
    for pair in versions.windows(2) {
        assert!(pair[0] < pair[1]);
    }

    // Metadata sharing: 4 snapshots of a ~20 KB blob must cost far less
    // than 4x the logical bytes.
    let stats = store.stats();
    assert!(stats.physical_bytes < 2 * 20_000 + 4096, "versioning should share unmodified pages");
    assert!(stats.metadata_nodes > 0);
}
