//! Property: with replication ≥ 2, killing **or corrupting any single
//! data provider** mid-workload loses nothing. For any sequence of
//! WRITE/APPEND operations with a fault injected at an arbitrary point
//! against an arbitrary provider:
//!
//! (a) **no update fails** — write-path failover re-places copies onto
//!     live providers instead of surfacing the fault;
//! (b) every published snapshot stays **byte-identical to a healthy
//!     oracle** (reads treat dead/corrupt copies as misses and fall
//!     back along the deterministic chain, then past it);
//! (c) after the provider recovers, [`BlobSeer::repair_replicas`]
//!     restores full replication — proven by failing each provider in
//!     turn afterwards and re-reading everything — and
//! (d) a second repair pass is a no-op.

use std::sync::Arc;

use blobseer::{BlobSeer, ByteRange, FaultPlan, MemoryPageStore, PageStore};
use proptest::prelude::*;

const PSIZE: u64 = 32;
const PROVIDERS: usize = 4;

#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Take the provider offline (requests fail until recovery).
    Kill,
    /// Flip one bit in every page copy the provider holds.
    Corrupt,
}

#[derive(Clone, Debug)]
enum Op {
    Append { len: usize, fill: u8 },
    Write { offset_permille: u16, len: usize, fill: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1usize..200, any::<u8>()).prop_map(|(len, fill)| Op::Append { len, fill }),
        1 => (0u16..=1000, 1usize..150, any::<u8>()).prop_map(|(offset_permille, len, fill)| {
            Op::Write { offset_permille, len, fill }
        }),
    ]
}

fn fill_bytes(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(13) | 1).collect()
}

fn build() -> (BlobSeer, Vec<Arc<FaultPlan>>) {
    let plans: Vec<Arc<FaultPlan>> = (0..PROVIDERS)
        .map(|i| Arc::new(FaultPlan::with_seed(Arc::new(MemoryPageStore::new()), i as u64)))
        .collect();
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .metadata_providers(3)
        .io_threads(2)
        .pipeline_threads(1)
        .replication(2)
        .page_stores(plans.iter().map(|p| Arc::clone(p) as Arc<dyn PageStore>).collect())
        .build()
        .unwrap();
    (store, plans)
}

fn assert_matches_oracle(store: &BlobSeer, blob: &blobseer::Blob, oracle: &[u8]) {
    let v = store.get_recent(blob).unwrap();
    let snap = blob.snapshot(v).unwrap();
    assert_eq!(snap.len() as usize, oracle.len());
    if !oracle.is_empty() {
        let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
        assert_eq!(&bytes[..], oracle, "snapshot diverged from the healthy oracle");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn single_provider_faults_lose_nothing(
        ops in proptest::collection::vec(op_strategy(), 2..24),
        fault_at in 0usize..24,
        victim in 0usize..PROVIDERS,
        kill in any::<bool>(),
    ) {
        let (store, plans) = build();
        let blob = store.create();
        let fault = if kill { Fault::Kill } else { Fault::Corrupt };
        let fault_at = fault_at % ops.len();

        let mut oracle: Vec<u8> = Vec::new();
        let mut newest = blobseer::Version(0);
        for (i, op) in ops.iter().enumerate() {
            if i == fault_at {
                match fault {
                    Fault::Kill => plans[victim].set_offline(true),
                    Fault::Corrupt => {
                        for (pid, _) in plans[victim].scan().unwrap() {
                            plans[victim].corrupt_stored_page(pid).unwrap();
                        }
                    }
                }
            }
            let (offset, data) = match *op {
                Op::Append { len, fill } => (oracle.len() as u64, fill_bytes(len, fill)),
                Op::Write { offset_permille, len, fill } => (
                    oracle.len() as u64 * u64::from(offset_permille) / 1000,
                    fill_bytes(len, fill),
                ),
            };
            let end = offset as usize + data.len();
            if oracle.len() < end {
                oracle.resize(end, 0);
            }
            oracle[offset as usize..end].copy_from_slice(&data);
            // (a) the update must succeed despite the fault.
            let v = match *op {
                Op::Append { .. } => blob.append(&data).unwrap(),
                Op::Write { .. } => blob.write(&data, offset).unwrap(),
            };
            newest = newest.max(v);
        }
        blob.sync(newest).unwrap();

        // (b) the degraded deployment still serves the oracle's bytes.
        assert_matches_oracle(&store, &blob, &oracle);

        // (c) recover, repair, and prove full replication: afterwards
        // the loss of ANY single provider must not lose a byte.
        plans[victim].set_offline(false);
        let report = store.repair_replicas().unwrap();
        prop_assert_eq!(report.pages_unrepairable, 0);
        prop_assert_eq!(report.providers_skipped, 0);
        for plan in &plans {
            plan.set_offline(true);
            assert_matches_oracle(&store, &blob, &oracle);
            plan.set_offline(false);
        }

        // (d) a second pass finds a healthy deployment and is a no-op.
        let second = store.repair_replicas().unwrap();
        prop_assert_eq!(second.copies_repaired, 0);
        prop_assert_eq!(second.copies_failed, 0);
        prop_assert_eq!(second.strays_trimmed, 0);
        prop_assert_eq!(second.pages_unrepairable, 0);
    }
}
