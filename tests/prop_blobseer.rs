//! Property-based tests of the full engine against a flat-buffer model.
//!
//! For any sequence of WRITE/APPEND/BRANCH operations, every published
//! snapshot of every blob must equal the model obtained by replaying
//! the same operations in version order on plain byte vectors. This is
//! the strongest single statement of the paper's semantics (§2:
//! "generating a new snapshot labeled with version k is semantically
//! equivalent to applying the update to a copy of the snapshot labeled
//! with version k − 1").

use std::collections::HashMap;

use blobseer::{BlobId, BlobSeer, Version};
use proptest::prelude::*;

const PSIZE: u64 = 32;

#[derive(Clone, Debug)]
enum Op {
    /// Append `len` patterned bytes to blob slot `slot % live`.
    Append { slot: usize, len: usize, fill: u8 },
    /// Overwrite at a relative offset (scaled into the current size).
    Write { slot: usize, offset_permille: u16, len: usize, fill: u8 },
    /// Branch the slot's blob at its most recent published version.
    Branch { slot: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<usize>(), 1usize..200, any::<u8>())
            .prop_map(|(slot, len, fill)| Op::Append { slot, len, fill }),
        4 => (any::<usize>(), 0u16..=1000, 1usize..150, any::<u8>())
            .prop_map(|(slot, offset_permille, len, fill)| Op::Write {
                slot, offset_permille, len, fill
            }),
        1 => any::<usize>().prop_map(|slot| Op::Branch { slot }),
    ]
}

/// Model of one blob: its snapshots by version.
#[derive(Clone, Default)]
struct ModelBlob {
    snapshots: Vec<Vec<u8>>,
}

impl ModelBlob {
    fn new() -> Self {
        ModelBlob { snapshots: vec![Vec::new()] }
    }

    fn latest(&self) -> &Vec<u8> {
        self.snapshots.last().expect("v0 exists")
    }

    fn apply(&mut self, offset: u64, data: &[u8]) {
        let mut next = self.latest().clone();
        let end = offset as usize + data.len();
        if next.len() < end {
            next.resize(end, 0);
        }
        next[offset as usize..end].copy_from_slice(data);
        self.snapshots.push(next);
    }
}

fn fill_bytes(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8).wrapping_mul(13) | 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let store = BlobSeer::builder()
            .page_size(PSIZE)
            .data_providers(5)
            .metadata_providers(3)
            .io_threads(2)
            .build()
            .unwrap();
        let mut blobs: Vec<BlobId> = vec![store.create().id()];
        let mut models: HashMap<BlobId, ModelBlob> = HashMap::new();
        models.insert(blobs[0], ModelBlob::new());

        for op in &ops {
            match *op {
                Op::Append { slot, len, fill } => {
                    let id = blobs[slot % blobs.len()];
                    let data = fill_bytes(len, fill);
                    let v = store.append(id, &data).unwrap();
                    let model = models.get_mut(&id).unwrap();
                    prop_assert_eq!(v.raw() as usize, model.snapshots.len());
                    let offset = model.latest().len() as u64;
                    model.apply(offset, &data);
                }
                Op::Write { slot, offset_permille, len, fill } => {
                    let id = blobs[slot % blobs.len()];
                    let model = models.get_mut(&id).unwrap();
                    let cur = model.latest().len() as u64;
                    let offset = cur * u64::from(offset_permille) / 1000;
                    let data = fill_bytes(len, fill);
                    let v = store.write(id, &data, offset).unwrap();
                    prop_assert_eq!(v.raw() as usize, model.snapshots.len());
                    model.apply(offset, &data);
                }
                Op::Branch { slot } => {
                    let id = blobs[slot % blobs.len()];
                    // Branch at the newest *published* version; sync
                    // first so that is the newest assigned one.
                    let model = models.get(&id).unwrap().clone();
                    let at = Version(model.snapshots.len() as u64 - 1);
                    store.sync(id, at).unwrap();
                    let child = store.branch(id, at).unwrap().id();
                    blobs.push(child);
                    // The child model shares the parent's history up to
                    // the branch point.
                    let child_model = ModelBlob {
                        snapshots: model.snapshots[..=at.raw() as usize].to_vec(),
                    };
                    models.insert(child, child_model);
                }
            }
        }

        // Verify every snapshot of every blob, byte for byte.
        for (&id, model) in &models {
            let newest = Version(model.snapshots.len() as u64 - 1);
            store.sync(id, newest).unwrap();
            for (v, expected) in model.snapshots.iter().enumerate() {
                let v = Version(v as u64);
                let size = store.get_size(id, v).unwrap();
                prop_assert_eq!(size, expected.len() as u64, "{:?} {:?}", id, v);
                let got = store.read(id, v, 0, size).unwrap();
                prop_assert_eq!(&got, expected, "{:?} {:?}", id, v);
            }
        }
    }

    #[test]
    fn reads_are_slices_of_full_reads(
        appends in proptest::collection::vec((1usize..300, any::<u8>()), 1..12),
        windows in proptest::collection::vec((0u16..=1000, 1u64..200), 1..12),
    ) {
        let store = BlobSeer::builder()
            .page_size(PSIZE)
            .data_providers(4)
            .metadata_providers(2)
            .build()
            .unwrap();
        let blob = store.create().id();
        let mut last = Version(0);
        for &(len, fill) in &appends {
            last = store.append(blob, &fill_bytes(len, fill)).unwrap();
        }
        store.sync(blob, last).unwrap();
        let size = store.get_size(blob, last).unwrap();
        let full = store.read(blob, last, 0, size).unwrap();
        for &(permille, len) in &windows {
            let offset = size * u64::from(permille) / 1000;
            let len = len.min(size - offset);
            let got = store.read(blob, last, offset, len).unwrap();
            prop_assert_eq!(&got[..], &full[offset as usize..(offset + len) as usize]);
        }
    }
}
