//! Integration tests for the two extensions beyond the paper's core
//! protocol: page replication with provider-failure tolerance (the
//! paper's §3.2/§6 future work) and version garbage collection.

use blobseer::{BlobError, BlobSeer, ProviderId, Version};

const PSIZE: u64 = 256;

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed)).collect()
}

fn replicated_store(replication: usize) -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(6)
        .metadata_providers(4)
        .replication(replication)
        .build()
        .unwrap()
}

#[test]
fn reads_survive_single_provider_failure_with_replication() {
    let s = replicated_store(2);
    let b = s.create().id();
    let data = patterned(PSIZE as usize * 12, 1);
    let v = s.append(b, &data).unwrap();
    s.sync(b, v).unwrap();

    // Kill each provider in turn: every byte stays readable via the
    // replica chain.
    for p in 0..6u32 {
        s.fail_provider(ProviderId(p)).unwrap();
        let got = s.read(b, v, 0, data.len() as u64).unwrap();
        assert_eq!(got, data, "with provider {p} down");
        s.recover_provider(ProviderId(p)).unwrap();
    }
}

#[test]
fn reads_fail_cleanly_without_replication() {
    let s = replicated_store(1);
    let b = s.create().id();
    let data = patterned(PSIZE as usize * 12, 2);
    let v = s.append(b, &data).unwrap();
    s.sync(b, v).unwrap();
    s.fail_provider(ProviderId(0)).unwrap();
    // Pages striped round-robin over 6 providers: provider 0 holds
    // pages 0, 6 — a full read must hit it and fail.
    let err = s.read(b, v, 0, data.len() as u64).unwrap_err();
    assert!(matches!(err, BlobError::ProviderUnavailable(_)), "expected unavailable, got {err:?}");
    // Ranges not touching provider 0 still work.
    assert_eq!(s.read(b, v, PSIZE, PSIZE).unwrap(), data[PSIZE as usize..2 * PSIZE as usize]);
    s.recover_provider(ProviderId(0)).unwrap();
    assert_eq!(s.read(b, v, 0, data.len() as u64).unwrap(), data);
}

#[test]
fn writes_survive_provider_failure_with_replication() {
    let s = replicated_store(3);
    let b = s.create().id();
    // Fail two providers before writing: allocation skips them for
    // primaries; replica chains may still name them (tolerated).
    s.fail_provider(ProviderId(2)).unwrap();
    s.fail_provider(ProviderId(3)).unwrap();
    let data = patterned(PSIZE as usize * 8, 3);
    let v = s.append(b, &data).unwrap();
    s.sync(b, v).unwrap();
    assert_eq!(s.read(b, v, 0, data.len() as u64).unwrap(), data);
    // After recovery everything still reads.
    s.recover_provider(ProviderId(2)).unwrap();
    s.recover_provider(ProviderId(3)).unwrap();
    assert_eq!(s.read(b, v, 0, data.len() as u64).unwrap(), data);
}

#[test]
fn replication_doubles_physical_footprint() {
    let s1 = replicated_store(1);
    let s2 = replicated_store(2);
    for s in [&s1, &s2] {
        let b = s.create().id();
        let v = s.append(b, &patterned(PSIZE as usize * 10, 4)).unwrap();
        s.sync(b, v).unwrap();
    }
    assert_eq!(s1.stats().physical_pages, 10);
    assert_eq!(s2.stats().physical_pages, 20);
}

#[test]
fn gc_reclaims_space_and_preserves_retained_versions() {
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(4)
        .build()
        .unwrap();
    let b = s.create().id();
    // v1: 16-page base; v2..v11: single-page overwrites.
    let base = patterned(PSIZE as usize * 16, 0);
    let mut model = base.clone();
    let mut snapshots = vec![Vec::new(), base.clone()];
    let mut last = s.append(b, &base).unwrap();
    for i in 0..10u64 {
        let patch = patterned(PSIZE as usize, 10 + i as u8);
        let off = (i % 16) * PSIZE;
        last = s.write(b, &patch, off).unwrap();
        model[off as usize..(off + PSIZE) as usize].copy_from_slice(&patch);
        snapshots.push(model.clone());
    }
    s.sync(b, last).unwrap();
    let before = s.stats();
    assert_eq!(before.physical_pages, 16 + 10);

    // Retire everything below v8.
    let report = s.retire_versions(b, Version(8)).unwrap();
    assert!(report.nodes_removed > 0, "{report:?}");
    assert!(report.pages_removed > 0, "{report:?}");
    assert_eq!(report.bytes_reclaimed, report.pages_removed as u64 * PSIZE);

    let after = s.stats();
    assert_eq!(after.physical_pages, before.physical_pages - report.pages_removed);
    assert_eq!(after.metadata_nodes, before.metadata_nodes - report.nodes_removed);

    // Retained snapshots are byte-identical to the model.
    for v in 8..=11u64 {
        let got = s.read(b, Version(v), 0, PSIZE * 16).unwrap();
        assert_eq!(got, snapshots[v as usize], "v{v}");
    }
    // Retired versions are cleanly rejected.
    for v in 1..8u64 {
        assert!(matches!(s.read(b, Version(v), 0, 1), Err(BlobError::VersionRetired { .. })));
        assert!(matches!(s.get_size(b, Version(v)), Err(BlobError::VersionRetired { .. })));
    }
    // The blob remains fully usable for new updates.
    let v12 = s.append(b, &patterned(100, 99)).unwrap();
    s.sync(b, v12).unwrap();
    assert_eq!(s.get_size(b, v12).unwrap(), PSIZE * 16 + 100);
}

#[test]
fn gc_keeps_pages_shared_into_retained_versions() {
    // Pages written by v1 but still visible in v3 must survive a GC
    // that retires v1 — reachability, not age, decides.
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(3)
        .metadata_providers(2)
        .build()
        .unwrap();
    let b = s.create().id();
    let base = patterned(PSIZE as usize * 8, 0);
    s.append(b, &base).unwrap(); // v1
    s.write(b, &patterned(PSIZE as usize, 1), 0).unwrap(); // v2
    let v3 = s.write(b, &patterned(PSIZE as usize, 2), PSIZE).unwrap(); // v3
    s.sync(b, v3).unwrap();

    let report = s.retire_versions(b, Version(3)).unwrap();
    // Only the two pages *replaced before v3* are unreachable: v1's
    // page 0 (replaced in v2, re-replaced in v3? no — page 0 replaced in
    // v2 survives into v3) — actually: v1 page0 (shadowed by v2) and
    // v1 page1 (shadowed by v3) are gone; v2's page 0 lives on in v3.
    assert_eq!(report.pages_removed, 2, "{report:?}");
    let expect: Vec<u8> = {
        let mut m = base;
        m[..PSIZE as usize].copy_from_slice(&patterned(PSIZE as usize, 1));
        m[PSIZE as usize..2 * PSIZE as usize].copy_from_slice(&patterned(PSIZE as usize, 2));
        m
    };
    assert_eq!(s.read(b, v3, 0, PSIZE * 8).unwrap(), expect);
}

#[test]
fn gc_blocked_by_branch_and_inflight() {
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(3)
        .metadata_providers(2)
        .build()
        .unwrap();
    let b = s.create().id();
    let v1 = s.append(b, &patterned(100, 0)).unwrap();
    let v2 = s.append(b, &patterned(100, 1)).unwrap();
    s.sync(b, v2).unwrap();
    let fork = s.branch(b, v1).unwrap().id();
    assert!(matches!(s.retire_versions(b, Version(2)), Err(BlobError::GcConflict(_))));
    // Retiring below the pin works; the branch still reads everything.
    s.retire_versions(b, Version(1)).unwrap();
    assert_eq!(s.get_size(fork, v1).unwrap(), 100);
    let fv = s.append(fork, &patterned(50, 2)).unwrap();
    s.sync(fork, fv).unwrap();
    assert_eq!(s.get_size(fork, fv).unwrap(), 150);
}

#[test]
fn gc_removes_replicas_too() {
    let s = replicated_store(2);
    let b = s.create().id();
    s.append(b, &patterned(PSIZE as usize * 4, 0)).unwrap(); // v1
    let v2 = s.write(b, &patterned(PSIZE as usize * 4, 1), 0).unwrap(); // v2 replaces all
    s.sync(b, v2).unwrap();
    assert_eq!(s.stats().physical_pages, 16, "8 logical pages x 2 copies");
    let report = s.retire_versions(b, Version(2)).unwrap();
    assert_eq!(report.pages_removed, 4, "v1's four pages");
    assert_eq!(report.bytes_reclaimed, 4 * 2 * PSIZE, "both copies counted");
    assert_eq!(s.stats().physical_pages, 8);
    assert_eq!(s.read(b, v2, 0, PSIZE * 4).unwrap(), patterned(PSIZE as usize * 4, 1));
}

#[test]
fn metadata_cache_preserves_correctness_and_hits() {
    let cached = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(4)
        .metadata_cache(10_000)
        .build()
        .unwrap();
    let b = cached.create().id();
    let data = patterned(PSIZE as usize * 32, 7);
    let v1 = cached.append(b, &data).unwrap();
    let v2 = cached.write(b, &patterned(PSIZE as usize, 8), 0).unwrap();
    cached.sync(b, v2).unwrap();
    // Repeated reads of both versions: all correct.
    for _ in 0..5 {
        assert_eq!(cached.read(b, v1, 0, data.len() as u64).unwrap(), data);
        assert_eq!(cached.read(b, v2, 0, PSIZE).unwrap(), patterned(PSIZE as usize, 8));
    }
    // The cache is actually being hit (writers warm it; readers reuse).
    let dht_gets = cached.stats().metadata.total_gets;
    // 6 full reads of a 32-page tree would need ~6*63 node fetches
    // uncached; with the cache the DHT sees far fewer.
    assert!(dht_gets < 100, "cache should absorb most node fetches, DHT saw {dht_gets}");
}

#[test]
fn gc_then_cache_cannot_resurrect_nodes() {
    // A cached node of a retired version must not make a retired
    // version readable again.
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(3)
        .metadata_providers(2)
        .metadata_cache(1000)
        .build()
        .unwrap();
    let b = s.create().id();
    let v1 = s.append(b, &patterned(PSIZE as usize * 4, 0)).unwrap();
    let v2 = s.write(b, &patterned(PSIZE as usize * 4, 1), 0).unwrap();
    s.sync(b, v2).unwrap();
    // Warm the cache with v1's tree.
    assert!(s.read(b, v1, 0, PSIZE * 4).is_ok());
    s.retire_versions(b, Version(2)).unwrap();
    assert!(matches!(s.read(b, v1, 0, 1), Err(BlobError::VersionRetired { .. })));
}
