//! A counting wait group with deadline support.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A counting rendezvous: `add` before dispatching work, `done` from each
/// job, `wait`/`wait_for` from the coordinator.
///
/// Unlike `crossbeam`'s wait group this one supports deadlines, which the
/// engine uses to bound blocking metadata waits.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<Inner>,
}

struct Inner {
    count: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    /// New group with a zero count.
    pub fn new() -> Self {
        WaitGroup { inner: Arc::new(Inner { count: Mutex::new(0), cv: Condvar::new() }) }
    }

    /// Register `n` outstanding jobs.
    pub fn add(&self, n: usize) {
        *self.inner.count.lock() += n;
    }

    /// Mark one job complete.
    pub fn done(&self) {
        let mut c = self.inner.count.lock();
        assert!(*c > 0, "WaitGroup::done without matching add");
        *c -= 1;
        if *c == 0 {
            self.inner.cv.notify_all();
        }
    }

    /// Current outstanding count.
    pub fn pending(&self) -> usize {
        *self.inner.count.lock()
    }

    /// Block until the count drops to zero.
    pub fn wait(&self) {
        let mut c = self.inner.count.lock();
        while *c > 0 {
            self.inner.cv.wait(&mut c);
        }
    }

    /// Block until the count drops to zero or the timeout elapses.
    /// Returns `true` on success, `false` on timeout.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut c = self.inner.count.lock();
        while *c > 0 {
            if self.inner.cv.wait_until(&mut c, deadline).timed_out() {
                return *c == 0;
            }
        }
        true
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitGroup").field("pending", &self.pending()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_completes_when_all_done() {
        let wg = WaitGroup::new();
        wg.add(4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let wg = wg.clone();
            handles.push(std::thread::spawn(move || wg.done()));
        }
        wg.wait();
        assert_eq!(wg.pending(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_with_zero_count_returns_immediately() {
        let wg = WaitGroup::new();
        wg.wait();
        assert!(wg.wait_for(Duration::from_millis(1)));
    }

    #[test]
    fn wait_for_times_out() {
        let wg = WaitGroup::new();
        wg.add(1);
        assert!(!wg.wait_for(Duration::from_millis(20)));
        wg.done();
        assert!(wg.wait_for(Duration::from_millis(20)));
    }

    #[test]
    #[should_panic]
    fn done_without_add_panics() {
        WaitGroup::new().done();
    }

    #[test]
    fn reusable_across_rounds() {
        let wg = WaitGroup::new();
        for round in 0..3 {
            wg.add(2);
            let a = wg.clone();
            let b = wg.clone();
            let h1 = std::thread::spawn(move || a.done());
            let h2 = std::thread::spawn(move || b.done());
            wg.wait();
            h1.join().unwrap();
            h2.join().unwrap();
            assert_eq!(wg.pending(), 0, "round {round}");
        }
    }
}
