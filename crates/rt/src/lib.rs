//! Client-side parallel I/O runtime.
//!
//! BlobSeer clients store and fetch pages "in parallel" and write all
//! metadata tree nodes "in parallel" (paper Algorithms 1, 2 and 4). The
//! paper's prototype does this with asynchronous RPC; within this
//! in-process reproduction the equivalent is a small fork-join thread
//! pool. Each client (or engine) owns a [`ThreadPool`]; operations
//! submit batches of independent jobs and wait for all of them.
//!
//! The pool is deliberately minimal: FIFO dispatch over a crossbeam
//! channel, no work stealing, no nesting (a job must not submit-and-wait
//! on the same pool — BlobSeer's fan-outs are one level deep, so this
//! restriction is free).

mod pool;
mod wait;

pub use pool::ThreadPool;
pub use wait::WaitGroup;

use std::sync::Arc;

/// Run `f(i)` for every `i in 0..n` on the pool, returning the results
/// in index order. Panics in jobs are propagated to the caller.
pub fn parallel_map<T, F>(pool: &ThreadPool, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        // Fast path: no dispatch overhead for single-page operations.
        return vec![f(0)];
    }
    let f = Arc::new(f);
    let (tx, rx) = crossbeam::channel::bounded(n);
    for i in 0..n {
        let f = Arc::clone(&f);
        let tx = tx.clone();
        pool.execute(move || {
            let out = f(i);
            // Receiver is alive until all results are collected; a send
            // error can only mean the caller panicked and went away.
            let _ = tx.send((i, out));
        });
    }
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut received = 0;
    while received < n {
        match rx.recv() {
            Ok((i, v)) => {
                slots[i] = Some(v);
                received += 1;
            }
            Err(_) => panic!("worker panicked during parallel_map"),
        }
    }
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Run `f(i)` for every `i in 0..n`, collecting results or the first
/// error. All jobs run to completion even when one fails (pages already
/// sent to providers are not cancelled in the paper's protocol either).
pub fn try_parallel<T, E, F>(pool: &ThreadPool, n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send + 'static,
    E: Send + 'static,
    F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
{
    parallel_map(pool, n, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_returns_in_order() {
        let pool = ThreadPool::new(4, "test");
        let out = parallel_map(&pool, 100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let pool = ThreadPool::new(2, "test");
        assert!(parallel_map(&pool, 0, |i| i).is_empty());
        assert_eq!(parallel_map(&pool, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn parallel_map_actually_parallel() {
        // With 4 workers and 4 jobs that rendezvous on a barrier, the
        // batch only completes if the jobs overlap in time.
        let pool = ThreadPool::new(4, "test");
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let b = Arc::clone(&barrier);
        let out = parallel_map(&pool, 4, move |i| {
            b.wait();
            i
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn parallel_map_more_jobs_than_workers() {
        let pool = ThreadPool::new(2, "test");
        let out = parallel_map(&pool, 1000, |i| i);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 999);
    }

    #[test]
    fn try_parallel_reports_error() {
        let pool = ThreadPool::new(4, "test");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let res: Result<Vec<usize>, String> = try_parallel(&pool, 50, move |i| {
            ran2.fetch_add(1, Ordering::SeqCst);
            if i == 13 {
                Err("boom".to_string())
            } else {
                Ok(i)
            }
        });
        assert!(res.is_err());
        // Every job still ran (no cancellation semantics).
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn try_parallel_ok_path() {
        let pool = ThreadPool::new(4, "test");
        let res: Result<Vec<usize>, String> = try_parallel(&pool, 10, Ok);
        assert_eq!(res.unwrap(), (0..10).collect::<Vec<_>>());
    }
}
