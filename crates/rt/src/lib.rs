//! Client-side parallel I/O runtime.
//!
//! BlobSeer clients store and fetch pages "in parallel" and write all
//! metadata tree nodes "in parallel" (paper Algorithms 1, 2 and 4). The
//! paper's prototype does this with asynchronous RPC; within this
//! in-process reproduction the equivalent is a small fork-join thread
//! pool. Each client (or engine) owns a [`ThreadPool`]; operations
//! submit batches of independent jobs and wait for all of them.
//!
//! The pool is deliberately minimal: FIFO dispatch over a crossbeam
//! channel, no work stealing, no nesting (a job must not submit-and-wait
//! on the same pool — BlobSeer's fan-outs are one level deep, so this
//! restriction is free).
//!
//! ## Chunked dispatch
//!
//! Fan-outs are dispatched as **index ranges**, not individual items:
//! `0..n` is split into at most `max_jobs` contiguous chunks and each
//! chunk is one boxed job that runs its items sequentially. A 1 GiB
//! append with 64 KiB pages therefore submits one job per worker
//! (~8 boxed closures) instead of ~16k, eliminating per-item heap
//! allocation, channel traffic and queue contention. [`parallel_map`]
//! and [`try_parallel`] default to one chunk per worker; the `_jobs`
//! variants take an explicit bound (`usize::MAX` restores per-item
//! dispatch, which the engine exposes as an ablation baseline).

mod pool;
mod wait;

pub use pool::ThreadPool;
pub use wait::WaitGroup;

use std::sync::Arc;

/// Run `f(i)` for every `i in 0..n` on the pool, returning the results
/// in index order. Dispatches one chunk per worker thread; panics in
/// jobs are propagated to the caller.
pub fn parallel_map<T, F>(pool: &ThreadPool, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    parallel_map_jobs(pool, n, pool.threads(), f)
}

/// [`parallel_map`] with an explicit bound on dispatched jobs: `0..n`
/// is split into `min(n, max_jobs)` contiguous ranges, one boxed job
/// each. Results are returned in index order.
pub fn parallel_map_jobs<T, F>(pool: &ThreadPool, n: usize, max_jobs: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        // Fast path: no dispatch overhead for single-page operations.
        return vec![f(0)];
    }
    let jobs = max_jobs.clamp(1, n);
    let f = Arc::new(f);
    let (tx, rx) = crossbeam::channel::bounded(jobs);
    let (base, rem) = (n / jobs, n % jobs);
    let mut start = 0;
    for j in 0..jobs {
        let len = base + usize::from(j < rem);
        let range = start..start + len;
        start += len;
        let f = Arc::clone(&f);
        let tx = tx.clone();
        pool.execute(move || {
            let first = range.start;
            let out: Vec<T> = range.map(|i| f(i)).collect();
            // Receiver is alive until all results are collected; a send
            // error can only mean the caller panicked and went away.
            let _ = tx.send((first, out));
        });
    }
    drop(tx);
    let mut parts: Vec<(usize, Vec<T>)> = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        match rx.recv() {
            Ok(part) => parts.push(part),
            Err(_) => panic!("worker panicked during parallel_map"),
        }
    }
    parts.sort_unstable_by_key(|(first, _)| *first);
    parts.into_iter().flat_map(|(_, chunk)| chunk).collect()
}

/// Run `f(i)` for every `i in 0..n`, collecting results or the first
/// error. All items run to completion even when one fails (pages
/// already sent to providers are not cancelled in the paper's protocol
/// either). Dispatches one chunk per worker thread.
pub fn try_parallel<T, E, F>(pool: &ThreadPool, n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send + 'static,
    E: Send + 'static,
    F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
{
    try_parallel_jobs(pool, n, pool.threads(), f)
}

/// [`try_parallel`] with an explicit bound on dispatched jobs (see
/// [`parallel_map_jobs`]).
pub fn try_parallel_jobs<T, E, F>(
    pool: &ThreadPool,
    n: usize,
    max_jobs: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send + 'static,
    E: Send + 'static,
    F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
{
    parallel_map_jobs(pool, n, max_jobs, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_returns_in_order() {
        let pool = ThreadPool::new(4, "test");
        let out = parallel_map(&pool, 100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let pool = ThreadPool::new(2, "test");
        assert!(parallel_map(&pool, 0, |i| i).is_empty());
        assert_eq!(parallel_map(&pool, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn parallel_map_actually_parallel() {
        // With 4 workers and 4 jobs that rendezvous on a barrier, the
        // batch only completes if the jobs overlap in time.
        let pool = ThreadPool::new(4, "test");
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let b = Arc::clone(&barrier);
        let out = parallel_map(&pool, 4, move |i| {
            b.wait();
            i
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn parallel_map_more_jobs_than_workers() {
        let pool = ThreadPool::new(2, "test");
        let out = parallel_map(&pool, 1000, |i| i);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 999);
    }

    #[test]
    fn try_parallel_reports_error() {
        let pool = ThreadPool::new(4, "test");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let res: Result<Vec<usize>, String> = try_parallel(&pool, 50, move |i| {
            ran2.fetch_add(1, Ordering::SeqCst);
            if i == 13 {
                Err("boom".to_string())
            } else {
                Ok(i)
            }
        });
        assert!(res.is_err());
        // Every job still ran (no cancellation semantics).
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn try_parallel_ok_path() {
        let pool = ThreadPool::new(4, "test");
        let res: Result<Vec<usize>, String> = try_parallel(&pool, 10, Ok);
        assert_eq!(res.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_dispatch_preserves_order_for_all_job_bounds() {
        let pool = ThreadPool::new(3, "test");
        for max_jobs in [1, 2, 3, 7, 100, usize::MAX] {
            let out = parallel_map_jobs(&pool, 100, max_jobs, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "max_jobs={max_jobs}");
        }
    }

    #[test]
    fn chunked_dispatch_boxes_at_most_max_jobs() {
        let pool = ThreadPool::new(2, "test");
        let out = parallel_map_jobs(&pool, 16_384, 2, |i| i);
        assert_eq!(out.len(), 16_384);
        assert_eq!(pool.jobs_dispatched(), 2, "a 16k-item batch must box 2 jobs, not 16k");

        // The default entry point dispatches one job per worker.
        let before = pool.jobs_dispatched();
        let _ = parallel_map(&pool, 1000, |i| i);
        assert_eq!(pool.jobs_dispatched() - before, 2);

        // max_jobs = usize::MAX restores per-item dispatch (the baseline).
        let before = pool.jobs_dispatched();
        let _ = parallel_map_jobs(&pool, 100, usize::MAX, |i| i);
        assert_eq!(pool.jobs_dispatched() - before, 100);
    }

    #[test]
    fn try_parallel_jobs_runs_every_item_despite_error() {
        let pool = ThreadPool::new(4, "test");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let res: Result<Vec<usize>, String> = try_parallel_jobs(&pool, 64, 4, move |i| {
            ran2.fetch_add(1, Ordering::SeqCst);
            if i % 17 == 3 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        });
        assert!(res.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 64);
    }
}
