//! A fixed-size FIFO thread pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool with FIFO dispatch.
///
/// Dropping the pool closes the queue and joins all workers; queued jobs
/// run to completion first (graceful drain). Pools built with
/// [`ThreadPool::new_detached`] skip the join: workers still drain the
/// queue and exit, but `Drop` does not block on them — required when the
/// pool may be dropped *from one of its own workers* (e.g. a background
/// job holding the last `Arc` of the owner).
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    dispatched: AtomicU64,
    join_on_drop: bool,
}

impl ThreadPool {
    /// Spawn `threads` workers named `"{name}-{i}"`.
    pub fn new(threads: usize, name: &str) -> Self {
        Self::build(threads, name, true)
    }

    /// Like [`ThreadPool::new`], but `Drop` detaches the workers
    /// instead of joining them (they still drain queued jobs and exit
    /// once the queue closes).
    pub fn new_detached(threads: usize, name: &str) -> Self {
        Self::build(threads, name, false)
    }

    fn build(threads: usize, name: &str, join_on_drop: bool) -> Self {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { tx: Some(tx), workers, dispatched: AtomicU64::new(0), join_on_drop }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime count of boxed jobs submitted — the dispatch-overhead
    /// gauge behind the chunked fork-join optimization (benches assert
    /// a large batch costs ~one job per worker, not one per item).
    pub fn jobs_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Submit a job; never blocks.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        self.tx.as_ref().expect("pool alive").send(Box::new(job)).expect("pool workers alive");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining jobs and exit.
        self.tx.take();
        if !self.join_on_drop {
            // Detached: workers exit on their own once the queue drains.
            self.workers.clear();
            return;
        }
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            // A joining pool can still be dropped *on one of its own
            // workers* (a queued job releasing the last `Arc` of the
            // owner). Self-joining would abort with "Resource deadlock
            // avoided" — detach that one handle instead; the worker is
            // past `recv()` (the queue is closed) and exits right after
            // this drop returns.
            if w.thread().id() == me {
                continue;
            }
            // A panicked worker already reported; don't double-panic.
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.workers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_jobs() {
        let pool = ThreadPool::new(3, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // graceful drain
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_drains_queue() {
        let pool = ThreadPool::new(1, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::yield_now();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0, "t");
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ThreadPool::new(5, "t").threads(), 5);
    }

    #[test]
    fn joining_pool_can_drop_from_its_own_worker() {
        // Regression: the engine's io pool is join-on-drop, and the
        // last `Arc<Engine>` can be released by a job on one of its own
        // workers. The old Drop self-joined and aborted the process
        // with "Resource deadlock avoided"; now the self-handle is
        // detached and everyone else is still joined.
        struct Owner {
            pool: ThreadPool,
        }
        let owner = Arc::new(Owner { pool: ThreadPool::new(2, "selfjoin") });
        let done = Arc::new(AtomicUsize::new(0));
        let (o2, d2) = (Arc::clone(&owner), Arc::clone(&done));
        owner.pool.execute(move || {
            // Give main a moment to drop its reference so this worker
            // plausibly holds the last one.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(o2); // last Arc → ThreadPool::drop runs on this worker
            d2.fetch_add(1, Ordering::SeqCst);
        });
        drop(owner);
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < std::time::Duration::from_secs(5), "worker wedged in drop");
            std::thread::yield_now();
        }
    }

    #[test]
    fn detached_pool_still_drains_and_can_drop_from_worker() {
        // The job holds (a clone of an Arc around) the pool's owner and
        // may be the one releasing the last reference — dropping the
        // pool from its own worker must not deadlock.
        struct Owner {
            pool: ThreadPool,
        }
        let owner = Arc::new(Owner { pool: ThreadPool::new_detached(1, "det") });
        let done = Arc::new(AtomicUsize::new(0));
        let (o2, d2) = (Arc::clone(&owner), Arc::clone(&done));
        owner.pool.execute(move || {
            d2.fetch_add(1, Ordering::SeqCst);
            drop(o2); // possibly the last Arc → Owner::drop on this worker
        });
        drop(owner);
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < std::time::Duration::from_secs(5), "job never ran");
            std::thread::yield_now();
        }
    }
}
