//! Distributed segment-tree metadata (paper §4).
//!
//! Metadata in BlobSeer maps any `(version, offset, size)` request to the
//! pages holding that data. It is organised as a **segment tree per
//! snapshot version**: a binary tree over dyadic page ranges whose
//! leaves name pages and whose inner nodes record, for each child, the
//! *version* of the node occupying the child position. Trees of
//! successive versions **share** all subtrees that the newer update did
//! not touch — new nodes are "weaved" with old ones (paper Fig. 1) —
//! which is what makes versioning cheap in both space and time.
//!
//! Layout of this crate:
//!
//! * [`node`] — tree-node model and DHT keys;
//! * [`lineage`] — blob ancestry for cheap branching (BRANCH shares all
//!   metadata up to the branch point);
//! * [`plan`] — **pure** planners computing which tree positions an
//!   update creates, which positions border it, and which positions a
//!   read visits. Used by both the real engine and the network
//!   simulator, so simulated costs follow the real tree math;
//! * [`store`] — typed facade over the DHT (`blobseer-dht`);
//! * [`read`] — `READ_META` (paper Algorithm 3);
//! * [`build`] — `BUILD_META` (paper Algorithm 4) including border-set
//!   resolution against the latest published tree plus the version
//!   manager's overrides for in-flight concurrent updates (§4.2).

pub mod build;
pub mod cache;
pub mod lineage;
pub mod node;
pub mod plan;
pub mod read;
pub mod store;

pub use build::{build_meta, resolve_borders, BorderSet, UpdateContext};
pub use cache::NodeCache;
pub use lineage::Lineage;
pub use node::{NodeKey, RootRef, TreeNode};
pub use plan::{read_plan, update_plan, ReadPlan, UpdatePlan};
pub use read::{collect_tree_pages, read_meta, read_meta_multi, TreeReader};
pub use store::{MetaStore, SelfHelpHook};
