//! Tree-node model and DHT keys.

use blobseer_types::{BlobId, NodePos, PageId, ProviderId, Version};

/// DHT key of a tree node: "each tree node is identified uniquely by its
/// version and \[the\] range specified by the offset and size it covers"
/// (paper §4.1). We additionally scope keys by the *owning* blob so that
/// independent blobs never collide; branches resolve shared versions to
/// the ancestor owner through [`crate::Lineage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey {
    /// Blob whose update created this node (lineage owner).
    pub blob: BlobId,
    /// Snapshot version whose update created this node.
    pub version: Version,
    /// Dyadic page range the node covers.
    pub pos: NodePos,
}

/// A node of the distributed segment tree.
///
/// Inner nodes "hold the version of the left child vl and the version of
/// the right child vr, while leaves hold the page id pid and the provider
/// that store\[s\] the page" (paper §4.1). A `None` child version marks a
/// child position beyond the blob's current content — incomplete trees
/// arise whenever the page count is not a power of two (e.g. paper
/// Fig. 1(c), where the grown root `(0,8)` has no pages 5..8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeNode {
    /// An interior node: versions of the children occupying the left and
    /// right half of this node's range.
    Inner {
        /// Version of the node at the left-child position, if any.
        left: Option<Version>,
        /// Version of the node at the right-child position, if any.
        right: Option<Version>,
    },
    /// A leaf covering exactly one page.
    Leaf {
        /// Stored page id.
        pid: PageId,
        /// Data provider holding the page.
        provider: ProviderId,
        /// Valid bytes in the page (< page size only for a snapshot's
        /// final, partially-filled page).
        valid_len: u32,
    },
}

impl TreeNode {
    /// Child version toward the left/right half; panics on leaves.
    pub fn child(&self, left_side: bool) -> Option<Version> {
        match self {
            TreeNode::Inner { left, right } => {
                if left_side {
                    *left
                } else {
                    *right
                }
            }
            TreeNode::Leaf { .. } => panic!("leaf has no children"),
        }
    }

    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, TreeNode::Leaf { .. })
    }
}

/// A snapshot's tree root: the version plus the dyadic position its root
/// node covers. Handed to readers by the version manager (which tracks
/// per-version sizes and therefore root spans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootRef {
    /// Snapshot version the root belongs to.
    pub version: Version,
    /// Position covered by the root node (always offset 0).
    pub pos: NodePos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_child_access() {
        let n = TreeNode::Inner { left: Some(Version(3)), right: None };
        assert_eq!(n.child(true), Some(Version(3)));
        assert_eq!(n.child(false), None);
        assert!(!n.is_leaf());
    }

    #[test]
    fn leaf_identification() {
        let l = TreeNode::Leaf { pid: PageId(1), provider: ProviderId(0), valid_len: 64 };
        assert!(l.is_leaf());
    }

    #[test]
    #[should_panic]
    fn leaf_child_panics() {
        let l = TreeNode::Leaf { pid: PageId(1), provider: ProviderId(0), valid_len: 64 };
        let _ = l.child(true);
    }

    #[test]
    fn keys_are_distinct_per_blob_version_pos() {
        let a = NodeKey { blob: BlobId(1), version: Version(1), pos: NodePos::new(0, 2) };
        let b = NodeKey { blob: BlobId(2), ..a };
        let c = NodeKey { version: Version(2), ..a };
        let d = NodeKey { pos: NodePos::new(2, 2), ..a };
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
