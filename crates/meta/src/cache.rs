//! A client-side cache of tree nodes.
//!
//! Tree nodes are **immutable** — an update creates new nodes rather
//! than changing old ones (paper §4: "when updating data, new metadata
//! is created, rather than updating old metadata") — so a node cache
//! needs no invalidation protocol at all: any cached value is correct
//! forever. Caching matters for two paths:
//!
//! * writers re-reading their own recent nodes during border
//!   resolution (the effect the Figure 2(a) simulation models with
//!   `cached_border_descent`);
//! * readers walking the same upper tree levels over and over (every
//!   read of a snapshot traverses the same root).
//!
//! The implementation is a sharded FIFO map: for an immutable,
//! skew-heavy working set, FIFO eviction is within a whisker of LRU at
//! a fraction of the bookkeeping.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::node::{NodeKey, TreeNode};

const SHARDS: usize = 8;

struct Shard {
    map: HashMap<NodeKey, TreeNode>,
    fifo: VecDeque<NodeKey>,
}

/// Sharded, bounded node cache.
pub struct NodeCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl NodeCache {
    /// Cache bounded to roughly `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "use Option<NodeCache> to disable caching");
        NodeCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), fifo: VecDeque::new() }))
                .collect(),
            capacity_per_shard: blobseer_types::div_ceil(capacity as u64, SHARDS as u64) as usize,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &NodeKey) -> &Mutex<Shard> {
        &self.shards[blobseer_dht::static_bucket(key, SHARDS)]
    }

    /// Look up a node.
    pub fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        let out = self.shard(key).lock().map.get(key).copied();
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Insert a node (idempotent; nodes are immutable).
    pub fn insert(&self, key: NodeKey, node: TreeNode) {
        let mut shard = self.shard(&key).lock();
        if shard.map.insert(key, node).is_none() {
            shard.fifo.push_back(key);
            if shard.fifo.len() > self.capacity_per_shard {
                if let Some(old) = shard.fifo.pop_front() {
                    shard.map.remove(&old);
                }
            }
        }
    }

    /// Drop every cached node of `blob` older than `before` — used by
    /// garbage collection so a swept node cannot be resurrected from a
    /// cache (the one place immutability is not enough).
    pub fn evict_retired(&self, blob: blobseer_types::BlobId, before: blobseer_types::Version) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.retain(|k, _| !(k.blob == blob && k.version < before));
            let remaining: std::collections::HashSet<NodeKey> = s.map.keys().copied().collect();
            s.fifo.retain(|k| remaining.contains(k));
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for NodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("NodeCache")
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobId, NodePos, PageId, ProviderId, Version};

    fn key(blob: u64, v: u64, off: u64) -> NodeKey {
        NodeKey { blob: BlobId(blob), version: Version(v), pos: NodePos::new(off, 1) }
    }

    fn leaf(n: u128) -> TreeNode {
        TreeNode::Leaf { pid: PageId(n), provider: ProviderId(0), valid_len: 1 }
    }

    #[test]
    fn hit_miss_roundtrip() {
        let c = NodeCache::new(100);
        assert_eq!(c.get(&key(1, 1, 0)), None);
        c.insert(key(1, 1, 0), leaf(5));
        assert_eq!(c.get(&key(1, 1, 0)), Some(leaf(5)));
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_bounds_size() {
        let c = NodeCache::new(64);
        for i in 0..10_000u64 {
            c.insert(key(1, 1, i), leaf(i as u128));
        }
        // Per-shard cap × shards, with slack for shard imbalance.
        assert!(c.len() <= 64 + SHARDS, "len {}", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn reinsert_is_idempotent() {
        let c = NodeCache::new(10);
        c.insert(key(1, 1, 0), leaf(1));
        c.insert(key(1, 1, 0), leaf(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evict_retired_is_targeted() {
        let c = NodeCache::new(100);
        c.insert(key(1, 1, 0), leaf(1));
        c.insert(key(1, 5, 0), leaf(2));
        c.insert(key(2, 1, 0), leaf(3));
        c.evict_retired(BlobId(1), Version(3));
        assert_eq!(c.get(&key(1, 1, 0)), None, "retired");
        assert_eq!(c.get(&key(1, 5, 0)), Some(leaf(2)), "kept: newer");
        assert_eq!(c.get(&key(2, 1, 0)), Some(leaf(3)), "kept: other blob");
    }

    #[test]
    fn concurrent_use() {
        let c = std::sync::Arc::new(NodeCache::new(1000));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        c.insert(key(t, 1, i), leaf(i as u128));
                        c.get(&key(t, 1, i / 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
