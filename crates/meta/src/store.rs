//! Typed facade over the DHT for tree nodes.

use std::sync::Arc;
use std::time::Duration;

use blobseer_dht::{Dht, DhtError, DhtStats};
use blobseer_types::{BlobError, Result};
use parking_lot::RwLock;

use crate::cache::NodeCache;
use crate::node::{NodeKey, TreeNode};

/// The between-slices callback of a sliced blocking wait; see
/// [`MetaStore::set_self_help`].
pub type SelfHelpHook = Arc<dyn Fn() + Send + Sync>;

/// The metadata provider: tree nodes distributed over DHT buckets.
///
/// `get` is non-blocking and suits reads of *published* versions (whose
/// trees are complete by definition); since the DHT's read path takes
/// only a shared bucket guard, concurrent readers of the same hot node
/// (every reader of a snapshot fetches the same root) do not serialize
/// on the metadata provider. `get_wait` blocks until the node appears —
/// the mechanism by which an operation depending on a lower,
/// still-in-flight version waits for its writer (paper §4.2). The wait
/// is bounded by the configured timeout so a crashed writer surfaces as
/// a [`BlobError::Timeout`] instead of a hang.
pub struct MetaStore {
    dht: Arc<Dht<NodeKey, TreeNode>>,
    wait_timeout: Duration,
    /// Slice size for blocking waits (zero = one uninterrupted block).
    wait_slice: Duration,
    /// Runs between wait slices with no DHT locks held; installed
    /// after construction because the engine it calls into owns this
    /// store (see [`MetaStore::set_self_help`]).
    self_help: RwLock<Option<SelfHelpHook>>,
    cache: Option<NodeCache>,
}

impl MetaStore {
    /// Fresh store over `metadata_providers` DHT buckets.
    pub fn new(metadata_providers: usize, wait_timeout: Duration) -> Self {
        MetaStore {
            dht: Arc::new(Dht::new(metadata_providers)),
            wait_timeout,
            wait_slice: Duration::ZERO,
            self_help: RwLock::new(None),
            cache: None,
        }
    }

    /// Wrap an existing DHT (lets tests share one DHT across stores).
    pub fn with_dht(dht: Arc<Dht<NodeKey, TreeNode>>, wait_timeout: Duration) -> Self {
        MetaStore {
            dht,
            wait_timeout,
            wait_slice: Duration::ZERO,
            self_help: RwLock::new(None),
            cache: None,
        }
    }

    /// Slice blocking waits into `slice`-sized chunks, running the
    /// installed self-help hook between chunks (zero restores single-
    /// block waits). See [`blobseer_dht::Dht::get_wait_sliced`].
    pub fn with_wait_slice(mut self, slice: Duration) -> Self {
        self.wait_slice = slice;
        self
    }

    /// Install the self-help hook that runs between wait slices. The
    /// engine hangs its lease sweeper here: a `get_wait` blocked on a
    /// dead writer's missing node then recovers in about one slice
    /// (sweep → abort → repair fills the node) instead of timing out.
    /// Installed post-construction — the hook closes over the engine,
    /// and the engine owns this store.
    pub fn set_self_help(&self, hook: SelfHelpHook) {
        *self.self_help.write() = Some(hook);
    }

    /// Enable a client-side node cache of roughly `entries` nodes.
    /// Nodes are immutable, so cached values are always correct; see
    /// [`NodeCache`].
    pub fn with_cache(mut self, entries: usize) -> Self {
        self.cache = (entries > 0).then(|| NodeCache::new(entries));
        self
    }

    /// `(hits, misses)` of the node cache, if one is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(NodeCache::stats)
    }

    /// The configured blocking-get timeout.
    pub fn wait_timeout(&self) -> Duration {
        self.wait_timeout
    }

    /// Store a tree node (idempotent: nodes are immutable). Also warms
    /// the local cache — a writer's freshly built nodes are exactly
    /// what its next border resolution will look up.
    pub fn put(&self, key: NodeKey, node: TreeNode) {
        self.dht.put(key, node);
        if let Some(cache) = &self.cache {
            cache.insert(key, node);
        }
    }

    /// Store a tree node only if the key is absent; returns `true`
    /// when this call inserted. Version-abort repair uses this to fill
    /// in the nodes a dead writer never stored **without** replacing
    /// the ones it did — nodes stay immutable once visible, so readers
    /// that already wove content from a dead writer's node remain
    /// consistent with the final tree. Parked `get_wait`ers wake only
    /// on a real insert.
    pub fn put_new(&self, key: NodeKey, node: TreeNode) -> bool {
        let inserted = self.dht.put_new(key, node);
        if inserted {
            if let Some(cache) = &self.cache {
                cache.insert(key, node);
            }
        }
        inserted
    }

    /// Fetch a node without blocking.
    pub fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        if let Some(cache) = &self.cache {
            if let Some(node) = cache.get(key) {
                return Ok(node);
            }
        }
        let node = self
            .dht
            .get(key)
            .ok_or(BlobError::MetadataMissing { blob: key.blob, version: key.version })?;
        if let Some(cache) = &self.cache {
            cache.insert(*key, node);
        }
        Ok(node)
    }

    /// Fetch a node, waiting up to the configured timeout for an
    /// in-flight writer to store it.
    pub fn get_wait(&self, key: &NodeKey) -> Result<TreeNode> {
        if let Some(cache) = &self.cache {
            if let Some(node) = cache.get(key) {
                return Ok(node);
            }
        }
        let got = if self.wait_slice.is_zero() {
            self.dht.get_wait(key, self.wait_timeout)
        } else {
            self.dht.get_wait_sliced(key, self.wait_timeout, self.wait_slice, || {
                let hook = self.self_help.read().clone();
                if let Some(hook) = hook {
                    hook();
                }
            })
        };
        let node = got.map_err(|e| match e {
            DhtError::WaitTimeout => BlobError::Timeout("metadata tree node"),
        })?;
        if let Some(cache) = &self.cache {
            cache.insert(*key, node);
        }
        Ok(node)
    }

    /// Garbage-collection sweep: delete every node of `blob` created by
    /// a version `< before` that is not in `reachable`. Returns the
    /// removed count and the `(pid, provider)` pairs of the swept
    /// leaves, whose pages are now unreferenced.
    pub fn sweep_retired(
        &self,
        blob: blobseer_types::BlobId,
        before: blobseer_types::Version,
        reachable: &std::collections::HashSet<NodeKey>,
    ) -> (usize, Vec<(blobseer_types::PageId, blobseer_types::ProviderId)>) {
        let mut orphaned_pages = Vec::new();
        let removed = self.dht.retain(|key, node| {
            let sweep = key.blob == blob && key.version < before && !reachable.contains(key);
            if sweep {
                if let TreeNode::Leaf { pid, provider, .. } = node {
                    orphaned_pages.push((*pid, *provider));
                }
            }
            !sweep
        });
        if let Some(cache) = &self.cache {
            cache.evict_retired(blob, before);
        }
        (removed, orphaned_pages)
    }

    /// `true` when the node is currently stored.
    pub fn contains(&self, key: &NodeKey) -> bool {
        self.dht.contains(key)
    }

    /// Total nodes stored — the metadata footprint measured by the
    /// storage-efficiency experiment (E3).
    pub fn node_count(&self) -> usize {
        self.dht.len()
    }

    /// Per-bucket access statistics (hotspot analysis).
    pub fn stats(&self) -> DhtStats {
        self.dht.stats()
    }

    /// Number of metadata providers (buckets).
    pub fn provider_count(&self) -> usize {
        self.dht.bucket_count()
    }

    /// The DHT's block-time histogram (nanoseconds per blocking
    /// `get_wait`), for registration in a store-level metrics registry.
    pub fn wait_latency(&self) -> Arc<blobseer_metrics::WindowedHistogram> {
        self.dht.wait_latency()
    }
}

impl std::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaStore")
            .field("providers", &self.provider_count())
            .field("nodes", &self.node_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobId, NodePos, PageId, ProviderId, Version};

    fn key(v: u64, off: u64, size: u64) -> NodeKey {
        NodeKey { blob: BlobId(1), version: Version(v), pos: NodePos::new(off, size) }
    }

    #[test]
    fn put_get_roundtrip() {
        let store = MetaStore::new(4, Duration::from_millis(50));
        let n = TreeNode::Leaf { pid: PageId(1), provider: ProviderId(0), valid_len: 10 };
        store.put(key(1, 0, 1), n);
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), n);
        assert!(store.contains(&key(1, 0, 1)));
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn put_new_preserves_the_first_store() {
        // The abort-repair invariant: nodes are immutable once visible,
        // so a repair (or a zombie writer) can only fill gaps.
        let store = MetaStore::new(4, Duration::from_millis(50)).with_cache(10);
        let real = TreeNode::Leaf { pid: PageId(1), provider: ProviderId(0), valid_len: 4 };
        let repair = TreeNode::Leaf { pid: PageId(2), provider: ProviderId(1), valid_len: 4 };
        assert!(store.put_new(key(1, 0, 1), real));
        assert!(!store.put_new(key(1, 0, 1), repair), "dead writer's node stays");
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), real);
        // A rejected put must not poison the cache either.
        assert_eq!(store.get_wait(&key(1, 0, 1)).unwrap(), real);
        // And a genuine gap is fillable.
        assert!(store.put_new(key(1, 1, 1), repair));
        assert_eq!(store.get(&key(1, 1, 1)).unwrap(), repair);
    }

    #[test]
    fn missing_node_is_typed() {
        let store = MetaStore::new(4, Duration::from_millis(20));
        assert!(matches!(store.get(&key(1, 0, 1)), Err(BlobError::MetadataMissing { .. })));
        assert_eq!(store.get_wait(&key(1, 0, 1)), Err(BlobError::Timeout("metadata tree node")));
    }

    #[test]
    fn cache_serves_hits_and_tracks_stats() {
        let store = MetaStore::new(4, Duration::from_millis(50)).with_cache(100);
        let n = TreeNode::Leaf { pid: PageId(1), provider: ProviderId(0), valid_len: 8 };
        store.put(key(1, 0, 1), n);
        // put warmed the cache; this get is a pure cache hit.
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), n);
        let (hits, _) = store.cache_stats().unwrap();
        assert_eq!(hits, 1);
        // get_wait also consults the cache first.
        assert_eq!(store.get_wait(&key(1, 0, 1)).unwrap(), n);
        assert_eq!(store.cache_stats().unwrap().0, 2);
    }

    #[test]
    fn cache_fills_on_dht_miss_then_hit() {
        let dht = Arc::new(blobseer_dht::Dht::new(2));
        let warm = MetaStore::with_dht(Arc::clone(&dht), Duration::from_millis(50));
        let n = TreeNode::Inner { left: Some(Version(1)), right: None };
        warm.put(key(3, 0, 2), n);
        // A second store (separate cache) over the same DHT.
        let store = MetaStore::with_dht(dht, Duration::from_millis(50)).with_cache(10);
        assert_eq!(store.get(&key(3, 0, 2)).unwrap(), n);
        let (hits, misses) = store.cache_stats().unwrap();
        assert_eq!((hits, misses), (0, 1));
        assert_eq!(store.get(&key(3, 0, 2)).unwrap(), n);
        assert_eq!(store.cache_stats().unwrap().0, 1);
    }

    #[test]
    fn sweep_removes_unreachable_and_reports_pages() {
        let store = MetaStore::new(4, Duration::from_millis(50));
        let leaf =
            |pid: u128| TreeNode::Leaf { pid: PageId(pid), provider: ProviderId(1), valid_len: 4 };
        store.put(key(1, 0, 1), leaf(10)); // v1 leaf, unreachable
        store.put(key(2, 0, 1), leaf(20)); // v2 leaf, reachable
        store.put(key(2, 1, 1), leaf(21)); // v2 leaf, unreachable
        let reachable: std::collections::HashSet<NodeKey> = [key(2, 0, 1)].into_iter().collect();
        let (removed, pages) = store.sweep_retired(BlobId(1), Version(3), &reachable);
        assert_eq!(removed, 2);
        let mut pids: Vec<u128> = pages.iter().map(|(p, _)| p.raw()).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![10, 21]);
        assert!(store.get(&key(2, 0, 1)).is_ok());
        assert!(store.get(&key(1, 0, 1)).is_err());
    }

    #[test]
    fn sliced_wait_runs_the_self_help_hook() {
        // The hook supplies the missing node itself — the engine's
        // self-help sweep in miniature.
        let dht = Arc::new(blobseer_dht::Dht::new(2));
        let store = Arc::new(
            MetaStore::with_dht(Arc::clone(&dht), Duration::from_secs(5))
                .with_wait_slice(Duration::from_millis(15)),
        );
        let n = TreeNode::Leaf { pid: PageId(5), provider: ProviderId(0), valid_len: 2 };
        let d2 = Arc::clone(&dht);
        store.set_self_help(Arc::new(move || {
            d2.put(key(4, 0, 1), n);
        }));
        let t0 = std::time::Instant::now();
        assert_eq!(store.get_wait(&key(4, 0, 1)).unwrap(), n);
        assert!(t0.elapsed() < Duration::from_secs(4), "recovered well before the timeout");
    }

    #[test]
    fn sliced_wait_without_hook_still_times_out_typed() {
        let store =
            MetaStore::new(2, Duration::from_millis(40)).with_wait_slice(Duration::from_millis(10));
        assert_eq!(store.get_wait(&key(9, 0, 1)), Err(BlobError::Timeout("metadata tree node")));
    }

    #[test]
    fn get_wait_sees_delayed_writer() {
        let store = Arc::new(MetaStore::new(4, Duration::from_secs(5)));
        let s2 = Arc::clone(&store);
        let waiter = std::thread::spawn(move || s2.get_wait(&key(2, 0, 2)));
        std::thread::sleep(Duration::from_millis(20));
        let n = TreeNode::Inner { left: Some(Version(1)), right: None };
        store.put(key(2, 0, 2), n);
        assert_eq!(waiter.join().unwrap().unwrap(), n);
    }
}
