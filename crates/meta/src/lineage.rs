//! Blob ancestry: the mechanism behind cheap branching.
//!
//! `BRANCH(id, v)` "virtually duplicates the blob ... identical to the
//! original blob in every snapshot up to (and including) v" (paper
//! §2.1). No data or metadata is copied: the branch merely *resolves*
//! versions at or below the branch point to the ancestor blob that owns
//! them. A lineage is the ordered list of `(blob, up_to)` segments; the
//! owner of version `v` is the first segment whose cut-off covers `v`.
//!
//! Because a branch of a branch collapses segments (branching `B` at a
//! version below `B`'s own divergence never mentions `B`), lineages stay
//! short: their length is bounded by the number of *distinct divergence
//! levels*, not by the number of branch operations.

use blobseer_types::{BlobId, Version};

/// One ancestry segment: versions `<= up_to` belong to `blob`
/// (`up_to == None` only on the final segment, the blob itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Segment {
    blob: BlobId,
    up_to: Option<Version>,
}

/// Ancestry of a blob: resolves any version to the blob owning its
/// metadata tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lineage {
    segments: Vec<Segment>,
}

impl Lineage {
    /// Lineage of a freshly created (non-branched) blob.
    pub fn root(blob: BlobId) -> Self {
        Lineage { segments: vec![Segment { blob, up_to: None }] }
    }

    /// Lineage of `child`, branched off `parent`'s lineage at version `at`.
    pub fn branch(parent: &Lineage, at: Version, child: BlobId) -> Self {
        let mut segments = Vec::with_capacity(parent.segments.len() + 1);
        for seg in &parent.segments {
            match seg.up_to {
                Some(u) if u < at => segments.push(*seg),
                // This segment covers `at`: clamp it and stop — deeper
                // parent segments are unreachable from the child.
                _ => {
                    segments.push(Segment { blob: seg.blob, up_to: Some(at) });
                    break;
                }
            }
        }
        segments.push(Segment { blob: child, up_to: None });
        Lineage { segments }
    }

    /// The blob this lineage belongs to.
    pub fn blob(&self) -> BlobId {
        self.segments.last().expect("lineage non-empty").blob
    }

    /// The blob owning (the metadata of) version `v`.
    pub fn owner_of(&self, v: Version) -> BlobId {
        for seg in &self.segments {
            match seg.up_to {
                Some(u) if v <= u => return seg.blob,
                None => return seg.blob,
                _ => {}
            }
        }
        unreachable!("final lineage segment is unbounded")
    }

    /// Number of ancestry segments (the blob itself included).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// `true` when this blob was branched (has at least one ancestor).
    pub fn is_branch(&self) -> bool {
        self.segments.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: BlobId = BlobId(1);
    const B: BlobId = BlobId(2);
    const C: BlobId = BlobId(3);
    const D: BlobId = BlobId(4);

    #[test]
    fn root_owns_everything() {
        let l = Lineage::root(A);
        assert_eq!(l.blob(), A);
        assert_eq!(l.owner_of(Version(0)), A);
        assert_eq!(l.owner_of(Version(1_000_000)), A);
        assert!(!l.is_branch());
        assert_eq!(l.depth(), 1);
    }

    #[test]
    fn simple_branch_splits_ownership() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(5), B);
        assert_eq!(b.blob(), B);
        assert!(b.is_branch());
        assert_eq!(b.owner_of(Version(0)), A);
        assert_eq!(b.owner_of(Version(5)), A);
        assert_eq!(b.owner_of(Version(6)), B);
        assert_eq!(b.owner_of(Version(100)), B);
        // The parent is unaffected.
        assert_eq!(a.owner_of(Version(6)), A);
    }

    #[test]
    fn branch_of_branch_above_divergence() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(5), B);
        // C branches from B at v7 (> 5): keeps B as an intermediate owner.
        let c = Lineage::branch(&b, Version(7), C);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.owner_of(Version(3)), A);
        assert_eq!(c.owner_of(Version(5)), A);
        assert_eq!(c.owner_of(Version(6)), B);
        assert_eq!(c.owner_of(Version(7)), B);
        assert_eq!(c.owner_of(Version(8)), C);
    }

    #[test]
    fn branch_of_branch_below_divergence_collapses() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(5), B);
        // C branches from B at v3 (≤ 5): B drops out entirely.
        let c = Lineage::branch(&b, Version(3), C);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.owner_of(Version(3)), A);
        assert_eq!(c.owner_of(Version(4)), C);
    }

    #[test]
    fn branch_at_exact_divergence_point() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(5), B);
        let c = Lineage::branch(&b, Version(5), C);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.owner_of(Version(5)), A);
        assert_eq!(c.owner_of(Version(6)), C);
    }

    #[test]
    fn deep_chain() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(10), B);
        let c = Lineage::branch(&b, Version(20), C);
        let d = Lineage::branch(&c, Version(30), D);
        assert_eq!(d.owner_of(Version(10)), A);
        assert_eq!(d.owner_of(Version(11)), B);
        assert_eq!(d.owner_of(Version(20)), B);
        assert_eq!(d.owner_of(Version(21)), C);
        assert_eq!(d.owner_of(Version(30)), C);
        assert_eq!(d.owner_of(Version(31)), D);
    }

    #[test]
    fn branch_at_zero() {
        let a = Lineage::root(A);
        let b = Lineage::branch(&a, Version(0), B);
        assert_eq!(b.owner_of(Version(0)), A);
        assert_eq!(b.owner_of(Version(1)), B);
    }
}
