//! `BUILD_META` (paper Algorithm 4): constructing a new snapshot's tree
//! and weaving it with the trees of earlier versions.

use std::collections::HashMap;

use blobseer_types::{BlobError, NodePos, PageDescriptor, PageRange, Result, Version};

use crate::node::{NodeKey, RootRef, TreeNode};
use crate::plan::{border_positions, creates_position, update_plan};
use crate::read::TreeReader;

/// The resolved border set `B_vw`: for every border position of the
/// update, the version of the existing node there (or `None` when the
/// position lies beyond the blob's content — the dangling children of an
/// incomplete tree, cf. paper Fig. 1(c)).
#[derive(Clone, Debug, Default)]
pub struct BorderSet {
    map: HashMap<NodePos, Option<Version>>,
}

impl BorderSet {
    /// Resolved version at a border position.
    ///
    /// Errors when `pos` was never resolved — that would mean the build
    /// walked a child position the planner did not classify, i.e. a bug.
    pub fn lookup(&self, pos: NodePos) -> Result<Option<Version>> {
        self.map
            .get(&pos)
            .copied()
            .ok_or_else(|| BlobError::Internal(format!("border position {pos:?} was not resolved")))
    }

    /// Number of resolved border positions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the update touches the whole tree (no borders).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Build directly from `(position, version)` pairs — used by tests
    /// and by the serialized-metadata ablation mode.
    pub fn from_entries(entries: impl IntoIterator<Item = (NodePos, Option<Version>)>) -> Self {
        BorderSet { map: entries.into_iter().collect() }
    }
}

/// Everything a writer needs to build the metadata of its update, as
/// assembled from the version manager's assignment reply (paper §4.2:
/// "the version manager will build the partial set of border nodes and
/// provide it to the writer ... also suppl\[ying\] a recently published
/// snapshot version").
#[derive(Clone, Debug)]
pub struct UpdateContext {
    /// The assigned snapshot version `vw`.
    pub vw: Version,
    /// Updated page range.
    pub range: PageRange,
    /// Root position of the new tree (covers the post-update size).
    pub new_root: NodePos,
    /// Partial border set: positions that *in-flight* lower-versioned
    /// updates will create, mapped to those versions.
    pub overrides: Vec<(NodePos, Version)>,
    /// Root of the latest published snapshot, used to resolve the
    /// remaining border positions. `None` when nothing is published yet
    /// (the blob was empty at the last publication).
    pub ref_root: Option<RootRef>,
}

/// Resolve the full border set for an update: overrides first (nodes
/// being created by concurrent, lower-versioned writers), then descent
/// of the latest *published* tree, then `None` for positions beyond the
/// blob's content.
///
/// Descending the published tree never blocks (its nodes are complete);
/// `wait` is still threaded through for the unaligned-write path where
/// the reference may be an in-flight predecessor.
pub fn resolve_borders(reader: &TreeReader<'_>, ctx: &UpdateContext) -> Result<BorderSet> {
    let overrides: HashMap<NodePos, Version> = ctx.overrides.iter().copied().collect();
    let mut map = HashMap::new();
    for pos in border_positions(ctx.range, ctx.new_root) {
        let version = if let Some(&v) = overrides.get(&pos) {
            Some(v)
        } else if let Some(ref_root) = ctx.ref_root {
            reader.version_at(ref_root, pos, true)?
        } else {
            None
        };
        map.insert(pos, version);
    }
    Ok(BorderSet { map })
}

/// `BUILD_META` (paper Algorithm 4): produce every tree node of snapshot
/// `vw`, leaves first, weaving border children in via the resolved
/// border set. Returns the `(key, node)` pairs; the caller stores them
/// (in parallel — Algorithm 4 line 34) and then notifies the version
/// manager.
pub fn build_meta(
    reader: &TreeReader<'_>,
    ctx: &UpdateContext,
    leaves: &[PageDescriptor],
) -> Result<Vec<(NodeKey, TreeNode)>> {
    // The leaves must cover exactly the updated range, in order.
    if leaves.len() as u64 != ctx.range.count {
        return Err(BlobError::Internal(format!(
            "update of {:?} got {} leaves",
            ctx.range,
            leaves.len()
        )));
    }
    for (i, pd) in leaves.iter().enumerate() {
        if pd.page_index != ctx.range.first + i as u64 {
            return Err(BlobError::Internal(format!(
                "leaf {} covers page {}, expected {}",
                i,
                pd.page_index,
                ctx.range.first + i as u64
            )));
        }
    }

    let borders = resolve_borders(reader, ctx)?;
    let plan = update_plan(ctx.range, ctx.new_root);
    let owner = reader.lineage().owner_of(ctx.vw);
    debug_assert_eq!(
        owner,
        reader.lineage().blob(),
        "new versions are always owned by the blob being written"
    );
    let key = |pos: NodePos| NodeKey { blob: owner, version: ctx.vw, pos };

    let mut out: Vec<(NodeKey, TreeNode)> = Vec::with_capacity(plan.node_count() as usize);
    for pd in leaves {
        out.push((
            key(NodePos::new(pd.page_index, 1)),
            TreeNode::Leaf { pid: pd.pid, provider: pd.provider, valid_len: pd.valid_len },
        ));
    }
    let child_version = |child: NodePos| -> Result<Option<Version>> {
        if creates_position(ctx.range, ctx.new_root, child) {
            Ok(Some(ctx.vw))
        } else {
            borders.lookup(child)
        }
    };
    for span in plan.levels.iter().skip(1) {
        for pos in span.positions() {
            let node = TreeNode::Inner {
                left: child_version(pos.left())?,
                right: child_version(pos.right())?,
            };
            out.push((key(pos), node));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::Lineage;
    use crate::read::read_meta;
    use crate::store::MetaStore;
    use blobseer_types::{BlobId, ByteRange, PageId, ProviderId};
    use std::time::Duration;

    const PSIZE: u64 = 4;

    fn pd(page_index: u64, pid: u128) -> PageDescriptor {
        PageDescriptor {
            pid: PageId(pid),
            page_index,
            provider: ProviderId((pid % 7) as u32),
            valid_len: PSIZE as u32,
        }
    }

    fn store() -> MetaStore {
        MetaStore::new(4, Duration::from_millis(200))
    }

    fn commit(store: &MetaStore, nodes: Vec<(NodeKey, TreeNode)>) {
        for (k, n) in nodes {
            store.put(k, n);
        }
    }

    /// Replays the full Figure 1 scenario and checks the exact weaving.
    #[test]
    fn figure_1_weaving_end_to_end() {
        let store = store();
        let lineage = Lineage::root(BlobId(1));
        let reader = TreeReader::new(&store, &lineage);

        // (a) v1: write 4 pages to the empty blob.
        let ctx1 = UpdateContext {
            vw: Version(1),
            range: PageRange::new(0, 4),
            new_root: NodePos::new(0, 4),
            overrides: vec![],
            ref_root: None,
        };
        let leaves1: Vec<_> = (0..4).map(|i| pd(i, 100 + i as u128)).collect();
        let nodes1 = build_meta(&reader, &ctx1, &leaves1).unwrap();
        assert_eq!(nodes1.len(), 7);
        commit(&store, nodes1);

        // (b) v2: overwrite pages 1..3.
        let root1 = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        let ctx2 = UpdateContext {
            vw: Version(2),
            range: PageRange::new(1, 2),
            new_root: NodePos::new(0, 4),
            overrides: vec![],
            ref_root: Some(root1),
        };
        let leaves2 = vec![pd(1, 201), pd(2, 202)];
        let nodes2 = build_meta(&reader, &ctx2, &leaves2).unwrap();
        // Exactly the grey nodes of Fig 1(b).
        let positions: Vec<NodePos> = nodes2.iter().map(|(k, _)| k.pos).collect();
        assert_eq!(
            positions,
            vec![
                NodePos::new(1, 1),
                NodePos::new(2, 1),
                NodePos::new(0, 2),
                NodePos::new(2, 2),
                NodePos::new(0, 4)
            ]
        );
        // Weaving: (0,2).left → white v1, (2,2).right → white v1.
        let by_pos: HashMap<NodePos, TreeNode> = nodes2.iter().map(|(k, n)| (k.pos, *n)).collect();
        assert_eq!(
            by_pos[&NodePos::new(0, 2)],
            TreeNode::Inner { left: Some(Version(1)), right: Some(Version(2)) }
        );
        assert_eq!(
            by_pos[&NodePos::new(2, 2)],
            TreeNode::Inner { left: Some(Version(2)), right: Some(Version(1)) }
        );
        assert_eq!(
            by_pos[&NodePos::new(0, 4)],
            TreeNode::Inner { left: Some(Version(2)), right: Some(Version(2)) }
        );
        commit(&store, nodes2);

        // (c) v3: append one page — root grows to (0,8).
        let root2 = RootRef { version: Version(2), pos: NodePos::new(0, 4) };
        let ctx3 = UpdateContext {
            vw: Version(3),
            range: PageRange::new(4, 1),
            new_root: NodePos::new(0, 8),
            overrides: vec![],
            ref_root: Some(root2),
        };
        let nodes3 = build_meta(&reader, &ctx3, &[pd(4, 304)]).unwrap();
        let by_pos: HashMap<NodePos, TreeNode> = nodes3.iter().map(|(k, n)| (k.pos, *n)).collect();
        // New black root: left = old grey root (v2), right = own subtree.
        assert_eq!(
            by_pos[&NodePos::new(0, 8)],
            TreeNode::Inner { left: Some(Version(2)), right: Some(Version(3)) }
        );
        // Incomplete right spine: dangling children are None.
        assert_eq!(
            by_pos[&NodePos::new(4, 4)],
            TreeNode::Inner { left: Some(Version(3)), right: None }
        );
        assert_eq!(
            by_pos[&NodePos::new(4, 2)],
            TreeNode::Inner { left: Some(Version(3)), right: None }
        );
        commit(&store, nodes3);

        // Every snapshot remains readable with the right pages.
        let read =
            |root: RootRef, bytes: ByteRange| read_meta(&reader, root, bytes, PSIZE).unwrap();
        let v1 = read(root1, ByteRange::new(0, 16));
        assert_eq!(
            v1.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(),
            vec![100, 101, 102, 103],
            "v1 unchanged by later updates"
        );
        let v2 = read(root2, ByteRange::new(0, 16));
        assert_eq!(
            v2.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(),
            vec![100, 201, 202, 103],
            "v2 shares untouched pages with v1"
        );
        let root3 = RootRef { version: Version(3), pos: NodePos::new(0, 8) };
        let v3 = read(root3, ByteRange::new(0, 20));
        assert_eq!(
            v3.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(),
            vec![100, 201, 202, 103, 304],
            "v3 = v2 + appended page"
        );
    }

    /// Paper §4.2: two concurrent writers weave correctly using the
    /// version manager's partial border set, with the *later* writer
    /// building its metadata before the earlier one has stored its own.
    #[test]
    fn concurrent_writers_with_overrides() {
        let store = store();
        let lineage = Lineage::root(BlobId(1));
        let reader = TreeReader::new(&store, &lineage);

        // v1 (published): 4 pages.
        let ctx1 = UpdateContext {
            vw: Version(1),
            range: PageRange::new(0, 4),
            new_root: NodePos::new(0, 4),
            overrides: vec![],
            ref_root: None,
        };
        let leaves1: Vec<_> = (0..4).map(|i| pd(i, 100 + i as u128)).collect();
        commit(&store, build_meta(&reader, &ctx1, &leaves1).unwrap());
        let root1 = RootRef { version: Version(1), pos: NodePos::new(0, 4) };

        // C1 gets v2 appending pages [4,6); C2 gets v3 appending [6,8).
        // C2's border (4,2) will be created by C1 → the VM supplies the
        // override (4,2) → v2. C2 builds FIRST (C1 hasn't stored yet).
        let ctx3 = UpdateContext {
            vw: Version(3),
            range: PageRange::new(6, 2),
            new_root: NodePos::new(0, 8),
            overrides: vec![(NodePos::new(4, 2), Version(2))],
            ref_root: Some(root1),
        };
        let nodes3 = build_meta(&reader, &ctx3, &[pd(6, 306), pd(7, 307)]).unwrap();
        let by_pos: HashMap<NodePos, TreeNode> = nodes3.iter().map(|(k, n)| (k.pos, *n)).collect();
        assert_eq!(
            by_pos[&NodePos::new(4, 4)],
            TreeNode::Inner { left: Some(Version(2)), right: Some(Version(3)) },
            "C2 links to C1's yet-unwritten node via the override"
        );
        assert_eq!(
            by_pos[&NodePos::new(0, 8)],
            TreeNode::Inner { left: Some(Version(1)), right: Some(Version(3)) }
        );
        commit(&store, nodes3);

        // Now C1 builds and stores.
        let ctx2 = UpdateContext {
            vw: Version(2),
            range: PageRange::new(4, 2),
            new_root: NodePos::new(0, 8),
            overrides: vec![],
            ref_root: Some(root1),
        };
        commit(&store, build_meta(&reader, &ctx2, &[pd(4, 204), pd(5, 205)]).unwrap());

        // Snapshot v3 = v1 pages + C1's pages + C2's pages.
        let root3 = RootRef { version: Version(3), pos: NodePos::new(0, 8) };
        let v3 = read_meta(&reader, root3, ByteRange::new(0, 32), PSIZE).unwrap();
        assert_eq!(
            v3.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(),
            vec![100, 101, 102, 103, 204, 205, 306, 307]
        );
        // And v2 alone sees only C1's append.
        let root2 = RootRef { version: Version(2), pos: NodePos::new(0, 8) };
        let v2 = read_meta(&reader, root2, ByteRange::new(0, 24), PSIZE).unwrap();
        assert_eq!(
            v2.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(),
            vec![100, 101, 102, 103, 204, 205]
        );
    }

    #[test]
    fn branch_shares_metadata_with_parent() {
        let store = store();
        let parent_lineage = Lineage::root(BlobId(1));
        let reader = TreeReader::new(&store, &parent_lineage);
        let ctx1 = UpdateContext {
            vw: Version(1),
            range: PageRange::new(0, 2),
            new_root: NodePos::new(0, 2),
            overrides: vec![],
            ref_root: None,
        };
        commit(&store, build_meta(&reader, &ctx1, &[pd(0, 100), pd(1, 101)]).unwrap());
        let root1 = RootRef { version: Version(1), pos: NodePos::new(0, 2) };

        // Branch at v1; the branch overwrites page 0 as its v2.
        let branch_lineage = Lineage::branch(&parent_lineage, Version(1), BlobId(2));
        let breader = TreeReader::new(&store, &branch_lineage);
        let ctx2 = UpdateContext {
            vw: Version(2),
            range: PageRange::new(0, 1),
            new_root: NodePos::new(0, 2),
            overrides: vec![],
            ref_root: Some(root1),
        };
        let nodes = build_meta(&breader, &ctx2, &[pd(0, 900)]).unwrap();
        // New nodes are keyed under the branch blob.
        assert!(nodes.iter().all(|(k, _)| k.blob == BlobId(2)));
        commit(&store, nodes);

        // Branch v2 reads its new page plus the parent's shared page.
        let root2 = RootRef { version: Version(2), pos: NodePos::new(0, 2) };
        let v2 = read_meta(&breader, root2, ByteRange::new(0, 8), PSIZE).unwrap();
        assert_eq!(v2.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(), vec![900, 101]);
        // Parent v1 reads through the *parent* lineage, untouched.
        let v1 = read_meta(&reader, root1, ByteRange::new(0, 8), PSIZE).unwrap();
        assert_eq!(v1.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(), vec![100, 101]);
        // And the same root read through the *branch* lineage also works
        // (shared versions resolve to the parent's keys).
        let v1b = read_meta(&breader, root1, ByteRange::new(0, 8), PSIZE).unwrap();
        assert_eq!(v1b.iter().map(|p| p.pid.raw()).collect::<Vec<_>>(), vec![100, 101]);
    }

    #[test]
    fn build_rejects_mismatched_leaves() {
        let store = store();
        let lineage = Lineage::root(BlobId(1));
        let reader = TreeReader::new(&store, &lineage);
        let ctx = UpdateContext {
            vw: Version(1),
            range: PageRange::new(0, 2),
            new_root: NodePos::new(0, 2),
            overrides: vec![],
            ref_root: None,
        };
        assert!(build_meta(&reader, &ctx, &[pd(0, 1)]).is_err(), "wrong count");
        assert!(build_meta(&reader, &ctx, &[pd(1, 1), pd(2, 2)]).is_err(), "wrong indices");
    }

    #[test]
    fn border_set_lookup_errors_on_unknown() {
        let b = BorderSet::from_entries([(NodePos::new(0, 1), Some(Version(1)))]);
        assert_eq!(b.lookup(NodePos::new(0, 1)).unwrap(), Some(Version(1)));
        assert!(b.lookup(NodePos::new(1, 1)).is_err());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    use std::collections::HashMap;
}
