//! Pure tree planners: which positions an update creates, which
//! positions border it, which positions a read visits.
//!
//! These functions are arithmetic only — no storage, no locking — and
//! are shared by three consumers:
//!
//! * [`crate::build`] materialises exactly the positions planned here;
//! * the version manager computes **partial border sets** for concurrent
//!   writers by asking, for each border position, which in-flight update
//!   creates it ([`creates_position`]) — the paper's §4.2 protocol;
//! * the network simulator (`blobseer-sim`) prices operations by the
//!   *planned* node counts, so simulated metadata overhead (including
//!   the power-of-two step-downs visible in the paper's Figure 2(a))
//!   follows the real tree math.

use blobseer_types::{NodePos, PageRange};

/// The contiguous run of tree positions an update creates at one level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelSpan {
    /// Tree level (0 = leaves).
    pub level: u32,
    /// First position index at this level (position offset = index << level).
    pub first_index: u64,
    /// Last position index at this level (inclusive).
    pub last_index: u64,
}

impl LevelSpan {
    /// Number of positions in the span.
    pub fn count(&self) -> u64 {
        self.last_index - self.first_index + 1
    }

    /// Iterate the positions in the span.
    pub fn positions(&self) -> impl Iterator<Item = NodePos> + '_ {
        let level = self.level;
        (self.first_index..=self.last_index).map(move |i| NodePos::new(i << level, 1u64 << level))
    }
}

/// Everything an update of `range` in a tree rooted at `root` creates.
///
/// Paper §4.2: the new tree "is the smallest (possibly incomplete)
/// binary tree such that its leaves are exactly the leaves covering the
/// pages of \[the\] range that is written", built "bottom-up ... up to
/// (and including) the root". Because the updated page range is
/// contiguous, the created positions at each level form one contiguous
/// index interval — which is why the whole plan is a `Vec<LevelSpan>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdatePlan {
    /// Updated page range.
    pub range: PageRange,
    /// Root position of the new tree.
    pub root: NodePos,
    /// Created positions, one span per level, leaves first.
    pub levels: Vec<LevelSpan>,
}

impl UpdatePlan {
    /// Total tree nodes created by the update.
    pub fn node_count(&self) -> u64 {
        self.levels.iter().map(LevelSpan::count).sum()
    }

    /// Tree depth (number of levels, root included).
    pub fn depth(&self) -> u32 {
        self.root.level() + 1
    }

    /// Iterate all created positions, leaves first.
    pub fn positions(&self) -> impl Iterator<Item = NodePos> + '_ {
        self.levels.iter().flat_map(LevelSpan::positions)
    }
}

/// Plan the positions created by updating `range` in a tree rooted at
/// `root` (the root position *after* the update).
pub fn update_plan(range: PageRange, root: NodePos) -> UpdatePlan {
    assert!(!range.is_empty(), "updates cover at least one page");
    assert!(
        root.contains_page(range.last().expect("non-empty")),
        "root {root:?} does not cover update {range:?}"
    );
    let last = range.last().expect("non-empty");
    let levels = (0..=root.level())
        .map(|level| LevelSpan {
            level,
            first_index: range.first >> level,
            last_index: last >> level,
        })
        .collect();
    UpdatePlan { range, root, levels }
}

/// `true` when an update of `range` under `root` creates a node at
/// `pos`. Used by the version manager to decide whether an *in-flight*
/// update will supply a border node for a newer writer (paper §4.2).
pub fn creates_position(range: PageRange, root: NodePos, pos: NodePos) -> bool {
    root.contains(pos) && pos.intersects(range)
}

/// The border positions of an update: children of created inner nodes
/// that the update itself does not create (paper §4.2's set `B_vw`).
/// Ordered top-down, left before right. Positions may lie beyond the
/// blob's content; the resolver decides whether they map to an existing
/// node or to a `None` child.
pub fn border_positions(range: PageRange, root: NodePos) -> Vec<NodePos> {
    assert!(!range.is_empty());
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(pos) = stack.pop() {
        if pos.is_leaf() {
            continue;
        }
        // Visit right first so the (LIFO) traversal emits left-to-right.
        for child in [pos.right(), pos.left()] {
            if child.intersects(range) {
                stack.push(child);
            } else {
                out.push(child);
            }
        }
    }
    // LIFO order above is top-down but right-heavy per level; normalise
    // to a deterministic (level desc, offset asc) order for tests/sim.
    out.sort_by(|a, b| b.level().cmp(&a.level()).then(a.offset.cmp(&b.offset)));
    out
}

/// The positions `READ_META` visits, level by level (root first).
///
/// Algorithm 3 explores a node iff its range intersects the request, so
/// the visited positions at each level form one contiguous index run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadPlan {
    /// Visited positions per level, **root level first**, each a span.
    pub levels: Vec<LevelSpan>,
}

impl ReadPlan {
    /// Total nodes fetched.
    pub fn node_count(&self) -> u64 {
        self.levels.iter().map(LevelSpan::count).sum()
    }

    /// Number of leaves fetched (equals pages covered by the request).
    pub fn leaf_count(&self) -> u64 {
        self.levels.last().map(LevelSpan::count).unwrap_or(0)
    }

    /// Tree depth traversed.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Plan a metadata read of `range` in a tree rooted at `root`.
pub fn read_plan(range: PageRange, root: NodePos) -> ReadPlan {
    assert!(!range.is_empty(), "reads cover at least one page");
    assert!(root.contains_page(range.last().expect("non-empty")));
    let last = range.last().expect("non-empty");
    let levels = (0..=root.level())
        .rev()
        .map(|level| LevelSpan {
            level,
            first_index: range.first >> level,
            last_index: last >> level,
        })
        .collect();
    ReadPlan { levels }
}

/// Nodes in a *complete* (from-scratch) tree over `pages` pages — the
/// cost of the naive rebuild the paper rejects (§4.1: "rebuilding a full
/// tree for subsequent updates would be space- and time-inefficient").
pub fn full_tree_node_count(pages: u64) -> u64 {
    if pages == 0 {
        return 0;
    }
    let root = NodePos::root_for(pages);
    (0..=root.level()).map(|level| ((pages - 1) >> level) + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(offset: u64, size: u64) -> NodePos {
        NodePos::new(offset, size)
    }

    #[test]
    fn figure_1a_initial_write() {
        // Fig 1(a): write of 4 pages to an empty blob — full 4-page tree.
        let plan = update_plan(PageRange::new(0, 4), pos(0, 4));
        assert_eq!(plan.node_count(), 7);
        assert_eq!(plan.depth(), 3);
        let all: Vec<NodePos> = plan.positions().collect();
        assert_eq!(
            all,
            vec![pos(0, 1), pos(1, 1), pos(2, 1), pos(3, 1), pos(0, 2), pos(2, 2), pos(0, 4),]
        );
        assert!(border_positions(PageRange::new(0, 4), pos(0, 4)).is_empty());
    }

    #[test]
    fn figure_1b_overwrite_two_middle_pages() {
        // Fig 1(b): overwrite pages 1..3 of the 4-page blob. Grey nodes:
        // (1,1), (2,1), (0,2), (2,2), (0,4).
        let range = PageRange::new(1, 2);
        let plan = update_plan(range, pos(0, 4));
        let all: Vec<NodePos> = plan.positions().collect();
        assert_eq!(all, vec![pos(1, 1), pos(2, 1), pos(0, 2), pos(2, 2), pos(0, 4)]);
        // Borders: the white leaves (0,1) and (3,1) get weaved in.
        assert_eq!(border_positions(range, pos(0, 4)), vec![pos(0, 1), pos(3, 1)]);
    }

    #[test]
    fn figure_1c_append_grows_root() {
        // Fig 1(c): append one page (index 4) — root grows to (0,8); the
        // old root (0,4) becomes the left child of the new root.
        let range = PageRange::new(4, 1);
        let plan = update_plan(range, pos(0, 8));
        let all: Vec<NodePos> = plan.positions().collect();
        assert_eq!(all, vec![pos(4, 1), pos(4, 2), pos(4, 4), pos(0, 8)]);
        // Borders: old root (0,4), then the empty right siblings.
        assert_eq!(border_positions(range, pos(0, 8)), vec![pos(0, 4), pos(6, 2), pos(5, 1)]);
    }

    #[test]
    fn creates_position_matches_plan() {
        for (range, root) in [
            (PageRange::new(1, 2), pos(0, 4)),
            (PageRange::new(4, 1), pos(0, 8)),
            (PageRange::new(3, 9), pos(0, 16)),
        ] {
            let plan = update_plan(range, root);
            let created: std::collections::HashSet<NodePos> = plan.positions().collect();
            // Every dyadic position under the root is classified correctly.
            for level in 0..=root.level() {
                let size = 1u64 << level;
                for idx in 0..(root.size >> level) {
                    let p = pos(idx * size, size);
                    assert_eq!(
                        creates_position(range, root, p),
                        created.contains(&p),
                        "range {range:?} root {root:?} pos {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn borders_disjoint_from_created_and_adjacent() {
        let range = PageRange::new(3, 9);
        let root = pos(0, 16);
        let plan = update_plan(range, root);
        let created: std::collections::HashSet<NodePos> = plan.positions().collect();
        for b in border_positions(range, root) {
            assert!(!b.intersects(range), "border {b:?} intersects update");
            assert!(!created.contains(&b));
            // A border's parent is always a created node.
            assert!(created.contains(&b.parent()), "border {b:?} parent not created");
        }
    }

    #[test]
    fn created_plus_borders_cover_consistently() {
        // For every created inner node, each child is either created or
        // a border — never unaccounted for.
        let range = PageRange::new(5, 6);
        let root = pos(0, 16);
        let plan = update_plan(range, root);
        let created: std::collections::HashSet<NodePos> = plan.positions().collect();
        let borders: std::collections::HashSet<NodePos> =
            border_positions(range, root).into_iter().collect();
        for p in plan.positions().filter(|p| !p.is_leaf()) {
            for child in [p.left(), p.right()] {
                assert!(
                    created.contains(&child) ^ borders.contains(&child),
                    "child {child:?} of {p:?} must be exactly one of created/border"
                );
            }
        }
    }

    #[test]
    fn read_plan_matches_algorithm3_counts() {
        // Reading 1024 pages out of a 2^20-page blob: 1 node at each of
        // the top 11 levels, then 2, 4, ..., 1024.
        let root = pos(0, 1 << 20);
        let plan = read_plan(PageRange::new(0, 1024), root);
        assert_eq!(plan.depth(), 21);
        assert_eq!(plan.levels[0].count(), 1, "root");
        assert_eq!(plan.levels[10].count(), 1, "level 10 spans exactly the request");
        assert_eq!(plan.levels[11].count(), 2);
        assert_eq!(plan.levels[20].count(), 1024, "leaves");
        assert_eq!(plan.leaf_count(), 1024);
        assert_eq!(plan.node_count(), 11 + (2048 - 2));
    }

    #[test]
    fn read_plan_unaligned_chunk() {
        // A chunk straddling a big subtree boundary visits two nodes per
        // upper level instead of one.
        let root = pos(0, 16);
        let plan = read_plan(PageRange::new(7, 2), root);
        let counts: Vec<u64> = plan.levels.iter().map(LevelSpan::count).collect();
        assert_eq!(counts, vec![1, 2, 2, 2, 2]);
    }

    #[test]
    fn full_tree_counts() {
        assert_eq!(full_tree_node_count(0), 0);
        assert_eq!(full_tree_node_count(1), 1);
        assert_eq!(full_tree_node_count(2), 3);
        assert_eq!(full_tree_node_count(4), 7);
        assert_eq!(full_tree_node_count(5), 5 + 3 + 2 + 1); // incomplete 8-span tree
        assert_eq!(full_tree_node_count(8), 15);
    }

    #[test]
    fn update_count_shows_power_of_two_step() {
        // The depth term grows by one exactly when the blob's page count
        // crosses a power of two — the cause of the small bandwidth dips
        // in the paper's Figure 2(a).
        let append_pages = 16u64;
        let mut total = 0u64;
        let mut depths = Vec::new();
        for _ in 0..64 {
            let range = PageRange::new(total, append_pages);
            total += append_pages;
            let root = NodePos::root_for(total);
            let plan = update_plan(range, root);
            depths.push(plan.depth());
        }
        // Depth is non-decreasing and steps up at powers of two.
        assert!(depths.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(depths[0], 5); // 16 pages
        assert_eq!(depths[1], 6); // 32 pages
        assert_eq!(depths[3], 7); // 64 pages
        assert_eq!(depths[63], 11); // 1024 pages
    }

    #[test]
    #[should_panic]
    fn empty_update_rejected() {
        update_plan(PageRange::new(0, 0), pos(0, 4));
    }

    #[test]
    #[should_panic]
    fn root_must_cover_update() {
        update_plan(PageRange::new(3, 4), pos(0, 4));
    }
}
