//! Tree traversal: `READ_META` (paper Algorithm 3), point lookups, and
//! whole-tree page enumeration (the GC/scrub mark phase).

use std::collections::HashSet;

use blobseer_types::{
    BlobError, ByteRange, NodePos, PageDescriptor, PageId, ProviderId, Result, Version,
};

use crate::lineage::Lineage;
use crate::node::{NodeKey, RootRef, TreeNode};
use crate::store::MetaStore;

/// A read-side view of one blob's metadata: the store plus the blob's
/// lineage (so shared branch versions resolve to their owning ancestor).
pub struct TreeReader<'a> {
    store: &'a MetaStore,
    lineage: &'a Lineage,
}

impl<'a> TreeReader<'a> {
    /// View `lineage`'s blob through `store`.
    pub fn new(store: &'a MetaStore, lineage: &'a Lineage) -> Self {
        TreeReader { store, lineage }
    }

    /// The blob's lineage.
    pub fn lineage(&self) -> &Lineage {
        self.lineage
    }

    /// DHT key of the node created by `version` at `pos`.
    pub fn key_for(&self, version: Version, pos: NodePos) -> NodeKey {
        NodeKey { blob: self.lineage.owner_of(version), version, pos }
    }

    /// Fetch a node; `wait` selects blocking vs. immediate semantics.
    pub fn fetch(&self, version: Version, pos: NodePos, wait: bool) -> Result<TreeNode> {
        let key = self.key_for(version, pos);
        if wait {
            self.store.get_wait(&key)
        } else {
            self.store.get(&key)
        }
    }

    /// The version of the node occupying `pos` within the tree rooted at
    /// `root`, or `None` when the tree has no node there (position beyond
    /// the snapshot's content). Descends parent→child following the
    /// child-version pointers, exactly like a point query of Algorithm 3.
    pub fn version_at(&self, root: RootRef, pos: NodePos, wait: bool) -> Result<Option<Version>> {
        if root.pos == pos {
            return Ok(Some(root.version));
        }
        if !root.pos.contains(pos) {
            return Ok(None);
        }
        let mut cur_version = root.version;
        let mut cur_pos = root.pos;
        while cur_pos != pos {
            let node = self.fetch(cur_version, cur_pos, wait)?;
            let child_pos = cur_pos.child_toward(pos.offset);
            match node.child(child_pos.is_left_child()) {
                Some(v) => {
                    cur_version = v;
                    cur_pos = child_pos;
                }
                None => return Ok(None),
            }
        }
        Ok(Some(cur_version))
    }
}

/// `READ_META` (paper Algorithm 3): the page descriptors covering
/// `request` in the snapshot rooted at `root`, sorted by page index.
///
/// The caller must have validated `request` against the snapshot size
/// (the version manager's `GET_SIZE`); a `None` child encountered within
/// the requested range therefore indicates corrupt metadata and is
/// surfaced as [`BlobError::Internal`].
pub fn read_meta(
    reader: &TreeReader<'_>,
    root: RootRef,
    request: ByteRange,
    psize: u64,
) -> Result<Vec<PageDescriptor>> {
    let pages = request.pages(psize);
    if pages.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(pages.count as usize);
    let mut stack: Vec<(Version, NodePos)> = vec![(root.version, root.pos)];
    while let Some((version, pos)) = stack.pop() {
        let node = reader.fetch(version, pos, true)?;
        match node {
            TreeNode::Leaf { pid, provider, valid_len } => {
                debug_assert!(pos.is_leaf());
                out.push(PageDescriptor { pid, page_index: pos.offset, provider, valid_len });
            }
            TreeNode::Inner { left, right } => {
                for (child, child_version) in [(pos.left(), left), (pos.right(), right)] {
                    if !child.intersects(pages) {
                        continue;
                    }
                    match child_version {
                        Some(v) => stack.push((v, child)),
                        None => {
                            return Err(BlobError::Internal(format!(
                                "tree {root:?}: missing child {child:?} inside request {request:?}"
                            )))
                        }
                    }
                }
            }
        }
    }
    out.sort_by_key(|pd| pd.page_index);
    // Exactly one leaf per requested page.
    if out.len() as u64 != pages.count || out.first().map(|p| p.page_index) != Some(pages.first) {
        return Err(BlobError::Internal(format!(
            "read_meta assembled {} descriptors for {} pages",
            out.len(),
            pages.count
        )));
    }
    Ok(out)
}

/// Vectored `READ_META`: the page descriptors covering *any* of
/// `requests` in the snapshot rooted at `root`, assembled in **one**
/// tree traversal and sorted by page index.
///
/// Equivalent to the union of per-request [`read_meta`] calls, but each
/// shared tree node (in particular the upper levels, which every range
/// visits) is fetched exactly once — the planning half of a vectored
/// read. Descriptors are deduplicated: a page touched by several
/// requests appears once. Empty requests are ignored; the caller must
/// have validated every range against the snapshot size.
pub fn read_meta_multi(
    reader: &TreeReader<'_>,
    root: RootRef,
    requests: &[ByteRange],
    psize: u64,
) -> Result<Vec<PageDescriptor>> {
    let page_ranges: Vec<_> =
        requests.iter().map(|r| r.pages(psize)).filter(|p| !p.is_empty()).collect();
    if page_ranges.is_empty() {
        return Ok(Vec::new());
    }
    let wanted = |pos: NodePos| page_ranges.iter().any(|&r| pos.intersects(r));
    let mut out = Vec::new();
    let mut stack: Vec<(Version, NodePos)> = vec![(root.version, root.pos)];
    while let Some((version, pos)) = stack.pop() {
        let node = reader.fetch(version, pos, true)?;
        match node {
            TreeNode::Leaf { pid, provider, valid_len } => {
                out.push(PageDescriptor { pid, page_index: pos.offset, provider, valid_len });
            }
            TreeNode::Inner { left, right } => {
                for (child, child_version) in [(pos.left(), left), (pos.right(), right)] {
                    if !wanted(child) {
                        continue;
                    }
                    match child_version {
                        Some(v) => stack.push((v, child)),
                        None => {
                            return Err(BlobError::Internal(format!(
                                "tree {root:?}: missing child {child:?} inside a readv request"
                            )))
                        }
                    }
                }
            }
        }
    }
    out.sort_by_key(|pd| pd.page_index);
    // Positions are unique per traversal, so each leaf appears at most
    // once already; the count must match the union of requested pages.
    let mut union_pages = 0u64;
    let mut covered_until = 0u64;
    let mut sorted = page_ranges;
    sorted.sort_by_key(|r| r.first);
    for r in sorted {
        let start = r.first.max(covered_until);
        union_pages += r.end().saturating_sub(start);
        covered_until = covered_until.max(r.end());
    }
    if out.len() as u64 != union_pages {
        return Err(BlobError::Internal(format!(
            "read_meta_multi assembled {} descriptors for {union_pages} pages",
            out.len(),
        )));
    }
    Ok(out)
}

/// Whole-tree enumeration for the mark phase of garbage collection and
/// the orphan scrubber: visit every node reachable from `root`
/// (non-blocking fetches — the caller guarantees the tree is complete,
/// which holds for every published or committed-abort version) and
/// report each leaf's page to `on_leaf`.
///
/// `visited` carries the node keys already walked: subtrees shared with
/// previously enumerated roots are skipped, so marking all retained
/// roots of a lineage costs each physical node exactly once — the same
/// sharing that makes versioning cheap makes marking cheap. The set
/// doubles as GC's reachability answer.
///
/// A missing node surfaces as an error ([`BlobError::MetadataMissing`])
/// rather than being skipped: under-marking would let a sweep delete
/// live pages, so the caller must abort its pass instead.
pub fn collect_tree_pages(
    reader: &TreeReader<'_>,
    root: RootRef,
    visited: &mut HashSet<NodeKey>,
    on_leaf: &mut dyn FnMut(PageId, ProviderId),
) -> Result<()> {
    let mut stack = vec![(root.version, root.pos)];
    while let Some((version, pos)) = stack.pop() {
        let key = reader.key_for(version, pos);
        if !visited.insert(key) {
            continue; // shared subtree already enumerated
        }
        match reader.fetch(version, pos, false)? {
            TreeNode::Leaf { pid, provider, .. } => on_leaf(pid, provider),
            TreeNode::Inner { left, right } => {
                if let Some(v) = left {
                    stack.push((v, pos.left()));
                }
                if let Some(v) = right {
                    stack.push((v, pos.right()));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TreeNode;
    use blobseer_types::{BlobId, PageId, ProviderId};
    use std::time::Duration;

    /// Hand-build the Figure 1(a) tree: version 1 covering 4 pages.
    fn fig1a_store() -> (MetaStore, Lineage) {
        let store = MetaStore::new(4, Duration::from_millis(100));
        let lineage = Lineage::root(BlobId(1));
        let leaf = |i: u64| TreeNode::Leaf {
            pid: PageId(100 + i as u128),
            provider: ProviderId(i as u32),
            valid_len: 4,
        };
        let k = |v: u64, o: u64, s: u64| NodeKey {
            blob: BlobId(1),
            version: Version(v),
            pos: NodePos::new(o, s),
        };
        for i in 0..4 {
            store.put(k(1, i, 1), leaf(i));
        }
        let inner = |l, r| TreeNode::Inner { left: Some(Version(l)), right: Some(Version(r)) };
        store.put(k(1, 0, 2), inner(1, 1));
        store.put(k(1, 2, 2), inner(1, 1));
        store.put(k(1, 0, 4), inner(1, 1));
        (store, lineage)
    }

    #[test]
    fn read_meta_full_range() {
        let (store, lineage) = fig1a_store();
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        let pds = read_meta(&reader, root, ByteRange::new(0, 16), 4).unwrap();
        assert_eq!(pds.len(), 4);
        for (i, pd) in pds.iter().enumerate() {
            assert_eq!(pd.page_index, i as u64);
            assert_eq!(pd.pid, PageId(100 + i as u128));
        }
    }

    #[test]
    fn read_meta_partial_and_unaligned() {
        let (store, lineage) = fig1a_store();
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        // Bytes [5, 11) touch pages 1 and 2 only.
        let pds = read_meta(&reader, root, ByteRange::new(5, 6), 4).unwrap();
        assert_eq!(pds.len(), 2);
        assert_eq!(pds[0].page_index, 1);
        assert_eq!(pds[1].page_index, 2);
    }

    #[test]
    fn read_meta_empty_request() {
        let (store, lineage) = fig1a_store();
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        assert!(read_meta(&reader, root, ByteRange::new(4, 0), 4).unwrap().is_empty());
    }

    #[test]
    fn read_meta_multi_unions_ranges_in_one_pass() {
        let (store, lineage) = fig1a_store();
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        // Bytes [0,4) and [13,16): pages 0 and 3 only.
        let pds = read_meta_multi(&reader, root, &[ByteRange::new(0, 4), ByteRange::new(13, 3)], 4)
            .unwrap();
        assert_eq!(pds.len(), 2);
        assert_eq!(pds[0].page_index, 0);
        assert_eq!(pds[1].page_index, 3);
        // Overlapping ranges dedup to one descriptor per page.
        let pds =
            read_meta_multi(&reader, root, &[ByteRange::new(0, 10), ByteRange::new(5, 11)], 4)
                .unwrap();
        assert_eq!(pds.len(), 4);
        // Empty requests contribute nothing.
        assert!(read_meta_multi(&reader, root, &[ByteRange::new(8, 0)], 4).unwrap().is_empty());
        // Matches per-range read_meta unions.
        let single = read_meta(&reader, root, ByteRange::new(5, 6), 4).unwrap();
        let multi = read_meta_multi(&reader, root, &[ByteRange::new(5, 6)], 4).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn collect_tree_pages_enumerates_leaves_once_across_shared_roots() {
        let (store, lineage) = fig1a_store();
        // A v2 tree overwriting page 0 only, sharing v1's right half.
        let k = |v: u64, o: u64, s: u64| NodeKey {
            blob: BlobId(1),
            version: Version(v),
            pos: NodePos::new(o, s),
        };
        store.put(
            k(2, 0, 1),
            TreeNode::Leaf { pid: PageId(200), provider: ProviderId(0), valid_len: 4 },
        );
        store.put(k(2, 0, 2), TreeNode::Inner { left: Some(Version(2)), right: Some(Version(1)) });
        store.put(k(2, 0, 4), TreeNode::Inner { left: Some(Version(2)), right: Some(Version(1)) });
        let reader = TreeReader::new(&store, &lineage);

        let mut visited = HashSet::new();
        let mut pids = Vec::new();
        let mut on_leaf = |pid: PageId, _prov: ProviderId| pids.push(pid.raw());
        let root1 = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        let root2 = RootRef { version: Version(2), pos: NodePos::new(0, 4) };
        collect_tree_pages(&reader, root1, &mut visited, &mut on_leaf).unwrap();
        collect_tree_pages(&reader, root2, &mut visited, &mut on_leaf).unwrap();
        pids.sort_unstable();
        // v1's four leaves plus v2's one new leaf — the shared right
        // half is walked exactly once.
        assert_eq!(pids, vec![100, 101, 102, 103, 200]);
        assert_eq!(visited.len(), 7 + 3, "v1's 7 nodes + v2's 3 new ones");
    }

    #[test]
    fn collect_tree_pages_surfaces_missing_nodes() {
        let store = MetaStore::new(2, Duration::from_millis(10));
        let lineage = Lineage::root(BlobId(3));
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 2) };
        let mut visited = HashSet::new();
        let err = collect_tree_pages(&reader, root, &mut visited, &mut |_, _| {}).unwrap_err();
        assert!(matches!(err, BlobError::MetadataMissing { .. }));
    }

    #[test]
    fn version_at_walks_pointers() {
        let (store, lineage) = fig1a_store();
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 4) };
        assert_eq!(reader.version_at(root, NodePos::new(0, 4), false).unwrap(), Some(Version(1)));
        assert_eq!(reader.version_at(root, NodePos::new(2, 2), false).unwrap(), Some(Version(1)));
        assert_eq!(reader.version_at(root, NodePos::new(3, 1), false).unwrap(), Some(Version(1)));
        // Outside the root span.
        assert_eq!(reader.version_at(root, NodePos::new(4, 4), false).unwrap(), None);
    }

    #[test]
    fn missing_node_surfaces_as_timeout_when_waiting() {
        let store = MetaStore::new(2, Duration::from_millis(10));
        let lineage = Lineage::root(BlobId(9));
        let reader = TreeReader::new(&store, &lineage);
        let root = RootRef { version: Version(1), pos: NodePos::new(0, 2) };
        let err = read_meta(&reader, root, ByteRange::new(0, 8), 4).unwrap_err();
        assert_eq!(err, BlobError::Timeout("metadata tree node"));
    }
}
