//! Disjoint-chunk partitioning for concurrent readers.

use blobseer_types::ByteRange;

/// Partitions a snapshot of `total_bytes` into per-worker chunks of
/// `chunk_bytes` (the Figure 2(b) pattern: "a set of workers READ
/// disjoint parts of the blob").
#[derive(Clone, Copy, Debug)]
pub struct DisjointChunks {
    total_bytes: u64,
    chunk_bytes: u64,
}

impl DisjointChunks {
    /// Partition `total_bytes` into `chunk_bytes`-sized chunks.
    pub fn new(total_bytes: u64, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0);
        DisjointChunks { total_bytes, chunk_bytes }
    }

    /// Number of (possibly short-tailed) chunks.
    pub fn chunk_count(&self) -> u64 {
        blobseer_types::div_ceil(self.total_bytes, self.chunk_bytes)
    }

    /// The byte range of chunk `i`, `None` past the end. The final
    /// chunk may be shorter than `chunk_bytes`.
    pub fn chunk(&self, i: u64) -> Option<ByteRange> {
        let offset = i.checked_mul(self.chunk_bytes)?;
        if offset >= self.total_bytes {
            return None;
        }
        Some(ByteRange::new(offset, self.chunk_bytes.min(self.total_bytes - offset)))
    }

    /// Iterate all chunks.
    pub fn iter(&self) -> impl Iterator<Item = ByteRange> + '_ {
        (0..self.chunk_count()).filter_map(|i| self.chunk(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition() {
        let c = DisjointChunks::new(100, 25);
        assert_eq!(c.chunk_count(), 4);
        assert_eq!(c.chunk(0), Some(ByteRange::new(0, 25)));
        assert_eq!(c.chunk(3), Some(ByteRange::new(75, 25)));
        assert_eq!(c.chunk(4), None);
    }

    #[test]
    fn short_tail() {
        let c = DisjointChunks::new(100, 30);
        assert_eq!(c.chunk_count(), 4);
        assert_eq!(c.chunk(3), Some(ByteRange::new(90, 10)));
    }

    #[test]
    fn chunks_tile_exactly() {
        let c = DisjointChunks::new(12345, 100);
        let mut expected_offset = 0;
        let mut total = 0;
        for r in c.iter() {
            assert_eq!(r.offset, expected_offset);
            expected_offset = r.end();
            total += r.size;
        }
        assert_eq!(total, 12345);
    }

    #[test]
    fn empty_blob_has_no_chunks() {
        let c = DisjointChunks::new(0, 10);
        assert_eq!(c.chunk_count(), 0);
        assert_eq!(c.chunk(0), None);
        assert_eq!(c.iter().count(), 0);
    }
}
