//! An elastic-cluster driver: pipelined ingest while the provider set
//! changes underneath it.
//!
//! [`ElasticIngest`] streams [`crate::AppendStream`] chunks like
//! [`crate::PipelinedIngest`], but exercises the PR 9 membership
//! machinery mid-run: after a third of the appends it **joins** fresh
//! providers (`BlobSeer::add_provider` — immediately eligible for
//! placement), and at two thirds it starts **draining** a victim
//! provider on a second thread, so the migration runs concurrently
//! with live pipelined writers — the exact coexistence the drain's
//! epoch-cut argument promises. The run self-verifies: the ingested
//! stream reads back byte-identical, the victim ends retired with zero
//! pages, and a repair pass after the churn converges (the second pass
//! is a no-op).

use std::time::{Duration, Instant};

use blobseer::{BlobSeer, Bytes, DrainReport, PendingWrite, ProviderId, Result, Version};

use crate::stream::AppendStream;

/// What one elastic ingest run produced and proved.
#[derive(Clone, Debug)]
pub struct ElasticReport {
    /// Appends performed (all survive; this driver injects membership
    /// churn, not crashes).
    pub appends: u64,
    /// Total payload bytes appended.
    pub bytes: u64,
    /// Newest version published.
    pub last: Version,
    /// Providers joined mid-ingest, in join order.
    pub joined: Vec<ProviderId>,
    /// What the concurrent drain migrated.
    pub drain: DrainReport,
    /// Wall time of the whole ingest (including the overlapped churn).
    pub ingest_elapsed: Duration,
    /// Wall time of the drain alone, measured on its own thread.
    pub drain_elapsed: Duration,
    /// Copies the post-churn rebalance pass moved (the joins re-route
    /// successor chains; one `repair_replicas` converges placement).
    pub rebalance_copies: u64,
    /// Wall time of that rebalance pass.
    pub rebalance_elapsed: Duration,
}

/// Pipelined ingest with membership churn; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct ElasticIngest {
    depth: usize,
    joins: usize,
}

impl ElasticIngest {
    /// Driver keeping up to `depth` appends in flight and joining
    /// `joins` fresh providers mid-run (both ≥ 1).
    pub fn new(depth: usize, joins: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        assert!(joins >= 1, "an elastic run needs at least one join");
        ElasticIngest { depth, joins }
    }

    /// Append `appends` chunks of `stream` to a fresh blob on `store`,
    /// joining providers after `appends / 3` chunks and draining
    /// `victim` concurrently from `2 * appends / 3` on. Returns after
    /// ingest, drain, verification and the rebalance pass all
    /// completed.
    pub fn run(
        &self,
        store: &BlobSeer,
        stream: &mut AppendStream,
        appends: u64,
        victim: ProviderId,
    ) -> Result<ElasticReport> {
        let blob = store.create();
        let seed_check = stream.produced();
        assert_eq!(seed_check, 0, "driver needs a fresh stream");

        let join_at = appends / 3;
        let drain_at = 2 * appends / 3;
        let mut joined = Vec::new();
        let mut drainer: Option<std::thread::JoinHandle<(Result<DrainReport>, Duration)>> = None;

        let t0 = Instant::now();
        let mut inflight: std::collections::VecDeque<PendingWrite> =
            std::collections::VecDeque::with_capacity(self.depth);
        let mut bytes = 0u64;
        let mut last = Version(0);
        for i in 0..appends {
            if i == join_at {
                for _ in 0..self.joins {
                    joined.push(store.add_provider());
                }
            }
            if i == drain_at {
                let store = store.clone();
                drainer = Some(std::thread::spawn(move || {
                    let t = Instant::now();
                    (store.drain_provider(victim), t.elapsed())
                }));
            }
            let chunk = stream.next_chunk();
            bytes += chunk.len() as u64;
            inflight.push_back(blob.append_pipelined(Bytes::from(chunk))?);
            if inflight.len() == self.depth {
                last = last.max(inflight.pop_front().expect("non-empty").wait()?);
            }
        }
        for pending in inflight {
            last = last.max(pending.wait()?);
        }
        blob.sync(last)?;
        let (drain, drain_elapsed) =
            drainer.expect("appends >= 3 so the drain was started").join().expect("drain thread");
        let drain = drain?;
        let ingest_elapsed = t0.elapsed();

        // Self-verify: membership churn was invisible to the data.
        let snap = blob.snapshot(last)?;
        assert_eq!(snap.len(), bytes);
        crate::PipelinedIngest::verify(&snap, stream.seed())?;
        let members = store.membership();
        assert_eq!(members.retired, 1, "the victim must have retired");

        // Rebalance: the joins re-routed successor chains, so one
        // repair pass converges copy placement; the second is a no-op.
        let t1 = Instant::now();
        let rebalance = store.repair_replicas()?;
        let rebalance_elapsed = t1.elapsed();
        assert_eq!(rebalance.pages_unrepairable, 0, "churn must never lose a page");
        let second = store.repair_replicas()?;
        assert_eq!(second.copies_repaired, 0, "rebalance must converge");
        assert_eq!(second.strays_trimmed, 0, "rebalance must converge");

        Ok(ElasticReport {
            appends,
            bytes,
            last,
            joined,
            drain,
            ingest_elapsed,
            drain_elapsed,
            rebalance_copies: rebalance.copies_repaired,
            rebalance_elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_ingest_runs_and_verifies() {
        let store = BlobSeer::builder()
            .page_size(1024)
            .data_providers(4)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(2)
            .replication(2)
            .build()
            .unwrap();
        let mut stream = AppendStream::new(7, 500, 3000);
        let report = ElasticIngest::new(4, 2).run(&store, &mut stream, 30, ProviderId(0)).unwrap();
        assert_eq!(report.appends, 30);
        assert_eq!(report.bytes, stream.produced());
        assert_eq!(report.joined, vec![ProviderId(4), ProviderId(5)]);
        assert!(report.drain.pages_evacuated > 0 || report.drain.rounds >= 1);
        let members = store.membership();
        assert_eq!((members.registered, members.active, members.retired), (6, 5, 1));
    }
}
