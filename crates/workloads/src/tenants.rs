//! Multi-tenant ingest: the PR 8 QoS workload.
//!
//! Models the shared-deployment traffic that motivates admission
//! control: `tenants` clients append to one blob each (their own —
//! see `blobseer`'s `qos` module on why pipelined traffic should tag
//! one tenant per blob), with
//!
//! * **zipfian activity skew** — tenant *i* is picked with weight
//!   `1/(i+1)^s`, so tenant 0 is the "noisy neighbour" and the tail
//!   tenants are quiet; and
//! * **bursty arrivals** — each pick issues a burst of consecutive
//!   chunks rather than one, the arrival pattern token-bucket *burst*
//!   capacity exists to absorb.
//!
//! Every tenant's content comes from its own [`AppendStream`] (seed =
//! base seed + tenant id), so the final blob contents are a pure
//! function of the seed **regardless of throttling**: a throttled
//! chunk is retried until admitted, never dropped — which is exactly
//! the oracle property `tests/prop_qos.rs` checks (a throttled run is
//! byte-identical to an unthrottled one, just slower). The report
//! still counts every [`BlobError::QuotaExceeded`] refusal, so tests
//! can assert both "content unchanged" *and* "throttling happened".

use blobseer::{Blob, BlobError, BlobSeer, Result, TenantId, Version};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::AppendStream;

/// One tenant's share of a [`MultiTenantIngest`] run.
#[derive(Clone, Copy, Debug)]
pub struct TenantIngestReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Appends published.
    pub appends: u64,
    /// Payload bytes published.
    pub bytes: u64,
    /// `QuotaExceeded` refusals absorbed by retrying (0 when QoS is
    /// off or the tenant stayed under quota).
    pub throttled: u64,
    /// Newest version of the tenant's blob.
    pub last: Version,
}

/// What a whole [`MultiTenantIngest`] run produced.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Per-tenant breakdown, indexed by tenant id.
    pub tenants: Vec<TenantIngestReport>,
}

impl MultiTenantReport {
    /// Total appends published across tenants.
    pub fn total_appends(&self) -> u64 {
        self.tenants.iter().map(|t| t.appends).sum()
    }

    /// Total payload bytes published across tenants.
    pub fn total_bytes(&self) -> u64 {
        self.tenants.iter().map(|t| t.bytes).sum()
    }

    /// Total `QuotaExceeded` refusals absorbed by retrying.
    pub fn total_throttled(&self) -> u64 {
        self.tenants.iter().map(|t| t.throttled).sum()
    }
}

/// A multi-tenant ingest driver: zipfian-skewed, bursty blocking
/// appends from `tenants` clients into one blob per tenant.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantIngest {
    tenants: usize,
    skew_milli: u64,
    max_burst: usize,
    min_chunk: usize,
    max_chunk: usize,
}

impl MultiTenantIngest {
    /// Driver over `tenants` clients (≥ 1) with zipf exponent `s`
    /// (activity skew; `0.0` = uniform) and bursts of up to
    /// `max_burst` consecutive chunks per pick.
    pub fn new(tenants: usize, s: f64, max_burst: usize) -> Self {
        assert!(tenants >= 1, "need at least one tenant");
        assert!(max_burst >= 1, "bursts are at least one chunk");
        assert!((0.0..=8.0).contains(&s), "zipf exponent out of range");
        MultiTenantIngest {
            tenants,
            skew_milli: (s * 1000.0) as u64,
            max_burst,
            min_chunk: 256,
            max_chunk: 4096,
        }
    }

    /// Override the chunk-length bounds (defaults 256..=4096 bytes).
    pub fn chunk_len(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max);
        self.min_chunk = min;
        self.max_chunk = max;
        self
    }

    /// The deterministic stream seed of `tenant` for base seed `seed`
    /// (what [`AppendStream::expected`] wants when verifying that
    /// tenant's blob).
    pub fn tenant_seed(seed: u64, tenant: TenantId) -> u64 {
        seed ^ (0x7e1a_9d0b_u64.wrapping_mul(1 + tenant.raw() as u64))
    }

    /// Run `total_appends` chunks against `store`, distributing them
    /// over the tenants by zipfian pick + burst. Creates one blob per
    /// tenant (tagged via [`Blob::for_tenant`]); returns the blobs in
    /// tenant order alongside the report. Blocking appends; a
    /// [`BlobError::QuotaExceeded`] refusal is counted and the *same*
    /// chunk retried until admitted, so published content is
    /// independent of throttling.
    pub fn run(
        &self,
        store: &BlobSeer,
        seed: u64,
        total_appends: u64,
    ) -> Result<(Vec<Blob>, MultiTenantReport)> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Integer zipf: weight_i ∝ 1/(i+1)^s, scaled to ~1e6 so the
        // shim's u64 sampling suffices (no f64 gen_range needed).
        let s = self.skew_milli as f64 / 1000.0;
        let weights: Vec<u64> = (0..self.tenants)
            .map(|i| ((1_000_000.0 / ((i + 1) as f64).powf(s)) as u64).max(1))
            .collect();
        let total_weight: u64 = weights.iter().sum();

        let blobs: Vec<Blob> =
            (0..self.tenants).map(|i| store.create().for_tenant(TenantId(i as u32))).collect();
        let mut streams: Vec<AppendStream> = (0..self.tenants)
            .map(|i| {
                AppendStream::new(
                    Self::tenant_seed(seed, TenantId(i as u32)),
                    self.min_chunk,
                    self.max_chunk,
                )
            })
            .collect();
        let mut reports: Vec<TenantIngestReport> = (0..self.tenants)
            .map(|i| TenantIngestReport {
                tenant: TenantId(i as u32),
                appends: 0,
                bytes: 0,
                throttled: 0,
                last: Version(0),
            })
            .collect();

        let mut remaining = total_appends;
        while remaining > 0 {
            let mut pick = rng.gen_range(0..total_weight);
            let tenant = weights
                .iter()
                .position(|&w| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("pick is within the cumulative weight");
            let burst = (rng.gen_range(1..=self.max_burst) as u64).min(remaining);
            for _ in 0..burst {
                let chunk = streams[tenant].next_chunk();
                let r = &mut reports[tenant];
                r.bytes += chunk.len() as u64;
                loop {
                    match blobs[tenant].append(&chunk) {
                        Ok(v) => {
                            r.appends += 1;
                            r.last = r.last.max(v);
                            break;
                        }
                        // Refused at the admission deadline: count it
                        // and retry the same chunk — content must not
                        // depend on throttling.
                        Err(BlobError::QuotaExceeded { .. }) => r.throttled += 1,
                        Err(e) => return Err(e),
                    }
                }
            }
            remaining -= burst;
        }

        for (blob, r) in blobs.iter().zip(&reports) {
            if r.appends > 0 {
                blob.sync(r.last)?;
            }
        }
        Ok((blobs, MultiTenantReport { tenants: reports }))
    }

    /// Verify `blob` holds exactly its tenant's stream prefix (content
    /// is a pure function of the seed). Panics on mismatch.
    pub fn verify(blob: &Blob, seed: u64, report: &TenantIngestReport) -> Result<()> {
        let snap = blob.snapshot(report.last)?;
        assert_eq!(snap.len(), report.bytes, "published size mismatch for {}", report.tenant);
        let tseed = Self::tenant_seed(seed, report.tenant);
        let len = snap.len();
        let mut buf = vec![0u8; 64 * 1024];
        let mut offset = 0;
        while offset < len {
            let n = (len - offset).min(buf.len() as u64);
            snap.read_into(offset, &mut buf[..n as usize])?;
            assert_eq!(
                &buf[..n as usize],
                &AppendStream::expected(tseed, offset, n)[..],
                "content diverged at offset {offset} for {}",
                report.tenant
            );
            offset += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{QosConfig, TenantQuota};

    fn store(qos: Option<QosConfig>) -> BlobSeer {
        let mut b = BlobSeer::builder()
            .page_size(1024)
            .data_providers(4)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(2);
        if let Some(q) = qos {
            b = b.qos(q);
        }
        b.build().unwrap()
    }

    #[test]
    fn unthrottled_run_publishes_and_verifies() {
        let store = store(None);
        let driver = MultiTenantIngest::new(4, 1.0, 3);
        let (blobs, report) = driver.run(&store, 42, 40).unwrap();
        assert_eq!(report.total_appends(), 40);
        assert_eq!(report.total_throttled(), 0);
        // Zipfian skew: tenant 0 must dominate the tail tenant.
        assert!(report.tenants[0].appends > report.tenants[3].appends);
        for (blob, r) in blobs.iter().zip(&report.tenants) {
            MultiTenantIngest::verify(blob, 42, r).unwrap();
        }
    }

    #[test]
    fn throttled_run_is_byte_identical_to_unthrottled() {
        // Same seed, same append count; one run throttles the noisy
        // tenant hard (tiny deadline so refusals actually happen).
        let driver = MultiTenantIngest::new(3, 1.2, 2).chunk_len(256, 512);
        let free = store(None);
        let (free_blobs, free_report) = driver.run(&free, 7, 24).unwrap();

        let qos = QosConfig::default()
            .with_tenant(
                0,
                TenantQuota { ops_per_sec: 4, burst_ops: 1, ..TenantQuota::unlimited() },
            )
            .with_max_wait_ms(1);
        let gated = store(Some(qos));
        let (gated_blobs, gated_report) = driver.run(&gated, 7, 24).unwrap();

        assert!(gated_report.tenants[0].throttled > 0, "the noisy tenant must hit the quota");
        for i in 0..3 {
            assert_eq!(free_report.tenants[i].bytes, gated_report.tenants[i].bytes);
            assert_eq!(free_report.tenants[i].appends, gated_report.tenants[i].appends);
            let free_snap = free_blobs[i].snapshot(free_report.tenants[i].last).unwrap();
            let gated_snap = gated_blobs[i].snapshot(gated_report.tenants[i].last).unwrap();
            assert_eq!(free_snap.len(), gated_snap.len());
            MultiTenantIngest::verify(&gated_blobs[i], 7, &gated_report.tenants[i]).unwrap();
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let driver = MultiTenantIngest::new(3, 0.8, 4);
        let (_, a) = driver.run(&store(None), 9, 30).unwrap();
        let (_, b) = driver.run(&store(None), 9, 30).unwrap();
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!((x.appends, x.bytes), (y.appends, y.bytes));
        }
    }

    #[test]
    #[should_panic]
    fn zero_tenants_rejected() {
        MultiTenantIngest::new(0, 1.0, 1);
    }
}
