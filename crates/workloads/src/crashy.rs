//! A crash-injecting ingest driver: pipelined appends with periodic
//! writer deaths, driven through the engine's lease machinery.
//!
//! [`CrashyIngest`] streams [`crate::AppendStream`] chunks like
//! [`crate::PipelinedIngest`], but kills every `crash_every`-th append
//! at a rotating [`CrashPoint`] and then recovers the way a real
//! deployment would: the lease clock passes the TTL and a sweep aborts
//! the dead version, after which ingest resumes. Content stays fully
//! verifiable — [`CrashyIngest::verify`] checks every surviving chunk
//! against the deterministic stream and every hole against its
//! documented content (zeros, or the dead writer's bytes when it died
//! with all leaves durable).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use blobseer::{Blob, BlobSeer, Bytes, CrashPoint, PendingWrite, Result, Snapshot, Version};

use crate::stream::AppendStream;

/// One chunk of a crash-injected ingest run.
#[derive(Clone, Copy, Debug)]
pub struct ChunkRecord {
    /// Version the chunk was assigned.
    pub version: Version,
    /// Absolute byte offset (assigned offsets chain over holes).
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
    /// `None` for survivors, the injected crash point otherwise.
    pub crashed: Option<CrashPoint>,
}

/// What a crash-injected ingest run produced.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// Appends issued (survivors + crashed).
    pub appends: u64,
    /// Writers killed (== versions aborted by the sweeps).
    pub crashed: u64,
    /// Payload bytes of *surviving* appends.
    pub bytes: u64,
    /// Newest published version (published after the final `sync`).
    pub last: Version,
    /// Per-chunk record, in version order.
    pub chunks: Vec<ChunkRecord>,
}

/// Leak/reclaim measurements of one [`CrashyIngest::run_then_scrub`].
#[derive(Clone, Copy, Debug)]
pub struct ScrubTrajectory {
    /// Physical bytes stored right after the ingest quiesced (live set
    /// + everything the crashed writers leaked).
    pub stored_bytes_before: u64,
    /// Leaked bytes the scrub reclaimed.
    pub leaked_bytes_before: u64,
    /// Leaked page copies the scrub reclaimed.
    pub leaked_pages_before: u64,
    /// Bytes a second scrub still found leaked (0 on a quiesced
    /// deployment — the run's own completeness check).
    pub leaked_bytes_after: u64,
    /// Physical bytes stored after the scrub (the live-set size).
    pub stored_bytes_after: u64,
    /// Distinct pages the mark phase proved live.
    pub pages_marked: usize,
    /// Page copies the sweep inspected.
    pub pages_scanned: u64,
    /// Wall time of the crash-injected ingest (context for the scrub
    /// cost).
    pub ingest_elapsed: Duration,
    /// Wall time of the scrub pass (mark + parallel sweep).
    pub scrub_elapsed: Duration,
}

/// Pipelined ingest with failure injection; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct CrashyIngest {
    depth: usize,
    crash_every: u64,
}

impl CrashyIngest {
    /// Driver keeping up to `depth` appends in flight and killing every
    /// `crash_every`-th one (both ≥ 1; `crash_every == 1` kills every
    /// append — nothing survives but the blob still stays live).
    pub fn new(depth: usize, crash_every: u64) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        assert!(crash_every >= 1, "crash_every must be at least 1");
        CrashyIngest { depth, crash_every }
    }

    /// The rotating crash point used for the `n`-th kill.
    fn point(n: u64) -> CrashPoint {
        // Deliberately includes BeforeNotify: a writer that dies with
        // all leaves durable leaves its bytes in the hole, and verify
        // must account for that documented semantic.
        const POINTS: [CrashPoint; 4] = [
            CrashPoint::AfterPrepare,
            CrashPoint::AfterBoundaryPages,
            CrashPoint::AfterPartialMetadata,
            CrashPoint::BeforeNotify,
        ];
        POINTS[(n % POINTS.len() as u64) as usize]
    }

    /// Append `appends` chunks of `stream` to `blob`, killing every
    /// `crash_every`-th writer. Before each kill the in-flight window
    /// is drained (a failure epoch: the blob quiesces, the writer
    /// dies); recovery then runs the production path — the lease clock
    /// passes the TTL and [`BlobSeer::sweep_expired_leases`] aborts
    /// the dead version — before ingest resumes.
    pub fn run(
        &self,
        store: &BlobSeer,
        blob: &Blob,
        stream: &mut AppendStream,
        appends: u64,
    ) -> Result<CrashReport> {
        let ttl = store.config().lease_ttl_ticks;
        let mut inflight: VecDeque<PendingWrite> = VecDeque::with_capacity(self.depth);
        let mut chunks = Vec::with_capacity(appends as usize);
        let (mut bytes, mut crashed, mut offset) = (0u64, 0u64, 0u64);
        let mut last = Version(0);
        for i in 1..=appends {
            let chunk = stream.next_chunk();
            let len = chunk.len() as u64;
            if i.is_multiple_of(self.crash_every) {
                // Quiesce, then kill this writer mid-update.
                for pending in inflight.drain(..) {
                    last = last.max(pending.wait()?);
                }
                let point = Self::point(crashed);
                let version = blob.crash_append(Bytes::from(chunk), point)?;
                chunks.push(ChunkRecord { version, offset, len, crashed: Some(point) });
                crashed += 1;
                // Production recovery: lease expiry + sweep.
                store.advance_lease_clock(ttl + 1);
                let report = store.sweep_expired_leases();
                debug_assert!(report.aborted.contains(&(blob.id(), version)));
            } else {
                let pending = blob.append_pipelined(Bytes::from(chunk))?;
                chunks.push(ChunkRecord { version: pending.version(), offset, len, crashed: None });
                bytes += len;
                inflight.push_back(pending);
                if inflight.len() == self.depth {
                    last = last.max(inflight.pop_front().expect("non-empty").wait()?);
                }
            }
            offset += len;
        }
        for pending in inflight {
            last = last.max(pending.wait()?);
        }
        if last > Version(0) {
            blob.sync(last)?;
        }
        Ok(CrashReport { appends, crashed, bytes, last, chunks })
    }

    /// The crash-ingest-then-scrub trajectory: run the crash-injected
    /// ingest, measure the storage it leaked, scrub, and measure
    /// again. The returned [`ScrubTrajectory`] is what the bench
    /// harness checks into `BENCH_PR5.json`: leaked bytes before and
    /// after, plus the scrub's wall-clock cost to weigh against the
    /// ingest it cleans up after.
    ///
    /// "Leaked" is measured, not inferred: it is exactly what
    /// [`BlobSeer::scrub_orphans`] reclaims on the quiesced deployment
    /// (the run's own verification — a second scrub must find nothing).
    pub fn run_then_scrub(
        &self,
        store: &BlobSeer,
        blob: &Blob,
        stream: &mut AppendStream,
        appends: u64,
    ) -> Result<(CrashReport, ScrubTrajectory)> {
        let ingest_start = Instant::now();
        let report = self.run(store, blob, stream, appends)?;
        let ingest_elapsed = ingest_start.elapsed();

        let stored_bytes_before = store.stats().physical_bytes;
        let scrub_start = Instant::now();
        let scrub = store.scrub_orphans()?;
        let scrub_elapsed = scrub_start.elapsed();
        // Sample storage *before* the verification pass: if that pass
        // does reclaim a straggler (a background repair finishing
        // between the two), the trajectory must still satisfy
        // `before - leaked == after` for the measured scrub.
        let stored_bytes_after = store.stats().physical_bytes;
        let leak_after = store.scrub_orphans()?.bytes_reclaimed;

        Ok((
            report,
            ScrubTrajectory {
                stored_bytes_before,
                leaked_bytes_before: scrub.bytes_reclaimed,
                leaked_pages_before: scrub.pages_reclaimed,
                leaked_bytes_after: leak_after,
                stored_bytes_after,
                pages_marked: scrub.pages_marked,
                pages_scanned: scrub.pages_scanned,
                ingest_elapsed,
                scrub_elapsed,
            },
        ))
    }

    /// Verify `snapshot` against the run that produced `report`:
    /// surviving chunks must match the seed-`seed` stream exactly;
    /// holes must read as zeros — or as the dead writer's stream bytes
    /// when it died at [`CrashPoint::BeforeNotify`] (all leaves
    /// durable). Panics on mismatch.
    pub fn verify(snapshot: &Snapshot, seed: u64, report: &CrashReport) -> Result<()> {
        let upto = snapshot.len();
        for chunk in &report.chunks {
            if chunk.offset >= upto {
                break;
            }
            let n = chunk.len.min(upto - chunk.offset);
            let mut buf = vec![0u8; n as usize];
            snapshot.read_into(chunk.offset, &mut buf)?;
            match chunk.crashed {
                Some(point) if point != CrashPoint::BeforeNotify => {
                    assert!(
                        buf.iter().all(|&b| b == 0),
                        "hole at {} (crash {point:?}) must read as zeros",
                        chunk.offset
                    );
                }
                _ => {
                    let expected = AppendStream::expected(seed, chunk.offset, n);
                    assert_eq!(
                        &buf[..],
                        &expected[..],
                        "chunk at {} diverged from the stream",
                        chunk.offset
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::BlobError;

    fn store() -> BlobSeer {
        BlobSeer::builder()
            .page_size(1024)
            .data_providers(4)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(2)
            .lease_ttl_ticks(64)
            .build()
            .unwrap()
    }

    #[test]
    fn crashy_ingest_survives_and_verifies() {
        let s = store();
        let blob = s.create();
        let mut stream = AppendStream::new(42, 100, 3000);
        let report = CrashyIngest::new(4, 5).run(&s, &blob, &mut stream, 25).unwrap();
        assert_eq!(report.appends, 25);
        assert_eq!(report.crashed, 5);
        assert_eq!(s.stats().vm.aborted, 5);
        // Versions are dense: holes occupy version numbers.
        assert_eq!(report.chunks.last().unwrap().version, Version(25));
        // Every crashed version is a typed hole; every survivor reads.
        for chunk in &report.chunks {
            match chunk.crashed {
                Some(_) => assert!(matches!(
                    blob.snapshot(chunk.version),
                    Err(BlobError::VersionAborted { .. })
                )),
                None => {
                    blob.snapshot(chunk.version).unwrap();
                }
            }
        }
        let snap = blob.snapshot(report.last).unwrap();
        CrashyIngest::verify(&snap, 42, &report).unwrap();
    }

    #[test]
    fn run_then_scrub_reclaims_the_leak_and_verifies() {
        let s = store();
        let blob = s.create();
        let mut stream = AppendStream::new(11, 100, 3000);
        let (report, traj) =
            CrashyIngest::new(4, 5).run_then_scrub(&s, &blob, &mut stream, 25).unwrap();
        assert_eq!(report.crashed, 5);
        // Crashed writers leaked real storage, the scrub took it back,
        // and a second pass found the deployment leak-free.
        assert!(traj.leaked_bytes_before > 0, "crashes must leak");
        assert_eq!(traj.leaked_bytes_after, 0, "scrub must be complete");
        assert_eq!(traj.stored_bytes_after, traj.stored_bytes_before - traj.leaked_bytes_before);
        assert_eq!(s.stats().physical_bytes, traj.stored_bytes_after);
        // Surviving content is untouched.
        let snap = blob.snapshot(report.last).unwrap();
        CrashyIngest::verify(&snap, 11, &report).unwrap();
    }

    #[test]
    fn crash_every_one_keeps_the_blob_live() {
        let s = store();
        let blob = s.create();
        let mut stream = AppendStream::new(7, 50, 500);
        let report = CrashyIngest::new(2, 1).run(&s, &blob, &mut stream, 6).unwrap();
        assert_eq!(report.crashed, 6);
        assert_eq!(report.bytes, 0);
        assert_eq!(report.last, Version(0), "nothing survived");
        // The blob is not wedged: a fresh writer publishes immediately.
        let v = blob.append(&[1, 2, 3]).unwrap();
        blob.sync(v).unwrap();
        assert_eq!(v, Version(7));
    }

    #[test]
    #[should_panic]
    fn zero_crash_every_rejected() {
        CrashyIngest::new(1, 0);
    }
}
