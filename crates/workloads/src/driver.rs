//! Engine drivers: realistic clients wiring the workload generators to
//! the `blobseer` handle API.

use std::collections::VecDeque;

use blobseer::{Blob, Bytes, PendingWrite, Result, Snapshot, Version};

use crate::stream::AppendStream;

/// What one ingest run produced.
#[derive(Clone, Copy, Debug)]
pub struct IngestReport {
    /// Appends performed.
    pub appends: u64,
    /// Total payload bytes appended.
    pub bytes: u64,
    /// Newest version this run produced (published after the final
    /// internal `sync`).
    pub last: Version,
}

/// A pipelined ingest client: streams [`AppendStream`] chunks into a
/// blob via `append_pipelined`, keeping at most `depth` updates in
/// flight — the paper's Figure 4/5 overlap pattern, from one thread
/// (driven by `examples/concurrent_ingest.rs`).
///
/// `depth == 1` degenerates to the blocking client (every append waits
/// before the next is issued), which makes the same driver usable for
/// the baseline side of an A/B measurement.
#[derive(Clone, Copy, Debug)]
pub struct PipelinedIngest {
    depth: usize,
}

impl PipelinedIngest {
    /// Driver keeping up to `depth` appends in flight (≥ 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        PipelinedIngest { depth }
    }

    /// The configured pipeline depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Append `appends` chunks of `stream` to `blob`, waiting on the
    /// oldest in-flight update whenever the window is full, then wait
    /// for everything and `sync` (read-your-writes on return).
    pub fn run(
        &self,
        blob: &Blob,
        stream: &mut AppendStream,
        appends: u64,
    ) -> Result<IngestReport> {
        let mut inflight: VecDeque<PendingWrite> = VecDeque::with_capacity(self.depth);
        let mut bytes = 0u64;
        let mut last = Version(0);
        for _ in 0..appends {
            let chunk = stream.next_chunk();
            bytes += chunk.len() as u64;
            inflight.push_back(blob.append_pipelined(Bytes::from(chunk))?);
            if inflight.len() == self.depth {
                last = last.max(inflight.pop_front().expect("non-empty").wait()?);
            }
        }
        for pending in inflight {
            last = last.max(pending.wait()?);
        }
        blob.sync(last)?;
        Ok(IngestReport { appends, bytes, last })
    }

    /// Verify that `snapshot` holds exactly the first `snapshot.len()`
    /// bytes of the seed-`seed` stream (usable because stream content
    /// is a pure function of the byte offset). Panics on mismatch.
    pub fn verify(snapshot: &Snapshot, seed: u64) -> Result<()> {
        let len = snapshot.len();
        let mut buf = vec![0u8; 64 * 1024];
        let mut offset = 0;
        while offset < len {
            let n = (len - offset).min(buf.len() as u64);
            snapshot.read_into(offset, &mut buf[..n as usize])?;
            let expected = AppendStream::expected(seed, offset, n);
            assert_eq!(
                &buf[..n as usize],
                &expected[..],
                "stream content diverged at offset {offset}"
            );
            offset += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::BlobSeer;

    fn store() -> BlobSeer {
        BlobSeer::builder()
            .page_size(1024)
            .data_providers(4)
            .metadata_providers(2)
            .io_threads(2)
            .build()
            .unwrap()
    }

    #[test]
    fn pipelined_ingest_streams_and_verifies() {
        let blob = store().create();
        let mut stream = AppendStream::new(42, 100, 3000);
        let report = PipelinedIngest::new(4).run(&blob, &mut stream, 25).unwrap();
        assert_eq!(report.appends, 25);
        assert_eq!(report.bytes, stream.produced());
        assert_eq!(report.last, Version(25));
        let snap = blob.snapshot(report.last).unwrap();
        assert_eq!(snap.len(), report.bytes);
        PipelinedIngest::verify(&snap, 42).unwrap();
    }

    #[test]
    fn depth_one_is_the_blocking_client() {
        let blob = store().create();
        let mut stream = AppendStream::new(7, 50, 500);
        let report = PipelinedIngest::new(1).run(&blob, &mut stream, 10).unwrap();
        assert_eq!(report.last, Version(10));
        PipelinedIngest::verify(&blob.snapshot(report.last).unwrap(), 7).unwrap();
    }

    #[test]
    #[should_panic]
    fn zero_depth_rejected() {
        PipelinedIngest::new(0);
    }
}
