//! Deterministic append streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a stream of append payloads whose *content is a pure
/// function of the byte offset*, so any snapshot can be verified without
/// remembering what was written: byte `i` of the stream is
/// [`AppendStream::byte_at`]`(seed, i)`.
#[derive(Debug)]
pub struct AppendStream {
    seed: u64,
    min_len: usize,
    max_len: usize,
    rng: StdRng,
    produced: u64,
}

impl AppendStream {
    /// Stream with chunk sizes uniform in `[min_len, max_len]`.
    pub fn new(seed: u64, min_len: usize, max_len: usize) -> Self {
        assert!(min_len >= 1 && min_len <= max_len);
        AppendStream { seed, min_len, max_len, rng: StdRng::seed_from_u64(seed), produced: 0 }
    }

    /// Total bytes produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// The stream's content seed (for re-deriving expected bytes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic content byte at stream offset `i`.
    #[inline]
    pub fn byte_at(seed: u64, i: u64) -> u8 {
        // A cheap mix; only needs to be position-sensitive, not crypto.
        let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed.rotate_left((i % 63) as u32);
        (x ^ (x >> 17) ^ (x >> 43)) as u8
    }

    /// Produce the next chunk.
    pub fn next_chunk(&mut self) -> Vec<u8> {
        let len = self.rng.gen_range(self.min_len..=self.max_len);
        let start = self.produced;
        self.produced += len as u64;
        (0..len as u64).map(|i| Self::byte_at(self.seed, start + i)).collect()
    }

    /// The expected content of stream bytes `[offset, offset + len)` —
    /// what a read of a snapshot covering that range must return.
    pub fn expected(seed: u64, offset: u64, len: u64) -> Vec<u8> {
        (0..len).map(|i| Self::byte_at(seed, offset + i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_deterministic() {
        let mut a = AppendStream::new(7, 10, 100);
        let mut b = AppendStream::new(7, 10, 100);
        for _ in 0..20 {
            assert_eq!(a.next_chunk(), b.next_chunk());
        }
        assert_eq!(a.produced(), b.produced());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = AppendStream::new(1, 50, 50);
        let mut b = AppendStream::new(2, 50, 50);
        assert_ne!(a.next_chunk(), b.next_chunk());
    }

    #[test]
    fn chunks_match_expected_view() {
        let mut s = AppendStream::new(42, 5, 64);
        let mut all = Vec::new();
        for _ in 0..50 {
            all.extend(s.next_chunk());
        }
        assert_eq!(all.len() as u64, s.produced());
        // Any window of the concatenation equals `expected`.
        for (off, len) in [(0u64, 10u64), (13, 77), (100, 1), (all.len() as u64 - 5, 5)] {
            assert_eq!(
                AppendStream::expected(42, off, len),
                &all[off as usize..(off + len) as usize]
            );
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let mut s = AppendStream::new(0, 3, 9);
        for _ in 0..100 {
            let c = s.next_chunk();
            assert!(c.len() >= 3 && c.len() <= 9);
        }
    }
}
