//! A provider-fault-injecting ingest driver: pipelined-style appends
//! while data providers go offline mid-update and page copies rot at
//! rest, driven through the engine's write-path failover (PR 7).
//!
//! [`FlakyProviders`] owns a set of [`FaultPlan`]-wrapped memory
//! stores — hand [`FlakyProviders::page_stores`] to
//! [`blobseer::Builder::page_stores`] — and streams
//! [`crate::AppendStream`] chunks like [`crate::PipelinedIngest`],
//! except that every `offline_every`-th append runs with a rotating
//! victim provider offline (write-path failover must re-place its
//! copies) and every `corrupt_every`-th append is followed by a bit
//! flip in one stored copy at rest (reads must treat it as a miss and
//! fall back; repair must replace it). **No update may fail**: with
//! replication ≥ 2 and one fault at a time, failover always finds a
//! live provider. Content stays fully verifiable against the
//! deterministic stream, and [`FlakyProviders::repair`] converges the
//! degraded deployment back to full replication.

use std::sync::Arc;

use blobseer::{
    Blob, BlobSeer, FaultPlan, MemoryPageStore, PageStore, RepairReport, Result, Snapshot, Version,
};

use crate::stream::AppendStream;

/// What a fault-injected ingest run produced and endured.
#[derive(Clone, Copy, Debug)]
pub struct FlakyReport {
    /// Appends issued — all of them succeeded, or `run` errored.
    pub appends: u64,
    /// Payload bytes appended.
    pub bytes: u64,
    /// Appends executed with a provider offline.
    pub offline_windows: u64,
    /// Stored page copies bit-flipped at rest.
    pub pages_corrupted: u64,
    /// Write-path failovers the engine performed during the run.
    pub failovers: u64,
    /// Newest published version (published after the final `sync`).
    pub last: Version,
}

/// Fault-injecting ingest over [`FaultPlan`]-wrapped providers; see
/// the module docs.
#[derive(Debug)]
pub struct FlakyProviders {
    plans: Vec<Arc<FaultPlan>>,
    offline_every: u64,
    corrupt_every: u64,
}

impl FlakyProviders {
    /// `providers` memory stores behind deterministic fault plans
    /// (seeded from `seed`). Every `offline_every`-th append runs with
    /// a rotating victim offline; every `corrupt_every`-th append is
    /// followed by one at-rest bit flip on a rotating victim. Either
    /// knob may be 0 to disable that fault family.
    pub fn new(providers: usize, seed: u64, offline_every: u64, corrupt_every: u64) -> Self {
        assert!(providers >= 2, "failover needs somewhere to fail over to");
        let plans = (0..providers)
            .map(|i| {
                Arc::new(FaultPlan::with_seed(
                    Arc::new(MemoryPageStore::new()),
                    seed.wrapping_add(i as u64),
                ))
            })
            .collect();
        FlakyProviders { plans, offline_every, corrupt_every }
    }

    /// The wrapped stores, in provider order — pass to
    /// [`blobseer::Builder::page_stores`] (with `replication ≥ 2`).
    pub fn page_stores(&self) -> Vec<Arc<dyn PageStore>> {
        self.plans.iter().map(|p| Arc::clone(p) as Arc<dyn PageStore>).collect()
    }

    /// The fault plans, for callers that want to inject on their own.
    pub fn plans(&self) -> &[Arc<FaultPlan>] {
        &self.plans
    }

    /// Append `appends` chunks of `stream` to `blob` under fault
    /// injection (module docs). Every append must succeed; the run
    /// ends with every provider back online and the newest version
    /// synced.
    pub fn run(
        &self,
        store: &BlobSeer,
        blob: &Blob,
        stream: &mut AppendStream,
        appends: u64,
    ) -> Result<FlakyReport> {
        let failovers_before = store.stats_snapshot().failovers_total;
        let (mut bytes, mut offline_windows, mut pages_corrupted) = (0u64, 0u64, 0u64);
        // Never rot two copies of the same page: the driver injects
        // single faults, which replication ≥ 2 must absorb losslessly.
        // (Two rotted copies of one page is a double fault — real data
        // loss, the `pages_unrepairable` case, not this workload.)
        let mut rotted: std::collections::HashSet<blobseer::PageId> = Default::default();
        let mut last = Version(0);
        for i in 1..=appends {
            let offline = self.offline_every > 0 && i.is_multiple_of(self.offline_every);
            if offline {
                let victim = &self.plans[(i / self.offline_every) as usize % self.plans.len()];
                victim.set_offline(true);
                offline_windows += 1;
                let outcome = self.append_one(blob, stream, &mut bytes);
                victim.set_offline(false);
                last = last.max(outcome?);
            } else {
                last = last.max(self.append_one(blob, stream, &mut bytes)?);
            }
            if self.corrupt_every > 0 && i.is_multiple_of(self.corrupt_every) {
                // Rot one stored copy at rest: the *next* read of it
                // must fail its checksum and fall back to a replica.
                let victim = &self.plans[(i / self.corrupt_every) as usize % self.plans.len()];
                let fresh = victim
                    .scan()?
                    .into_iter()
                    .map(|(pid, _)| pid)
                    .find(|pid| !rotted.contains(pid));
                if let Some(pid) = fresh {
                    if victim.corrupt_stored_page(pid)? {
                        rotted.insert(pid);
                        pages_corrupted += 1;
                    }
                }
            }
        }
        if last > Version(0) {
            blob.sync(last)?;
        }
        Ok(FlakyReport {
            appends,
            bytes,
            offline_windows,
            pages_corrupted,
            failovers: store.stats_snapshot().failovers_total - failovers_before,
            last,
        })
    }

    fn append_one(
        &self,
        blob: &Blob,
        stream: &mut AppendStream,
        bytes: &mut u64,
    ) -> Result<Version> {
        let chunk = stream.next_chunk();
        *bytes += chunk.len() as u64;
        blob.append(&chunk)
    }

    /// Converge the deployment back to full replication: bring every
    /// provider online and run [`BlobSeer::repair_replicas`].
    pub fn repair(&self, store: &BlobSeer) -> Result<RepairReport> {
        for plan in &self.plans {
            plan.set_offline(false);
        }
        store.repair_replicas()
    }

    /// Verify `snapshot` against the seed-`seed` stream: every byte of
    /// a fault-injected run must read back exactly — faults never
    /// surface as data divergence. Panics on mismatch.
    pub fn verify(snapshot: &Snapshot, seed: u64) -> Result<()> {
        let len = snapshot.len();
        let mut buf = vec![0u8; len as usize];
        snapshot.read_into(0, &mut buf)?;
        let expected = AppendStream::expected(seed, 0, len);
        assert_eq!(buf, expected, "fault-injected content diverged from the stream");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deploy(flaky: &FlakyProviders) -> BlobSeer {
        BlobSeer::builder()
            .page_size(256)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(1)
            .replication(2)
            .page_stores(flaky.page_stores())
            .build()
            .unwrap()
    }

    #[test]
    fn flaky_run_survives_verifies_and_repairs() {
        let flaky = FlakyProviders::new(4, 99, 3, 4);
        let store = deploy(&flaky);
        let blob = store.create();
        let mut stream = AppendStream::new(99, 64, 700);
        let report = flaky.run(&store, &blob, &mut stream, 24).unwrap();
        assert_eq!(report.appends, 24);
        assert_eq!(report.offline_windows, 8);
        assert!(report.pages_corrupted > 0);
        assert!(report.failovers > 0, "offline windows must force failovers");

        // The degraded deployment serves pristine bytes.
        let snap = blob.snapshot(report.last).unwrap();
        FlakyProviders::verify(&snap, 99).unwrap();

        // Repair converges: afterwards ANY single provider may die
        // without losing a byte, and a second pass is a no-op.
        let repair = flaky.repair(&store).unwrap();
        assert_eq!(repair.pages_unrepairable, 0);
        assert!(repair.copies_repaired > 0);
        for plan in flaky.plans() {
            plan.set_offline(true);
            let snap = blob.snapshot(report.last).unwrap();
            FlakyProviders::verify(&snap, 99).unwrap();
            plan.set_offline(false);
        }
        let second = flaky.repair(&store).unwrap();
        assert_eq!(second.copies_repaired, 0);
        assert_eq!(second.strays_trimmed, 0);
    }

    #[test]
    fn fault_families_can_be_disabled() {
        let flaky = FlakyProviders::new(3, 5, 0, 0);
        let store = deploy(&flaky);
        let blob = store.create();
        let mut stream = AppendStream::new(5, 32, 200);
        let report = flaky.run(&store, &blob, &mut stream, 6).unwrap();
        assert_eq!(report.offline_windows, 0);
        assert_eq!(report.pages_corrupted, 0);
        assert_eq!(report.failovers, 0);
        let snap = blob.snapshot(report.last).unwrap();
        FlakyProviders::verify(&snap, 5).unwrap();
    }
}
