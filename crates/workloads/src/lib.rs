//! Workload generators for BlobSeer.
//!
//! Three families, mirroring the paper:
//!
//! * [`AppendStream`] — continuously growing data (the paper's core
//!   motivation: "data streams generated and updated by continuously
//!   running applications"), with deterministic, verifiable content;
//! * [`DisjointChunks`] — the Figure 2(b) access pattern: a set of
//!   workers reading disjoint parts of one snapshot;
//! * [`photo`] — the §2.2 usage scenario: a photo-processing service
//!   appending pictures to one huge blob from many sites, running
//!   map-reduce style statistics over snapshots, and overwriting
//!   pictures in place (producing new versions) after enhancement.

pub mod photo;

mod chunks;
mod stream;

pub use chunks::DisjointChunks;
pub use stream::AppendStream;
