//! Workload generators for BlobSeer.
//!
//! Three families, mirroring the paper:
//!
//! * [`AppendStream`] — continuously growing data (the paper's core
//!   motivation: "data streams generated and updated by continuously
//!   running applications"), with deterministic, verifiable content;
//! * [`DisjointChunks`] — the Figure 2(b) access pattern: a set of
//!   workers reading disjoint parts of one snapshot;
//! * [`photo`] — the §2.2 usage scenario: a photo-processing service
//!   appending pictures to one huge blob from many sites, running
//!   map-reduce style statistics over snapshots, and overwriting
//!   pictures in place (producing new versions) after enhancement.
//!
//! Plus [`PipelinedIngest`], a driver wiring [`AppendStream`] to the
//! engine's non-blocking `append_pipelined` with a bounded in-flight
//! window — the realistic pipelined client driven by
//! `examples/concurrent_ingest.rs`. (The bench trajectory's
//! `pipelined_append` hand-rolls the same window over one prebuilt
//! buffer instead, so its A/B isolates the write path from chunk
//! generation.) [`CrashyIngest`] is the same client under failure
//! injection: every k-th writer dies mid-update and the engine's
//! writer leases recover the blob. [`FlakyProviders`] injects faults
//! on the *other* side of the wire — providers go offline mid-update
//! and stored copies rot at rest — and drives write-path failover,
//! checksum fallback reads, and the replica repairer (PR 7).
//! [`MultiTenantIngest`] is the shared-deployment client (PR 8):
//! zipfian-skewed, bursty appends from many tenants, retrying
//! throttled chunks so published content is independent of QoS — the
//! noisy-neighbour traffic `Builder::qos` admission control exists to
//! contain.

pub mod photo;

mod chunks;
mod crashy;
mod driver;
mod elastic;
mod flaky;
mod stream;
mod tenants;

pub use chunks::DisjointChunks;
pub use crashy::{ChunkRecord, CrashReport, CrashyIngest, ScrubTrajectory};
pub use driver::{IngestReport, PipelinedIngest};
pub use elastic::{ElasticIngest, ElasticReport};
pub use flaky::{FlakyProviders, FlakyReport};
pub use stream::AppendStream;
pub use tenants::{MultiTenantIngest, MultiTenantReport, TenantIngestReport};
