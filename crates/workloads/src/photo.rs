//! The paper's §2.2 usage scenario: a photo-processing service.
//!
//! "Pictures are APPEND'ed concurrently to the blob from multiple sites
//! serving the users, while a recent version of the blob is processed
//! at regular intervals: a set of workers READ disjoint parts of the
//! blob, identify the set of pictures contained in their assigned part,
//! extract from each picture the camera type and compute a contrast
//! quality coefficient, and finally aggregate the contrast quality for
//! each camera type."
//!
//! Pictures are fixed-size records (a blob-friendly framing: the paper
//! notes databases are "fine-tuned for fixed-sized records" and blobs
//! are not — we use fixed records only so that *disjoint worker ranges
//! align to record boundaries*, as the map-reduce split requires).
//! Each record carries a camera id, per-pixel data, and a `processed`
//! flag used by the enhancement pass ("overwriting the picture with its
//! processed version saves computation time when processing future blob
//! versions").

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

/// Serialized size of one photo record.
pub const RECORD_BYTES: usize = 4096;
const MAGIC: u32 = 0xB10B_F070;
const HEADER_BYTES: usize = 16;

/// One picture as stored in the blob.
#[derive(Clone, Debug, PartialEq)]
pub struct Photo {
    /// Camera model identifier (the map-reduce key).
    pub camera: u16,
    /// Whether the enhancement pass has processed this picture.
    pub processed: bool,
    /// Pixel payload (fixed size: `RECORD_BYTES - HEADER_BYTES`).
    pub pixels: Vec<u8>,
}

impl Photo {
    /// Generate a random photo (seeded).
    pub fn random(rng: &mut StdRng, cameras: u16) -> Photo {
        let mut pixels = vec![0u8; RECORD_BYTES - HEADER_BYTES];
        rng.fill(&mut pixels[..]);
        Photo { camera: rng.gen_range(0..cameras), processed: false, pixels }
    }

    /// Serialize into a fixed-size record.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(self.pixels.len(), RECORD_BYTES - HEADER_BYTES);
        let mut out = Vec::with_capacity(RECORD_BYTES);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.camera.to_le_bytes());
        out.push(u8::from(self.processed));
        out.push(0); // reserved
        out.extend_from_slice(&(self.pixels.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // reserved
        out.extend_from_slice(&self.pixels);
        debug_assert_eq!(out.len(), RECORD_BYTES);
        out
    }

    /// Parse a record; `None` on bad magic or truncation.
    pub fn decode(buf: &[u8]) -> Option<Photo> {
        if buf.len() < RECORD_BYTES {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != MAGIC {
            return None;
        }
        let camera = u16::from_le_bytes(buf[4..6].try_into().ok()?);
        let processed = buf[6] != 0;
        let len = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
        if len != RECORD_BYTES - HEADER_BYTES {
            return None;
        }
        Some(Photo { camera, processed, pixels: buf[HEADER_BYTES..RECORD_BYTES].to_vec() })
    }

    /// The "contrast quality coefficient" the paper's map phase
    /// computes: here, the mean absolute deviation of pixel intensity.
    pub fn contrast(&self) -> f64 {
        let mean =
            self.pixels.iter().map(|&b| f64::from(b)).sum::<f64>() / self.pixels.len() as f64;
        self.pixels.iter().map(|&b| (f64::from(b) - mean).abs()).sum::<f64>()
            / self.pixels.len() as f64
    }

    /// The enhancement pass: a deterministic "sharpen" that stretches
    /// pixel values and marks the record processed.
    pub fn enhance(&self) -> Photo {
        let pixels = self
            .pixels
            .iter()
            .map(|&b| {
                let v = (f64::from(b) - 128.0) * 1.25 + 128.0;
                v.clamp(0.0, 255.0) as u8
            })
            .collect();
        Photo { camera: self.camera, processed: true, pixels }
    }
}

/// The map phase over one worker's byte range: parse the records in
/// `chunk` (which must be record-aligned) and accumulate per-camera
/// statistics.
pub fn map_chunk(chunk: &[u8]) -> CameraStats {
    assert_eq!(chunk.len() % RECORD_BYTES, 0, "worker ranges are record-aligned");
    let mut stats = CameraStats::default();
    for rec in chunk.chunks_exact(RECORD_BYTES) {
        if let Some(photo) = Photo::decode(rec) {
            stats.add(photo.camera, photo.contrast());
        }
    }
    stats
}

/// Per-camera aggregates: the reduce phase merges these.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CameraStats {
    sums: BTreeMap<u16, (u64, f64)>,
}

impl CameraStats {
    /// Record one photo's contrast.
    pub fn add(&mut self, camera: u16, contrast: f64) {
        let e = self.sums.entry(camera).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += contrast;
    }

    /// The reduce phase: merge another worker's stats in.
    pub fn merge(&mut self, other: &CameraStats) {
        for (&camera, &(n, sum)) in &other.sums {
            let e = self.sums.entry(camera).or_insert((0, 0.0));
            e.0 += n;
            e.1 += sum;
        }
    }

    /// Photos counted for `camera`.
    pub fn count(&self, camera: u16) -> u64 {
        self.sums.get(&camera).map_or(0, |e| e.0)
    }

    /// Total photos counted.
    pub fn total(&self) -> u64 {
        self.sums.values().map(|e| e.0).sum()
    }

    /// "The average contrast quality for each camera type" (§2.2).
    pub fn average_contrast(&self, camera: u16) -> Option<f64> {
        self.sums.get(&camera).map(|&(n, sum)| sum / n as f64)
    }

    /// Iterate `(camera, count, avg_contrast)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (u16, u64, f64)> + '_ {
        self.sums.iter().map(|(&c, &(n, sum))| (c, n, sum / n as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let p = Photo::random(&mut r, 5);
            let enc = p.encode();
            assert_eq!(enc.len(), RECORD_BYTES);
            assert_eq!(Photo::decode(&enc), Some(p));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Photo::decode(&[0u8; RECORD_BYTES]), None);
        assert_eq!(Photo::decode(&[0u8; 10]), None);
    }

    #[test]
    fn enhance_marks_processed_and_stretches() {
        let mut r = rng();
        let p = Photo::random(&mut r, 3);
        let e = p.enhance();
        assert!(e.processed);
        assert_eq!(e.camera, p.camera);
        assert!(e.contrast() >= p.contrast(), "sharpening must not reduce contrast");
        // Double enhancement stays within pixel bounds and keeps the
        // processed flag.
        let e2 = e.enhance();
        assert!(e2.processed);
        assert_eq!(e2.pixels.len(), e.pixels.len());
    }

    #[test]
    fn map_reduce_counts_everything() {
        let mut r = rng();
        let photos: Vec<Photo> = (0..40).map(|_| Photo::random(&mut r, 4)).collect();
        let mut blob = Vec::new();
        for p in &photos {
            blob.extend(p.encode());
        }
        // Two workers on disjoint halves.
        let half = blob.len() / 2;
        let mut a = map_chunk(&blob[..half]);
        let b = map_chunk(&blob[half..]);
        a.merge(&b);
        assert_eq!(a.total(), 40);
        for cam in 0..4 {
            let expected = photos.iter().filter(|p| p.camera == cam).count() as u64;
            assert_eq!(a.count(cam), expected, "camera {cam}");
        }
    }

    #[test]
    fn average_contrast_is_a_mean() {
        let mut s = CameraStats::default();
        s.add(1, 10.0);
        s.add(1, 20.0);
        assert_eq!(s.average_contrast(1), Some(15.0));
        assert_eq!(s.average_contrast(2), None);
        let rows: Vec<_> = s.rows().collect();
        assert_eq!(rows, vec![(1, 2, 15.0)]);
    }
}
