//! Property tests of the DHT: model conformance and placement facts.

use std::collections::HashMap;

use blobseer_dht::{static_bucket, Dht};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Remove(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200, any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
            (0u64..200).prop_map(Op::Get),
            (0u64..200).prop_map(Op::Remove),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn conforms_to_hashmap_model(ops in ops(), buckets in 1usize..40) {
        let dht: Dht<u64, u64> = Dht::new(buckets);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    dht.put(k, v);
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(dht.get(&k), model.get(&k).copied());
                }
                Op::Remove(k) => {
                    prop_assert_eq!(dht.remove(&k), model.remove(&k));
                }
            }
            prop_assert_eq!(dht.len(), model.len());
        }
        prop_assert_eq!(dht.is_empty(), model.is_empty());
    }

    #[test]
    fn placement_is_stable_and_in_range(key in any::<(u64, u64)>(), n in 1usize..500) {
        let a = static_bucket(&key, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, static_bucket(&key, n), "same key, same bucket");
    }

    #[test]
    fn bucket_of_matches_static_distribution(keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let dht: Dht<u64, u64> = Dht::new(7);
        for k in keys {
            prop_assert_eq!(dht.bucket_of(&k), static_bucket(&k, 7));
        }
    }

    #[test]
    fn stats_counters_are_exact(puts in 1u64..100, gets in 1u64..100) {
        let dht: Dht<u64, u64> = Dht::new(3);
        for k in 0..puts {
            dht.put(k, k);
        }
        for k in 0..gets {
            let _ = dht.get(&(k % puts));
        }
        let s = dht.stats();
        prop_assert_eq!(s.total_puts, puts);
        prop_assert_eq!(s.total_gets, gets);
        prop_assert_eq!(s.total_entries as u64, puts);
    }
}
