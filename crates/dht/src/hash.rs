//! Deterministic hashing and the static key-to-node distribution.
//!
//! The paper's metadata provider is "a custom DHT based on [a] simple
//! static distribution scheme" (§5). We distribute keys over `n` buckets
//! (one bucket = one metadata provider) with a fixed, seed-free FNV-1a
//! hash so that placement is **deterministic across runs and processes**
//! — the simulator (`blobseer-sim`) recomputes the same placement to
//! model per-provider contention, so determinism here is load-bearing.

use std::hash::{Hash, Hasher};

/// FNV-1a, 64-bit. Deterministic, allocation-free, good enough
/// distribution for tree-node keys.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// Deterministic 64-bit hash of any `Hash` value.
#[inline]
pub fn fnv_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = Fnv1a::new();
    key.hash(&mut h);
    h.finish()
}

/// Static distribution: the bucket (metadata provider) responsible for
/// `key` in a deployment of `n` buckets.
///
/// A Fibonacci multiplicative mix is applied on top of FNV so that keys
/// differing only in low bits (consecutive tree positions) still spread
/// evenly when `n` is far from a power of two.
#[inline]
pub fn static_bucket<K: Hash + ?Sized>(key: &K, n: usize) -> usize {
    assert!(n > 0, "bucket count must be positive");
    let mixed = fnv_hash(key).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Multiply-shift maps uniformly onto 0..n without modulo bias.
    ((u128::from(mixed) * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fnv_hash(&(1u64, 2u64)), fnv_hash(&(1u64, 2u64)));
        assert_ne!(fnv_hash(&1u64), fnv_hash(&2u64));
    }

    #[test]
    fn empty_input_hashes_to_offset_basis() {
        let mut h = Fnv1a::new();
        h.write(&[]);
        assert_eq!(h.finish(), FNV_OFFSET);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn buckets_in_range() {
        for n in [1usize, 2, 3, 50, 173, 175] {
            for k in 0u64..1000 {
                assert!(static_bucket(&k, n) < n);
            }
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        // 173 buckets (the paper's co-deployment count) and 100k keys:
        // every bucket should land within ±50% of the mean.
        let n = 173;
        let keys = 100_000u64;
        let mut counts = vec![0usize; n];
        for k in 0..keys {
            counts[static_bucket(&(k, k * 7 + 1), n)] += 1;
        }
        let mean = keys as f64 / n as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.5 && (c as f64) < mean * 1.5,
                "bucket {b} has {c} keys, mean {mean}"
            );
        }
    }

    #[test]
    fn single_bucket_takes_everything() {
        for k in 0u64..100 {
            assert_eq!(static_bucket(&k, 1), 0);
        }
    }
}
