//! In-process DHT: the metadata-provider substrate.
//!
//! The paper stores segment-tree nodes "on the metadata provider in a
//! distributed way, using a simple DHT" (§4.1), implemented as "a custom
//! DHT based on \[a\] simple static distribution scheme" (§5). This crate
//! reproduces that component: a sharded key/value store where each
//! shard ("bucket") models one metadata provider, keys are placed by a
//! deterministic static hash, and — crucially — readers may **block**
//! until a key appears.
//!
//! Blocking gets are the transport-level mechanism behind the paper's
//! writer-concurrency protocol (§4.2): writer `C2` may link to tree
//! nodes that the concurrent, lower-versioned writer `C1` has not yet
//! stored. `C2`'s *readers* (and `C2` itself while completing unaligned
//! boundary pages) simply wait for those nodes to materialise. Waiting
//! is always on strictly lower versions, so it cannot deadlock.
//!
//! Per-bucket access statistics are kept so that benches can observe
//! metadata hotspots (e.g. every reader of a snapshot fetches the same
//! root node — the paper's Figure 2(b) degradation).
//!
//! ## Locking
//!
//! Each bucket is read-optimized: the map lives under a
//! [`parking_lot::RwLock`], so the common path — `get` on a published
//! (hence present) node — takes a shared read guard and runs fully in
//! parallel with other readers. This matters because metadata reads are
//! massively read-dominated and hot (every reader of a snapshot starts
//! at the same root node). Writes (`put`/`remove`/`retain`) take the
//! write guard.
//!
//! Blocking `get_wait`ers park on **per-key wait queues** under a
//! separate wait mutex, and an atomic per-bucket waiter count gates the
//! wakeup path: an uncontended `put` (no parked readers — by far the
//! usual case) never touches the wait mutex or any condvar at all, and
//! a contended `put` notifies only the condvar of *its own key* — a
//! put can no longer spuriously wake waiters parked on other keys of
//! the same bucket. The waiter registers its count *before* re-checking
//! the map under the wait mutex, and the re-check read-lock acquisition
//! synchronizes with the `put`'s write-lock release, so a `put` that
//! the waiter missed is guaranteed to observe a non-zero waiter count
//! and deliver the wakeup (no lost notifications). Per-bucket stats are
//! relaxed atomics on their own cacheline so counter traffic does not
//! dirty the lock's line.

mod hash;
mod stats;

pub use hash::{fnv_hash, static_bucket, Fnv1a};
pub use stats::{BucketStats, DhtStats};

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blobseer_metrics::{Timer, WindowedHistogram};
use parking_lot::{Condvar, Mutex, RwLock};

/// Errors from blocking DHT operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtError {
    /// `get_wait` exceeded its deadline without the key appearing.
    WaitTimeout,
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::WaitTimeout => write!(f, "timed out waiting for DHT key"),
        }
    }
}

impl std::error::Error for DhtError {}

/// Parked waiters for one key: their private condvar plus a count that
/// keeps the queue entry alive while anyone is parked. Guarded by the
/// bucket's wait mutex.
struct KeyQueue {
    cv: Arc<Condvar>,
    parked: usize,
}

struct Bucket<K, V> {
    /// The store proper. Readers share; only `put`/`remove`/`retain`
    /// take the write guard.
    map: RwLock<HashMap<K, V>>,
    /// Slow-path parking lot for `get_wait`: per-key wait queues, held
    /// only around condvar waits and (when `waiters > 0`) the lookup of
    /// which key — if any — to notify. Never held while a writer holds
    /// the map's write guard.
    wait_queues: Mutex<HashMap<K, KeyQueue>>,
    /// Number of `get_wait`ers registered on this bucket. `put` skips
    /// the wait mutex entirely while this is zero.
    waiters: AtomicUsize,
    stats: stats::BucketCounters,
}

impl<K, V> Bucket<K, V> {
    fn new() -> Self {
        Bucket {
            map: RwLock::new(HashMap::new()),
            wait_queues: Mutex::new(HashMap::new()),
            waiters: AtomicUsize::new(0),
            stats: stats::BucketCounters::new(),
        }
    }
}

/// A sharded, in-process key/value store with static key distribution.
///
/// One bucket models one metadata provider node. All operations are
/// thread-safe; `put` wakes any `get_wait`ers for that bucket.
pub struct Dht<K, V> {
    buckets: Vec<Bucket<K, V>>,
    /// Block-time distribution of `get_wait` calls that actually
    /// parked. Always recorded (never gated on a config flag): a
    /// blocking metadata wait is milliseconds-scale, so the one timer
    /// read it costs is noise — and the p999 of this histogram is the
    /// single best indicator of writer-pipeline stalls
    /// (`docs/OBSERVABILITY.md`).
    wait_latency: Arc<WindowedHistogram>,
}

impl<K, V> Dht<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    /// Create a DHT spread over `buckets` metadata providers.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "DHT needs at least one bucket");
        Dht {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            wait_latency: Arc::new(WindowedHistogram::new()),
        }
    }

    /// The shared block-time histogram of [`Dht::get_wait`] (nanoseconds
    /// per blocking call). Handed to a metrics registry so the store
    /// can expose `dht_get_wait` percentiles.
    pub fn wait_latency(&self) -> Arc<WindowedHistogram> {
        Arc::clone(&self.wait_latency)
    }

    /// Number of buckets (metadata providers).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket responsible for `key` under the static distribution.
    #[inline]
    pub fn bucket_of(&self, key: &K) -> usize {
        static_bucket(key, self.buckets.len())
    }

    /// Store a value; overwrites silently (tree nodes are immutable in
    /// BlobSeer, so an overwrite only happens when a writer retries and
    /// re-stores identical content). Wakes readers blocked on *this
    /// key* — touching no locks at all while nobody is parked on the
    /// bucket, and no condvar unless someone is parked on this key.
    pub fn put(&self, key: K, value: V) {
        let b = &self.buckets[self.bucket_of(&key)];
        b.stats.record_put();
        b.map.write().insert(key.clone(), value);
        if b.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the wait lock serializes with a waiter that is
            // between its map re-check and its park, so this notify
            // cannot fall into that window and be lost. Only this
            // key's queue is woken; waiters on other keys sleep on.
            if let Some(q) = b.wait_queues.lock().get(&key) {
                q.cv.notify_all();
            }
        }
    }

    /// Store a value only if the key is absent; returns `true` when
    /// this call inserted. The write-fencing primitive behind version
    /// abort repair: a repair must fill in the nodes a dead writer
    /// never stored without clobbering the ones it did (readers may
    /// already have woven content from them), and a zombie writer's
    /// late stores must lose to an already-placed repair node. Wakes
    /// readers parked on the key only when it actually inserted.
    pub fn put_new(&self, key: K, value: V) -> bool {
        let b = &self.buckets[self.bucket_of(&key)];
        b.stats.record_put();
        let inserted = {
            let mut map = b.map.write();
            match map.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(value);
                    true
                }
            }
        };
        if inserted && b.waiters.load(Ordering::SeqCst) > 0 {
            if let Some(q) = b.wait_queues.lock().get(&key) {
                q.cv.notify_all();
            }
        }
        inserted
    }

    /// Fetch a value if present. Takes only a shared read guard:
    /// concurrent `get`s of published metadata never serialize on the
    /// bucket.
    pub fn get(&self, key: &K) -> Option<V> {
        let b = &self.buckets[self.bucket_of(key)];
        b.stats.record_get();
        b.map.read().get(key).cloned()
    }

    /// Fetch a value, blocking until it appears or `timeout` elapses.
    ///
    /// This is how a reader of still-being-written metadata waits for
    /// the lower-versioned writer to finish (§4.2).
    pub fn get_wait(&self, key: &K, timeout: Duration) -> Result<V, DhtError> {
        let b = &self.buckets[self.bucket_of(key)];
        b.stats.record_get();
        // Fast path: present already — identical cost to `get`.
        if let Some(v) = b.map.read().get(key) {
            return Ok(v.clone());
        }
        let deadline = Instant::now() + timeout;
        let mut queues = b.wait_queues.lock();
        // Register on this key's queue *before* the re-check below, so
        // a racing `put` either becomes visible to the re-check or sees
        // our waiter count and notifies our queue.
        b.waiters.fetch_add(1, Ordering::SeqCst);
        let cv = {
            let q = queues
                .entry(key.clone())
                .or_insert_with(|| KeyQueue { cv: Arc::new(Condvar::new()), parked: 0 });
            q.parked += 1;
            Arc::clone(&q.cv)
        };
        let mut block_timer: Option<Timer> = None;
        let result = loop {
            if let Some(v) = b.map.read().get(key) {
                break Ok(v.clone());
            }
            if block_timer.is_none() {
                // Exactly one recorded wait per blocking call, however
                // many (possibly spurious) wakeups follow. The timer
                // spans first park to loop exit, so its histogram
                // sample counts the whole block including re-parks.
                block_timer = Some(Timer::start());
                b.stats.record_wait();
            }
            if cv.wait_until(&mut queues, deadline).timed_out() {
                break match b.map.read().get(key) {
                    Some(v) => Ok(v.clone()),
                    None => Err(DhtError::WaitTimeout),
                };
            }
        };
        // Deregister; drop the key's queue once the last waiter leaves.
        if let Some(q) = queues.get_mut(key) {
            q.parked -= 1;
            if q.parked == 0 {
                queues.remove(key);
            }
        }
        b.waiters.fetch_sub(1, Ordering::SeqCst);
        if let Some(timer) = block_timer {
            timer.stop(&self.wait_latency);
        }
        result
    }

    /// [`Dht::get_wait`], sliced: park in `slice`-sized chunks and run
    /// `between` after every slice that expires without the key
    /// appearing — the **self-help hook**. The engine hangs a lease
    /// sweep on it, so a reader blocked on a *dead* writer's missing
    /// node recovers in roughly one slice (sweep → abort repair fills
    /// the node) instead of burning the whole `timeout` and failing.
    ///
    /// `between` runs with the bucket's wait mutex **released** — it
    /// may do arbitrary work, including `put`/`put_new` on this very
    /// DHT. Our registration stays parked across the gap (the key's
    /// queue entry cannot be dropped), and a notify landing in the gap
    /// is not lost: the loop re-checks the map after re-locking.
    ///
    /// Metrics match `get_wait` exactly: one `record_wait` and one
    /// block-time sample per call that parked, spanning first park to
    /// exit — hook time included, because the caller *was* blocked for
    /// all of it. A zero `slice` (or one at/above `timeout`) degrades
    /// to plain `get_wait`.
    pub fn get_wait_sliced(
        &self,
        key: &K,
        timeout: Duration,
        slice: Duration,
        mut between: impl FnMut(),
    ) -> Result<V, DhtError> {
        if slice.is_zero() || slice >= timeout {
            return self.get_wait(key, timeout);
        }
        let b = &self.buckets[self.bucket_of(key)];
        b.stats.record_get();
        if let Some(v) = b.map.read().get(key) {
            return Ok(v.clone());
        }
        let deadline = Instant::now() + timeout;
        let mut queues = b.wait_queues.lock();
        b.waiters.fetch_add(1, Ordering::SeqCst);
        let cv = {
            let q = queues
                .entry(key.clone())
                .or_insert_with(|| KeyQueue { cv: Arc::new(Condvar::new()), parked: 0 });
            q.parked += 1;
            Arc::clone(&q.cv)
        };
        let mut block_timer: Option<Timer> = None;
        let result = loop {
            if let Some(v) = b.map.read().get(key) {
                break Ok(v.clone());
            }
            if block_timer.is_none() {
                block_timer = Some(Timer::start());
                b.stats.record_wait();
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(DhtError::WaitTimeout);
            }
            let slice_deadline = std::cmp::min(now + slice, deadline);
            if cv.wait_until(&mut queues, slice_deadline).timed_out() {
                // Slice expired. The key may have landed between the
                // timeout and our relock — prefer it over self-help.
                if let Some(v) = b.map.read().get(key) {
                    break Ok(v.clone());
                }
                if Instant::now() >= deadline {
                    break Err(DhtError::WaitTimeout);
                }
                drop(queues);
                between();
                queues = b.wait_queues.lock();
            }
        };
        if let Some(q) = queues.get_mut(key) {
            q.parked -= 1;
            if q.parked == 0 {
                queues.remove(key);
            }
        }
        b.waiters.fetch_sub(1, Ordering::SeqCst);
        if let Some(timer) = block_timer {
            timer.stop(&self.wait_latency);
        }
        result
    }

    /// `true` when the key is currently stored.
    pub fn contains(&self, key: &K) -> bool {
        let b = &self.buckets[self.bucket_of(key)];
        b.map.read().contains_key(key)
    }

    /// Remove a key, returning the previous value if any. (Not used by
    /// the core protocol — metadata is immutable — but exposed for
    /// garbage-collection extensions and failure-injection tests.)
    pub fn remove(&self, key: &K) -> Option<V> {
        let b = &self.buckets[self.bucket_of(key)];
        b.map.write().remove(key)
    }

    /// Keep only the entries for which `keep` returns `true`; returns
    /// the number removed. The predicate may be called under a bucket
    /// lock — keep it cheap and non-reentrant. This is the sweep
    /// primitive of version garbage collection.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for b in &self.buckets {
            let mut map = b.map.write();
            let before = map.len();
            map.retain(|k, v| keep(k, v));
            removed += before - map.len();
        }
        removed
    }

    /// Total number of stored entries (O(buckets)).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.map.read().len()).sum()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.map.read().is_empty())
    }

    /// Snapshot of per-bucket access statistics.
    pub fn stats(&self) -> DhtStats {
        DhtStats::collect(self.buckets.iter().map(|b| {
            let entries = b.map.read().len();
            b.stats.snapshot(entries)
        }))
    }
}

impl<K, V> std::fmt::Debug for Dht<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dht").field("buckets", &self.buckets.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let dht: Dht<u64, String> = Dht::new(8);
        dht.put(1, "one".into());
        dht.put(2, "two".into());
        assert_eq!(dht.get(&1).as_deref(), Some("one"));
        assert_eq!(dht.get(&2).as_deref(), Some("two"));
        assert_eq!(dht.get(&3), None);
        assert_eq!(dht.len(), 2);
        assert!(!dht.is_empty());
    }

    #[test]
    fn overwrite_replaces() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(7, 1);
        dht.put(7, 2);
        assert_eq!(dht.get(&7), Some(2));
        assert_eq!(dht.len(), 1);
    }

    #[test]
    fn put_new_inserts_only_once() {
        let dht: Dht<u64, u64> = Dht::new(4);
        assert!(dht.put_new(7, 1), "first store wins");
        assert!(!dht.put_new(7, 2), "the loser's value is discarded");
        assert_eq!(dht.get(&7), Some(1));
    }

    #[test]
    fn put_new_wakes_waiters_on_insert() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(2));
        let d2 = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || d2.get_wait(&9, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert!(dht.put_new(9, 42));
        assert_eq!(waiter.join().unwrap(), Ok(42));
    }

    #[test]
    fn remove_works() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(7, 1);
        assert_eq!(dht.remove(&7), Some(1));
        assert_eq!(dht.remove(&7), None);
        assert!(dht.is_empty());
    }

    #[test]
    fn get_wait_returns_immediately_when_present() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(1, 10);
        assert_eq!(dht.get_wait(&1, Duration::from_millis(1)), Ok(10));
    }

    #[test]
    fn get_wait_blocks_until_put() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(4));
        let d2 = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || d2.get_wait(&42, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        dht.put(42, 99);
        assert_eq!(waiter.join().unwrap(), Ok(99));
    }

    #[test]
    fn get_wait_times_out() {
        let dht: Dht<u64, u64> = Dht::new(4);
        let t0 = Instant::now();
        assert_eq!(dht.get_wait(&42, Duration::from_millis(30)), Err(DhtError::WaitTimeout));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn many_waiters_all_wake() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(2));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let d = Arc::clone(&dht);
            handles.push(std::thread::spawn(move || d.get_wait(&5, Duration::from_secs(5))));
        }
        std::thread::sleep(Duration::from_millis(20));
        dht.put(5, 55);
        for h in handles {
            assert_eq!(h.join().unwrap(), Ok(55));
        }
    }

    #[test]
    fn sliced_wait_self_help_supplies_the_key() {
        // The between-slices hook stores the key itself (the shape of
        // the engine's self-help lease sweep: abort repair fills the
        // node the waiter is parked on).
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(4));
        let d2 = Arc::clone(&dht);
        let hook_runs = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hook_runs);
        let t0 = Instant::now();
        let got =
            dht.get_wait_sliced(&7, Duration::from_secs(5), Duration::from_millis(20), || {
                h2.fetch_add(1, Ordering::SeqCst);
                d2.put(7, 77);
            });
        assert_eq!(got, Ok(77));
        assert_eq!(hook_runs.load(Ordering::SeqCst), 1, "recovered in one slice");
        assert!(t0.elapsed() < Duration::from_secs(4), "did not burn the full timeout");
        // Exactly one recorded wait for the whole sliced block.
        assert_eq!(dht.stats().total_waits, 1);
    }

    #[test]
    fn sliced_wait_still_honours_the_overall_deadline() {
        let dht: Dht<u64, u64> = Dht::new(4);
        let hook_runs = AtomicUsize::new(0);
        let t0 = Instant::now();
        let got =
            dht.get_wait_sliced(&7, Duration::from_millis(60), Duration::from_millis(15), || {
                hook_runs.fetch_add(1, Ordering::SeqCst);
            });
        assert_eq!(got, Err(DhtError::WaitTimeout));
        assert!(t0.elapsed() >= Duration::from_millis(60));
        assert!(hook_runs.load(Ordering::SeqCst) >= 2, "hook ran between slices");
        assert_eq!(dht.stats().total_waits, 1, "one sample per blocked call, however many slices");
    }

    #[test]
    fn sliced_wait_sees_a_put_from_another_thread() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(4));
        let d2 = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || {
            d2.get_wait_sliced(&42, Duration::from_secs(5), Duration::from_millis(10), || {})
        });
        std::thread::sleep(Duration::from_millis(35));
        dht.put(42, 99);
        assert_eq!(waiter.join().unwrap(), Ok(99));
    }

    #[test]
    fn sliced_wait_with_zero_slice_degrades_to_plain_wait() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(1, 10);
        assert_eq!(
            dht.get_wait_sliced(&1, Duration::from_millis(5), Duration::ZERO, || {
                panic!("no hook without slicing")
            }),
            Ok(10)
        );
        assert_eq!(
            dht.get_wait_sliced(&2, Duration::from_millis(5), Duration::from_secs(1), || {
                panic!("slice >= timeout degrades too")
            }),
            Err(DhtError::WaitTimeout)
        );
    }

    #[test]
    fn keys_spread_over_buckets() {
        let dht: Dht<u64, u64> = Dht::new(16);
        for k in 0..10_000 {
            dht.put(k, k);
        }
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 10_000);
        // No bucket should be empty or hold more than 3x the mean.
        let mean = 10_000.0 / 16.0;
        for b in &stats.buckets {
            assert!(b.entries > 0);
            assert!((b.entries as f64) < mean * 3.0);
        }
    }

    #[test]
    fn stats_count_operations() {
        let dht: Dht<u64, u64> = Dht::new(1);
        dht.put(1, 1);
        dht.get(&1);
        dht.get(&1);
        let _ = dht.get_wait(&2, Duration::from_millis(1));
        let s = dht.stats();
        assert_eq!(s.total_puts, 1);
        assert_eq!(s.total_gets, 3);
        assert!(s.total_waits >= 1);
    }

    #[test]
    fn retain_removes_and_counts() {
        let dht: Dht<u64, u64> = Dht::new(4);
        for k in 0..100 {
            dht.put(k, k * 2);
        }
        let removed = dht.retain(|&k, _| k % 3 == 0);
        assert_eq!(removed, 66);
        assert_eq!(dht.len(), 34);
        assert_eq!(dht.get(&3), Some(6));
        assert_eq!(dht.get(&4), None);
    }

    #[test]
    fn one_wait_recorded_per_blocking_call() {
        // A blocking call that sees several puts-to-other-keys (each a
        // notify_all, i.e. a wakeup that is spurious for this waiter)
        // must still count as exactly one wait.
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
        let d = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || d.get_wait(&1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        for k in 100..110 {
            dht.put(k, k); // same bucket, wrong key: spurious wakeups
            std::thread::sleep(Duration::from_millis(2));
        }
        dht.put(1, 11);
        assert_eq!(waiter.join().unwrap(), Ok(11));
        assert_eq!(dht.stats().total_waits, 1);

        // Non-blocking calls record no wait at all.
        assert_eq!(dht.get_wait(&1, Duration::from_secs(1)), Ok(11));
        assert_eq!(dht.stats().total_waits, 1);
    }

    #[test]
    fn wait_duration_recorded_once_and_spans_the_block() {
        // The latency histogram mirrors the wait counter's invariant:
        // one sample per blocking call — and the sample covers the
        // whole block, spurious wakeups included.
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
        let d = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || d.get_wait(&1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(25));
        dht.put(99, 99); // spurious wakeup: must not split the sample
        std::thread::sleep(Duration::from_millis(25));
        dht.put(1, 11);
        assert_eq!(waiter.join().unwrap(), Ok(11));
        let snap = dht.wait_latency().snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.sum() >= 50_000_000, "blocked ~50ms but recorded {}ns", snap.sum());

        // Fast-path (non-blocking) calls record nothing.
        assert_eq!(dht.get_wait(&1, Duration::from_secs(1)), Ok(11));
        assert_eq!(dht.wait_latency().snapshot().count(), 1);
    }

    #[test]
    fn waiters_on_distinct_keys_wake_independently() {
        // Two waiters parked on different keys of the same bucket: a
        // put to one key must complete exactly that waiter, and must
        // not disturb (or lose) the other.
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
        let d1 = Arc::clone(&dht);
        let w1 = std::thread::spawn(move || d1.get_wait(&1, Duration::from_secs(10)));
        let d2 = Arc::clone(&dht);
        let w2 = std::thread::spawn(move || d2.get_wait(&2, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        dht.put(1, 11);
        assert_eq!(w1.join().unwrap(), Ok(11));
        assert!(!w2.is_finished(), "waiter on key 2 must still be parked");
        dht.put(2, 22);
        assert_eq!(w2.join().unwrap(), Ok(22));
    }

    #[test]
    fn key_queue_is_dropped_when_last_waiter_leaves() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
        // A timed-out waiter must clean its queue up...
        assert_eq!(dht.get_wait(&7, Duration::from_millis(10)), Err(DhtError::WaitTimeout));
        assert!(dht.buckets[0].wait_queues.lock().is_empty());
        assert_eq!(dht.buckets[0].waiters.load(Ordering::SeqCst), 0);
        // ...and so must satisfied waiters.
        let d = Arc::clone(&dht);
        let w = std::thread::spawn(move || d.get_wait(&8, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        dht.put(8, 88);
        assert_eq!(w.join().unwrap(), Ok(88));
        assert!(dht.buckets[0].wait_queues.lock().is_empty());
        assert_eq!(dht.buckets[0].waiters.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn uncontended_put_and_parked_waiter_interleave() {
        // Hammer the registration window: waiters that race the put
        // either see the value on their fast/re-check path or are woken
        // by the gated notify — never lost.
        for round in 0..200u64 {
            let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
            let d = Arc::clone(&dht);
            let waiter = std::thread::spawn(move || d.get_wait(&round, Duration::from_secs(5)));
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            dht.put(round, round * 3);
            assert_eq!(waiter.join().unwrap(), Ok(round * 3), "round {round}");
        }
    }

    #[test]
    fn read_storm_sees_no_torn_or_stale_values() {
        // N readers + 1 writer on one bucket. The writer publishes
        // (k, k) pairs in increasing k order; every reader repeatedly
        // scans downward from the highest key it has observed and
        // asserts value == key (no torn reads) and that observed
        // highest keys never regress (no stale map views).
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        const KEYS: u64 = 4000;
        let readers: Vec<_> = (0..6)
            .map(|_| {
                let d = Arc::clone(&dht);
                let s = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut high = 0u64;
                    while !s.load(Ordering::Relaxed) {
                        for k in (0..KEYS).rev() {
                            if let Some(v) = d.get(&k) {
                                assert_eq!(v, k, "torn value under read storm");
                                assert!(k + 1 >= high || high == 0 || d.get(&(high - 1)).is_some());
                                high = high.max(k + 1);
                                break;
                            }
                        }
                    }
                    high
                })
            })
            .collect();
        for k in 0..KEYS {
            dht.put(k, k);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let high = r.join().unwrap();
            assert!(high <= KEYS);
        }
        assert_eq!(dht.len(), KEYS as usize);
    }

    #[test]
    fn concurrent_put_get_storm() {
        let dht: Arc<Dht<(u64, u64), u64>> = Arc::new(Dht::new(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = Arc::clone(&dht);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    d.put((t, i), t * 10_000 + i);
                    assert_eq!(d.get(&(t, i)), Some(t * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dht.len(), 8 * 2000);
    }
}
