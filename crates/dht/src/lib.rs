//! In-process DHT: the metadata-provider substrate.
//!
//! The paper stores segment-tree nodes "on the metadata provider in a
//! distributed way, using a simple DHT" (§4.1), implemented as "a custom
//! DHT based on [a] simple static distribution scheme" (§5). This crate
//! reproduces that component: a sharded key/value store where each
//! shard ("bucket") models one metadata provider, keys are placed by a
//! deterministic static hash, and — crucially — readers may **block**
//! until a key appears.
//!
//! Blocking gets are the transport-level mechanism behind the paper's
//! writer-concurrency protocol (§4.2): writer `C2` may link to tree
//! nodes that the concurrent, lower-versioned writer `C1` has not yet
//! stored. `C2`'s *readers* (and `C2` itself while completing unaligned
//! boundary pages) simply wait for those nodes to materialise. Waiting
//! is always on strictly lower versions, so it cannot deadlock.
//!
//! Per-bucket access statistics are kept so that benches can observe
//! metadata hotspots (e.g. every reader of a snapshot fetches the same
//! root node — the paper's Figure 2(b) degradation).

mod hash;
mod stats;

pub use hash::{fnv_hash, static_bucket, Fnv1a};
pub use stats::{BucketStats, DhtStats};

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Errors from blocking DHT operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtError {
    /// `get_wait` exceeded its deadline without the key appearing.
    WaitTimeout,
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::WaitTimeout => write!(f, "timed out waiting for DHT key"),
        }
    }
}

impl std::error::Error for DhtError {}

struct Bucket<K, V> {
    map: Mutex<HashMap<K, V>>,
    cv: Condvar,
    stats: stats::BucketCounters,
}

impl<K, V> Bucket<K, V> {
    fn new() -> Self {
        Bucket {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            stats: stats::BucketCounters::new(),
        }
    }
}

/// A sharded, in-process key/value store with static key distribution.
///
/// One bucket models one metadata provider node. All operations are
/// thread-safe; `put` wakes any `get_wait`ers for that bucket.
pub struct Dht<K, V> {
    buckets: Vec<Bucket<K, V>>,
}

impl<K, V> Dht<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    /// Create a DHT spread over `buckets` metadata providers.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "DHT needs at least one bucket");
        Dht { buckets: (0..buckets).map(|_| Bucket::new()).collect() }
    }

    /// Number of buckets (metadata providers).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket responsible for `key` under the static distribution.
    #[inline]
    pub fn bucket_of(&self, key: &K) -> usize {
        static_bucket(key, self.buckets.len())
    }

    /// Store a value; overwrites silently (tree nodes are immutable in
    /// BlobSeer, so an overwrite only happens when a writer retries and
    /// re-stores identical content). Wakes blocked readers.
    pub fn put(&self, key: K, value: V) {
        let b = &self.buckets[self.bucket_of(&key)];
        b.stats.record_put();
        let mut map = b.map.lock();
        map.insert(key, value);
        b.cv.notify_all();
    }

    /// Fetch a value if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let b = &self.buckets[self.bucket_of(key)];
        b.stats.record_get();
        b.map.lock().get(key).cloned()
    }

    /// Fetch a value, blocking until it appears or `timeout` elapses.
    ///
    /// This is how a reader of still-being-written metadata waits for
    /// the lower-versioned writer to finish (§4.2).
    pub fn get_wait(&self, key: &K, timeout: Duration) -> Result<V, DhtError> {
        let b = &self.buckets[self.bucket_of(key)];
        b.stats.record_get();
        let deadline = Instant::now() + timeout;
        let mut map = b.map.lock();
        loop {
            if let Some(v) = map.get(key) {
                return Ok(v.clone());
            }
            b.stats.record_wait();
            if b.cv.wait_until(&mut map, deadline).timed_out() {
                return match map.get(key) {
                    Some(v) => Ok(v.clone()),
                    None => Err(DhtError::WaitTimeout),
                };
            }
        }
    }

    /// `true` when the key is currently stored.
    pub fn contains(&self, key: &K) -> bool {
        let b = &self.buckets[self.bucket_of(key)];
        b.map.lock().contains_key(key)
    }

    /// Remove a key, returning the previous value if any. (Not used by
    /// the core protocol — metadata is immutable — but exposed for
    /// garbage-collection extensions and failure-injection tests.)
    pub fn remove(&self, key: &K) -> Option<V> {
        let b = &self.buckets[self.bucket_of(key)];
        b.map.lock().remove(key)
    }

    /// Keep only the entries for which `keep` returns `true`; returns
    /// the number removed. The predicate may be called under a bucket
    /// lock — keep it cheap and non-reentrant. This is the sweep
    /// primitive of version garbage collection.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for b in &self.buckets {
            let mut map = b.map.lock();
            let before = map.len();
            map.retain(|k, v| keep(k, v));
            removed += before - map.len();
        }
        removed
    }

    /// Total number of stored entries (O(buckets)).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.map.lock().len()).sum()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.map.lock().is_empty())
    }

    /// Snapshot of per-bucket access statistics.
    pub fn stats(&self) -> DhtStats {
        DhtStats::collect(self.buckets.iter().map(|b| {
            let entries = b.map.lock().len();
            b.stats.snapshot(entries)
        }))
    }
}

impl<K, V> std::fmt::Debug for Dht<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dht").field("buckets", &self.buckets.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let dht: Dht<u64, String> = Dht::new(8);
        dht.put(1, "one".into());
        dht.put(2, "two".into());
        assert_eq!(dht.get(&1).as_deref(), Some("one"));
        assert_eq!(dht.get(&2).as_deref(), Some("two"));
        assert_eq!(dht.get(&3), None);
        assert_eq!(dht.len(), 2);
        assert!(!dht.is_empty());
    }

    #[test]
    fn overwrite_replaces() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(7, 1);
        dht.put(7, 2);
        assert_eq!(dht.get(&7), Some(2));
        assert_eq!(dht.len(), 1);
    }

    #[test]
    fn remove_works() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(7, 1);
        assert_eq!(dht.remove(&7), Some(1));
        assert_eq!(dht.remove(&7), None);
        assert!(dht.is_empty());
    }

    #[test]
    fn get_wait_returns_immediately_when_present() {
        let dht: Dht<u64, u64> = Dht::new(4);
        dht.put(1, 10);
        assert_eq!(dht.get_wait(&1, Duration::from_millis(1)), Ok(10));
    }

    #[test]
    fn get_wait_blocks_until_put() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(4));
        let d2 = Arc::clone(&dht);
        let waiter = std::thread::spawn(move || d2.get_wait(&42, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        dht.put(42, 99);
        assert_eq!(waiter.join().unwrap(), Ok(99));
    }

    #[test]
    fn get_wait_times_out() {
        let dht: Dht<u64, u64> = Dht::new(4);
        let t0 = Instant::now();
        assert_eq!(dht.get_wait(&42, Duration::from_millis(30)), Err(DhtError::WaitTimeout));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn many_waiters_all_wake() {
        let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(2));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let d = Arc::clone(&dht);
            handles.push(std::thread::spawn(move || d.get_wait(&5, Duration::from_secs(5))));
        }
        std::thread::sleep(Duration::from_millis(20));
        dht.put(5, 55);
        for h in handles {
            assert_eq!(h.join().unwrap(), Ok(55));
        }
    }

    #[test]
    fn keys_spread_over_buckets() {
        let dht: Dht<u64, u64> = Dht::new(16);
        for k in 0..10_000 {
            dht.put(k, k);
        }
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 10_000);
        // No bucket should be empty or hold more than 3x the mean.
        let mean = 10_000.0 / 16.0;
        for b in &stats.buckets {
            assert!(b.entries > 0);
            assert!((b.entries as f64) < mean * 3.0);
        }
    }

    #[test]
    fn stats_count_operations() {
        let dht: Dht<u64, u64> = Dht::new(1);
        dht.put(1, 1);
        dht.get(&1);
        dht.get(&1);
        let _ = dht.get_wait(&2, Duration::from_millis(1));
        let s = dht.stats();
        assert_eq!(s.total_puts, 1);
        assert_eq!(s.total_gets, 3);
        assert!(s.total_waits >= 1);
    }

    #[test]
    fn retain_removes_and_counts() {
        let dht: Dht<u64, u64> = Dht::new(4);
        for k in 0..100 {
            dht.put(k, k * 2);
        }
        let removed = dht.retain(|&k, _| k % 3 == 0);
        assert_eq!(removed, 66);
        assert_eq!(dht.len(), 34);
        assert_eq!(dht.get(&3), Some(6));
        assert_eq!(dht.get(&4), None);
    }

    #[test]
    fn concurrent_put_get_storm() {
        let dht: Arc<Dht<(u64, u64), u64>> = Arc::new(Dht::new(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = Arc::clone(&dht);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    d.put((t, i), t * 10_000 + i);
                    assert_eq!(d.get(&(t, i)), Some(t * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dht.len(), 8 * 2000);
    }
}
