//! Per-bucket access statistics.
//!
//! The paper's Figure 2(b) shows read throughput degrading mildly under
//! reader concurrency; part of that cost is contention on metadata
//! providers that hold "hot" tree nodes (every reader traverses the same
//! root). These counters let tests and benches observe that skew on the
//! real engine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed per-bucket counters, aligned to their own cacheline so the
/// constant counter traffic from hot `get`s never dirties the line
/// holding the bucket's lock state (and vice versa).
#[repr(align(64))]
pub(crate) struct BucketCounters {
    gets: AtomicU64,
    puts: AtomicU64,
    waits: AtomicU64,
}

impl BucketCounters {
    pub(crate) fn new() -> Self {
        BucketCounters {
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_wait(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, entries: usize) -> BucketStats {
        BucketStats {
            entries,
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
        }
    }
}

/// Access counters for a single bucket (metadata provider).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Entries currently stored.
    pub entries: usize,
    /// Lifetime `get`/`get_wait` calls routed here.
    pub gets: u64,
    /// Lifetime `put` calls routed here.
    pub puts: u64,
    /// Times a reader had to block waiting for a key in this bucket.
    pub waits: u64,
}

/// Aggregated DHT statistics.
#[derive(Clone, Debug, Default)]
pub struct DhtStats {
    /// Per-bucket counters, indexed by bucket id.
    pub buckets: Vec<BucketStats>,
    /// Sum of entries over all buckets.
    pub total_entries: usize,
    /// Sum of gets over all buckets.
    pub total_gets: u64,
    /// Sum of puts over all buckets.
    pub total_puts: u64,
    /// Sum of blocking waits over all buckets.
    pub total_waits: u64,
}

impl DhtStats {
    pub(crate) fn collect(buckets: impl Iterator<Item = BucketStats>) -> Self {
        let buckets: Vec<BucketStats> = buckets.collect();
        DhtStats {
            total_entries: buckets.iter().map(|b| b.entries).sum(),
            total_gets: buckets.iter().map(|b| b.gets).sum(),
            total_puts: buckets.iter().map(|b| b.puts).sum(),
            total_waits: buckets.iter().map(|b| b.waits).sum(),
            buckets,
        }
    }

    /// Ratio of the busiest bucket's gets to the mean — 1.0 is perfectly
    /// even, large values indicate a hotspot (e.g. the tree root).
    pub fn get_skew(&self) -> f64 {
        if self.buckets.is_empty() || self.total_gets == 0 {
            return 1.0;
        }
        let mean = self.total_gets as f64 / self.buckets.len() as f64;
        let max = self.buckets.iter().map(|b| b.gets).max().unwrap_or(0);
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sums() {
        let s = DhtStats::collect(
            vec![
                BucketStats { entries: 2, gets: 10, puts: 3, waits: 1 },
                BucketStats { entries: 1, gets: 30, puts: 2, waits: 0 },
            ]
            .into_iter(),
        );
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.total_gets, 40);
        assert_eq!(s.total_puts, 5);
        assert_eq!(s.total_waits, 1);
    }

    #[test]
    fn skew_of_even_load_is_one() {
        let s = DhtStats::collect((0..4).map(|_| BucketStats {
            entries: 0,
            gets: 25,
            puts: 0,
            waits: 0,
        }));
        assert!((s.get_skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_detects_hotspot() {
        let s = DhtStats::collect(
            vec![
                BucketStats { entries: 0, gets: 97, puts: 0, waits: 0 },
                BucketStats { entries: 0, gets: 1, puts: 0, waits: 0 },
                BucketStats { entries: 0, gets: 1, puts: 0, waits: 0 },
                BucketStats { entries: 0, gets: 1, puts: 0, waits: 0 },
            ]
            .into_iter(),
        );
        assert!(s.get_skew() > 3.5);
    }

    #[test]
    fn skew_of_empty_stats_is_one() {
        let s = DhtStats::default();
        assert_eq!(s.get_skew(), 1.0);
    }
}
