//! Page storage backends.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use blobseer_types::{BlobError, PageId, Result};
use bytes::Bytes;
use parking_lot::RwLock;

/// Backend storing immutable pages addressed by [`PageId`].
///
/// Pages are written once and never mutated (BlobSeer "generates
/// completely new pages when clients request data modifications",
/// paper §1), so implementations only need last-writer-wins semantics
/// on the rare retry path.
pub trait PageStore: Send + Sync {
    /// Store a page. Overwrites (identical) content on retries.
    fn store(&self, pid: PageId, data: Bytes) -> Result<()>;

    /// Fetch a whole page.
    fn fetch(&self, pid: PageId) -> Result<Bytes>;

    /// Fetch `len` bytes starting at `offset` within the page (paper
    /// §3.2: "the client may request only a part of the page").
    fn fetch_range(&self, pid: PageId, offset: u64, len: u64) -> Result<Bytes> {
        let page = self.fetch(pid)?;
        let off = offset as usize;
        let end = off + len as usize;
        if end > page.len() {
            return Err(BlobError::Storage(format!(
                "range [{offset}, {end}) exceeds page of {} bytes",
                page.len()
            )));
        }
        Ok(page.slice(off..end))
    }

    /// `true` if the page is stored here.
    fn contains(&self, pid: PageId) -> bool;

    /// Delete a page; returns the payload bytes freed, or `None` when
    /// the page was not stored here. (The garbage-collection hook.)
    fn delete(&self, pid: PageId) -> Result<Option<u64>>;

    /// Enumerate every stored page as `(pid, payload bytes)` pairs —
    /// the provider-side half of the orphan scrubber's sweep. The
    /// snapshot is **weakly consistent** under concurrency: pages
    /// stored or deleted while the scan runs may or may not appear,
    /// which is sufficient for mark-and-sweep (the scrubber's epoch cut
    /// exempts everything stored after its mark began, and deleting an
    /// already-deleted page is a no-op). A store that cannot enumerate
    /// at all (unreadable backing directory) must **error**, not
    /// return an empty list — "nothing stored" and "nothing visible"
    /// are different answers, and the scrubber reports them
    /// differently (clean sweep vs. skipped provider).
    fn scan(&self) -> Result<Vec<(PageId, u64)>>;

    /// Number of pages stored.
    fn page_count(&self) -> usize;

    /// Total payload bytes stored — the measure behind the paper's
    /// storage-efficiency claim (§4.3).
    fn stored_bytes(&self) -> u64;
}

const MEM_SHARDS: usize = 16;

/// Sharded in-memory page store.
pub struct MemoryPageStore {
    shards: Vec<RwLock<HashMap<PageId, Bytes>>>,
    bytes: AtomicU64,
}

impl MemoryPageStore {
    /// Empty store.
    pub fn new() -> Self {
        MemoryPageStore {
            shards: (0..MEM_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            bytes: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, pid: PageId) -> &RwLock<HashMap<PageId, Bytes>> {
        // Low bits of the sequence part spread consecutive pages.
        &self.shards[(pid.raw() as usize) % MEM_SHARDS]
    }
}

impl Default for MemoryPageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemoryPageStore {
    fn store(&self, pid: PageId, data: Bytes) -> Result<()> {
        let mut shard = self.shard(pid).write();
        let added = data.len() as u64;
        if let Some(old) = shard.insert(pid, data) {
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        Ok(())
    }

    fn fetch(&self, pid: PageId) -> Result<Bytes> {
        self.shard(pid)
            .read()
            .get(&pid)
            .cloned()
            .ok_or(BlobError::Storage(format!("{pid:?} not stored")))
    }

    fn contains(&self, pid: PageId) -> bool {
        self.shard(pid).read().contains_key(&pid)
    }

    fn delete(&self, pid: PageId) -> Result<Option<u64>> {
        let mut shard = self.shard(pid).write();
        if let Some(old) = shard.remove(&pid) {
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
            Ok(Some(old.len() as u64))
        } else {
            Ok(None)
        }
    }

    fn scan(&self) -> Result<Vec<(PageId, u64)>> {
        // Shard by shard under the shared guard: writers to other
        // shards proceed; the per-shard view is a consistent snapshot.
        let mut out = Vec::with_capacity(self.page_count());
        for shard in &self.shards {
            out.extend(shard.read().iter().map(|(&pid, data)| (pid, data.len() as u64)));
        }
        Ok(out)
    }

    fn page_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn stored_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// File-backed page store: one file per page under a directory.
///
/// Models a commodity provider persisting pages to local disk. Used by
/// the durability-oriented tests and available to library users; the
/// benches use [`MemoryPageStore`] to keep the measured path CPU-bound.
pub struct FilePageStore {
    dir: PathBuf,
    pages: AtomicU64,
    bytes: AtomicU64,
}

impl FilePageStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = FilePageStore { dir, pages: AtomicU64::new(0), bytes: AtomicU64::new(0) };
        // Recover counters from a pre-existing directory.
        for entry in fs::read_dir(&store.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                store.pages.fetch_add(1, Ordering::Relaxed);
                store.bytes.fetch_add(entry.metadata()?.len(), Ordering::Relaxed);
            }
        }
        Ok(store)
    }

    fn path_of(&self, pid: PageId) -> PathBuf {
        self.dir.join(format!("{:032x}.page", pid.raw()))
    }

    /// Inverse of [`FilePageStore::path_of`]: the pid encoded in a page
    /// file name, or `None` for foreign files in the directory.
    fn pid_of(name: &str) -> Option<PageId> {
        let hex = name.strip_suffix(".page")?;
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(PageId)
    }
}

impl PageStore for FilePageStore {
    fn store(&self, pid: PageId, data: Bytes) -> Result<()> {
        let path = self.path_of(pid);
        let existed = path.exists();
        let old_len = if existed { fs::metadata(&path)?.len() } else { 0 };
        fs::write(&path, &data)?;
        if existed {
            self.bytes.fetch_sub(old_len, Ordering::Relaxed);
        } else {
            self.pages.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn fetch(&self, pid: PageId) -> Result<Bytes> {
        match fs::read(self.path_of(pid)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(BlobError::Storage(format!("{pid:?} not stored")))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn fetch_range(&self, pid: PageId, offset: u64, len: u64) -> Result<Bytes> {
        let mut f = match fs::File::open(self.path_of(pid)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(BlobError::Storage(format!("{pid:?} not stored")))
            }
            Err(e) => return Err(e.into()),
        };
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf).map_err(|e| {
            BlobError::Storage(format!("short read of {pid:?} at {offset}+{len}: {e}"))
        })?;
        Ok(Bytes::from(buf))
    }

    fn contains(&self, pid: PageId) -> bool {
        self.path_of(pid).exists()
    }

    fn delete(&self, pid: PageId) -> Result<Option<u64>> {
        let path = self.path_of(pid);
        match fs::metadata(&path) {
            Ok(meta) => {
                fs::remove_file(&path)?;
                self.pages.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(meta.len(), Ordering::Relaxed);
                Ok(Some(meta.len()))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn scan(&self) -> Result<Vec<(PageId, u64)>> {
        // Directory listing. Foreign files — and files racing a
        // concurrent delete, whose metadata vanishes mid-walk — are
        // skipped (weak consistency is all sweep needs), but an
        // unreadable directory is a hard error: an empty answer would
        // make the scrubber report a clean sweep over pages it never
        // saw.
        let mut out = Vec::with_capacity(self.page_count());
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Some(pid) = entry.file_name().to_str().and_then(Self::pid_of) else {
                continue;
            };
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    out.push((pid, meta.len()));
                }
            }
        }
        Ok(out)
    }

    fn page_count(&self) -> usize {
        self.pages.load(Ordering::Relaxed) as usize
    }

    fn stored_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u128) -> PageId {
        PageId(n)
    }

    fn exercise_store(store: &dyn PageStore) {
        assert_eq!(store.page_count(), 0);
        store.store(pid(1), Bytes::from_static(b"hello world!")).unwrap();
        store.store(pid(2), Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(store.page_count(), 2);
        assert_eq!(store.stored_bytes(), 16);
        assert_eq!(store.fetch(pid(1)).unwrap(), Bytes::from_static(b"hello world!"));
        let mut scanned = store.scan().unwrap();
        scanned.sort_unstable();
        assert_eq!(scanned, vec![(pid(1), 12), (pid(2), 4)]);
        assert_eq!(store.fetch_range(pid(1), 6, 5).unwrap(), Bytes::from_static(b"world"));
        assert!(store.contains(pid(2)));
        assert!(!store.contains(pid(3)));
        assert!(store.fetch(pid(3)).is_err());
        assert!(store.fetch_range(pid(2), 2, 10).is_err(), "over-long range");
        // Overwrite adjusts byte accounting.
        store.store(pid(2), Bytes::from_static(b"xy")).unwrap();
        assert_eq!(store.stored_bytes(), 14);
        assert_eq!(store.page_count(), 2);
        // Delete.
        assert_eq!(store.delete(pid(2)).unwrap(), Some(2));
        assert_eq!(store.delete(pid(2)).unwrap(), None);
        assert_eq!(store.page_count(), 1);
        assert_eq!(store.stored_bytes(), 12);
        assert_eq!(store.scan().unwrap(), vec![(pid(1), 12)]);
    }

    #[test]
    fn memory_store_contract() {
        exercise_store(&MemoryPageStore::new());
    }

    #[test]
    fn file_store_contract() {
        let dir = std::env::temp_dir().join(format!("blobseer-fps-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise_store(&FilePageStore::open(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_recovers_counters() {
        let dir = std::env::temp_dir().join(format!("blobseer-fps-rec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FilePageStore::open(&dir).unwrap();
            s.store(pid(9), Bytes::from_static(b"persist")).unwrap();
        }
        let s2 = FilePageStore::open(&dir).unwrap();
        assert_eq!(s2.page_count(), 1);
        assert_eq!(s2.stored_bytes(), 7);
        assert_eq!(s2.fetch(pid(9)).unwrap(), Bytes::from_static(b"persist"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_store_concurrent_writers() {
        let store = std::sync::Arc::new(MemoryPageStore::new());
        let mut handles = Vec::new();
        for t in 0..8u128 {
            let s = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u128 {
                    let id = pid(t * 1000 + i);
                    s.store(id, Bytes::from(vec![t as u8; 64])).unwrap();
                    assert_eq!(s.fetch(id).unwrap().len(), 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.page_count(), 4000);
        assert_eq!(store.stored_bytes(), 4000 * 64);
    }
}
