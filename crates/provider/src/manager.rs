//! The provider manager and its page-to-provider allocation strategies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blobseer_types::{BlobError, ProviderId, Result};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::provider::{DataProvider, ProviderStats};
use crate::store::MemoryPageStore;

/// Page-to-provider placement policy (paper §3.1: "a strategy aiming at
/// ensuring an even distribution of pages among providers"; §4.3 calls
/// the strategy "central" to minimising serialization conflicts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Deterministic rotation — the baseline "even distribution". Also
    /// what the figure simulations assume, so placement there matches
    /// the real engine exactly.
    RoundRobin,
    /// Uniform random placement (seeded for reproducibility).
    Random,
    /// Always pick the providers currently storing the fewest bytes.
    LeastLoaded,
    /// Two random candidates, keep the less loaded (the classic
    /// power-of-two-choices load balancer).
    PowerOfTwoChoices,
}

/// The provider manager: registry of data providers plus the placement
/// strategy. Providers may join dynamically ([`ProviderManager::register`]),
/// mirroring the paper's "new data providers may dynamically join and
/// leave the system".
pub struct ProviderManager {
    providers: RwLock<Vec<Arc<DataProvider>>>,
    strategy: AllocationStrategy,
    rr_next: AtomicU64,
    rng: Mutex<StdRng>,
}

impl ProviderManager {
    /// Manager over `n` fresh in-memory providers.
    pub fn with_memory_providers(n: usize, strategy: AllocationStrategy) -> Self {
        let providers = (0..n)
            .map(|i| {
                Arc::new(DataProvider::new(ProviderId(i as u32), Arc::new(MemoryPageStore::new())))
            })
            .collect();
        Self::new(providers, strategy)
    }

    /// Manager over pre-built providers.
    pub fn new(providers: Vec<Arc<DataProvider>>, strategy: AllocationStrategy) -> Self {
        assert!(!providers.is_empty(), "at least one data provider required");
        ProviderManager {
            providers: RwLock::new(providers),
            strategy,
            rr_next: AtomicU64::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(0x5eed_b10b)),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> AllocationStrategy {
        self.strategy
    }

    /// Number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.providers.read().len()
    }

    /// Register a provider that joined the deployment.
    pub fn register(&self, provider: Arc<DataProvider>) {
        self.providers.write().push(provider);
    }

    /// Every registered provider, in registry order — the sweep list of
    /// the orphan scrubber (which must visit *all* providers, available
    /// or not, and report the offline ones as skipped).
    pub fn all_providers(&self) -> Vec<Arc<DataProvider>> {
        self.providers.read().clone()
    }

    /// Look up a provider by id.
    pub fn provider(&self, id: ProviderId) -> Result<Arc<DataProvider>> {
        self.providers
            .read()
            .iter()
            .find(|p| p.id() == id)
            .cloned()
            .ok_or(BlobError::ProviderNotFound(id))
    }

    /// Choose `n` providers to receive `n` new pages (paper Algorithm 2
    /// line 2: "PP ← the list of n page providers"). Providers repeat
    /// when `n` exceeds the deployment size. Failed providers are
    /// skipped; errors when every provider is offline.
    pub fn allocate(&self, n: usize) -> Result<Vec<ProviderId>> {
        let all = self.providers.read();
        let providers: Vec<&Arc<DataProvider>> = all.iter().filter(|p| p.is_available()).collect();
        if providers.is_empty() {
            return Err(BlobError::NoAvailableProvider);
        }
        let count = providers.len();
        Ok(match self.strategy {
            AllocationStrategy::RoundRobin => {
                let start = self.rr_next.fetch_add(n as u64, Ordering::Relaxed);
                (0..n)
                    .map(|i| providers[((start + i as u64) % count as u64) as usize].id())
                    .collect()
            }
            AllocationStrategy::Random => {
                let mut rng = self.rng.lock();
                (0..n).map(|_| providers[rng.gen_range(0..count)].id()).collect()
            }
            AllocationStrategy::LeastLoaded => {
                // Sort once per allocation by current stored bytes, then
                // deal pages out round-robin over that order so a single
                // large allocation still spreads.
                let mut by_load: Vec<(u64, ProviderId)> =
                    providers.iter().map(|p| (p.stored_bytes(), p.id())).collect();
                by_load.sort_by_key(|&(load, id)| (load, id.raw()));
                (0..n).map(|i| by_load[i % count].1).collect()
            }
            AllocationStrategy::PowerOfTwoChoices => {
                let mut rng = self.rng.lock();
                (0..n)
                    .map(|_| {
                        let a = &providers[rng.gen_range(0..count)];
                        let b = &providers[rng.gen_range(0..count)];
                        if a.stored_bytes() <= b.stored_bytes() {
                            a.id()
                        } else {
                            b.id()
                        }
                    })
                    .collect()
            }
        })
    }

    /// The deterministic replica chain of a page whose primary copy is
    /// on `primary`: the `replicas − 1` providers that follow it in
    /// registry order. Deriving replica locations from the primary
    /// keeps the metadata tree unchanged (leaves name one provider) —
    /// readers recompute the same chain when the primary is down.
    ///
    /// The chain is computed over **all** registered providers, not
    /// just the currently available ones, so it is stable across
    /// failures and recoveries.
    pub fn replicas_of(&self, primary: ProviderId, replicas: usize) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let providers = self.providers.read();
        let idx = providers
            .iter()
            .position(|p| p.id() == primary)
            .ok_or(BlobError::ProviderNotFound(primary))?;
        Ok((1..replicas).map(|i| providers[(idx + i) % providers.len()].id()).collect())
    }

    /// The deterministic **failover sequence** of a page: every
    /// registered provider *beyond* the replica chain, in registry
    /// order. When a chain member rejects a store (or a read misses on
    /// the whole chain), the next copy lives on the first of these that
    /// is alive — writers and readers recompute the identical sequence
    /// from the leaf's primary alone, so failover placement needs no
    /// extra metadata, exactly like the chain itself.
    pub fn fallbacks_of(&self, primary: ProviderId, replicas: usize) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let providers = self.providers.read();
        let idx = providers
            .iter()
            .position(|p| p.id() == primary)
            .ok_or(BlobError::ProviderNotFound(primary))?;
        Ok((replicas..providers.len())
            .map(|i| providers[(idx + i) % providers.len()].id())
            .collect())
    }

    /// Stats snapshot for every provider.
    pub fn stats(&self) -> Vec<ProviderStats> {
        self.providers.read().iter().map(|p| p.stats()).collect()
    }

    /// Total payload bytes stored across all providers — the physical
    /// footprint used by the storage-efficiency experiment (E3).
    pub fn total_stored_bytes(&self) -> u64 {
        self.providers.read().iter().map(|p| p.stored_bytes()).sum()
    }

    /// Total pages stored across all providers.
    pub fn total_pages(&self) -> usize {
        self.providers.read().iter().map(|p| p.page_count()).sum()
    }
}

impl std::fmt::Debug for ProviderManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProviderManager")
            .field("providers", &self.provider_count())
            .field("strategy", &self.strategy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::PageId;
    use bytes::Bytes;

    fn fill(mgr: &ProviderManager, pages: usize, page_bytes: usize) {
        let ids = mgr.allocate(pages).unwrap();
        for (i, id) in ids.iter().enumerate() {
            mgr.provider(*id)
                .unwrap()
                .store_page(PageId(i as u128), Bytes::from(vec![0u8; page_bytes]))
                .unwrap();
        }
    }

    #[test]
    fn round_robin_is_perfectly_even() {
        let mgr = ProviderManager::with_memory_providers(7, AllocationStrategy::RoundRobin);
        let ids = mgr.allocate(70).unwrap();
        let mut counts = vec![0usize; 7];
        for id in ids {
            counts[id.raw() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn round_robin_continues_across_allocations() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        let a = mgr.allocate(3).unwrap();
        let b = mgr.allocate(3).unwrap();
        assert_eq!(a, vec![ProviderId(0), ProviderId(1), ProviderId(2)]);
        assert_eq!(b, vec![ProviderId(3), ProviderId(0), ProviderId(1)]);
    }

    #[test]
    fn random_covers_all_providers_eventually() {
        let mgr = ProviderManager::with_memory_providers(8, AllocationStrategy::Random);
        let ids = mgr.allocate(1000).unwrap();
        let mut seen = [false; 8];
        for id in &ids {
            seen[id.raw() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn least_loaded_prefers_empty_providers() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::LeastLoaded);
        // Pre-load provider 0 heavily.
        mgr.provider(ProviderId(0))
            .unwrap()
            .store_page(PageId(999), Bytes::from(vec![0u8; 10_000]))
            .unwrap();
        let ids = mgr.allocate(2).unwrap();
        assert!(!ids.contains(&ProviderId(0)), "{ids:?}");
    }

    #[test]
    fn power_of_two_choices_balances() {
        let mgr = ProviderManager::with_memory_providers(10, AllocationStrategy::PowerOfTwoChoices);
        for round in 0..100 {
            let ids = mgr.allocate(10).unwrap();
            for (i, id) in ids.iter().enumerate() {
                mgr.provider(*id)
                    .unwrap()
                    .store_page(PageId((round * 100 + i) as u128), Bytes::from(vec![0u8; 100]))
                    .unwrap();
            }
        }
        let stats = mgr.stats();
        let max = stats.iter().map(|s| s.pages).max().unwrap();
        let min = stats.iter().map(|s| s.pages).min().unwrap();
        // p2c keeps the gap tight: no provider more than ~2x any other.
        assert!(max <= min * 2 + 10, "max={max} min={min}");
    }

    #[test]
    fn allocate_more_than_providers_repeats() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::RoundRobin);
        let ids = mgr.allocate(10).unwrap();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn register_grows_deployment() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::RoundRobin);
        assert_eq!(mgr.provider_count(), 2);
        mgr.register(Arc::new(DataProvider::new(ProviderId(2), Arc::new(MemoryPageStore::new()))));
        assert_eq!(mgr.provider_count(), 3);
        assert!(mgr.provider(ProviderId(2)).is_ok());
    }

    #[test]
    fn unknown_provider_is_error() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::RoundRobin);
        assert!(matches!(
            mgr.provider(ProviderId(9)),
            Err(BlobError::ProviderNotFound(ProviderId(9)))
        ));
    }

    #[test]
    fn allocate_skips_failed_providers() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        mgr.provider(ProviderId(1)).unwrap().fail();
        let ids = mgr.allocate(30).unwrap();
        assert!(!ids.contains(&ProviderId(1)), "{ids:?}");
        assert!(ids.contains(&ProviderId(0)));
        mgr.provider(ProviderId(1)).unwrap().recover();
        assert!(mgr.allocate(30).unwrap().contains(&ProviderId(1)));
    }

    #[test]
    fn allocate_fails_when_all_providers_down() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::Random);
        mgr.provider(ProviderId(0)).unwrap().fail();
        mgr.provider(ProviderId(1)).unwrap().fail();
        assert!(matches!(mgr.allocate(1), Err(BlobError::NoAvailableProvider)));
    }

    #[test]
    fn replica_chain_is_successors_in_registry_order() {
        let mgr = ProviderManager::with_memory_providers(5, AllocationStrategy::RoundRobin);
        assert_eq!(mgr.replicas_of(ProviderId(3), 3).unwrap(), vec![ProviderId(4), ProviderId(0)]);
        assert!(mgr.replicas_of(ProviderId(0), 1).unwrap().is_empty());
        assert!(mgr.replicas_of(ProviderId(9), 2).is_err());
        // Stable across failures: the chain ignores availability.
        mgr.provider(ProviderId(4)).unwrap().fail();
        assert_eq!(mgr.replicas_of(ProviderId(3), 2).unwrap(), vec![ProviderId(4)]);
    }

    #[test]
    fn fallback_sequence_continues_past_the_chain() {
        let mgr = ProviderManager::with_memory_providers(5, AllocationStrategy::RoundRobin);
        // Chain of prov#3 at replication 2 is [prov#4]; fallbacks are
        // the remaining providers in registry order.
        assert_eq!(
            mgr.fallbacks_of(ProviderId(3), 2).unwrap(),
            vec![ProviderId(0), ProviderId(1), ProviderId(2)]
        );
        // Chain + fallbacks partition the deployment.
        assert!(mgr.fallbacks_of(ProviderId(0), 5).unwrap().is_empty());
        assert!(mgr.fallbacks_of(ProviderId(9), 2).is_err());
    }

    #[test]
    fn totals_aggregate() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        fill(&mgr, 8, 128);
        assert_eq!(mgr.total_pages(), 8);
        assert_eq!(mgr.total_stored_bytes(), 8 * 128);
    }
}
