//! The provider manager and its page-to-provider allocation strategies.

use std::sync::Arc;

use blobseer_types::{BlobError, ProviderId, Result};
use parking_lot::RwLock;

use crate::placement::{
    LeastLoadedPolicy, PlacementCandidate, PlacementPolicy, PowerOfTwoPolicy, RandomPolicy,
    RoundRobinPolicy,
};
use crate::provider::{DataProvider, ProviderStats};
use crate::store::{MemoryPageStore, PageStore};

/// Page-to-provider placement policy (paper §3.1: "a strategy aiming at
/// ensuring an even distribution of pages among providers"; §4.3 calls
/// the strategy "central" to minimising serialization conflicts).
///
/// The enum names the built-in policies; at runtime the manager holds
/// the policy as a swappable trait object ([`PlacementPolicy`]), so a
/// deployment can switch strategies live via
/// [`ProviderManager::set_placement`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Deterministic rotation — the baseline "even distribution". Also
    /// what the figure simulations assume, so placement there matches
    /// the real engine exactly.
    RoundRobin,
    /// Uniform random placement (seeded for reproducibility).
    Random,
    /// Always pick the providers currently storing the fewest bytes.
    LeastLoaded,
    /// Two random candidates, keep the less loaded (the classic
    /// power-of-two-choices load balancer).
    PowerOfTwoChoices,
}

impl AllocationStrategy {
    /// Instantiate the built-in [`PlacementPolicy`] this name stands
    /// for. Each call returns a fresh policy object with fresh state
    /// (rotation cursor at zero, RNG at the deployment's fixed seed).
    pub fn policy(self) -> Arc<dyn PlacementPolicy> {
        match self {
            AllocationStrategy::RoundRobin => Arc::new(RoundRobinPolicy::default()),
            AllocationStrategy::Random => Arc::new(RandomPolicy::new()),
            AllocationStrategy::LeastLoaded => Arc::new(LeastLoadedPolicy),
            AllocationStrategy::PowerOfTwoChoices => Arc::new(PowerOfTwoPolicy::new()),
        }
    }
}

/// Point-in-time membership census of the deployment; see
/// [`ProviderManager::membership`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MembershipCounts {
    /// Providers ever registered, including retired tombstones.
    pub registered: usize,
    /// Providers eligible for new page placement (online, not
    /// draining, not retired).
    pub active: usize,
    /// Providers currently draining (read-only, being evacuated).
    pub draining: usize,
    /// Providers retired by a completed drain (empty tombstones that
    /// only anchor replica-chain positions).
    pub retired: usize,
}

/// The provider manager: registry of data providers plus the placement
/// policy. Providers may join dynamically ([`ProviderManager::register`])
/// and leave via drain-then-retire, mirroring the paper's "new data
/// providers may dynamically join and leave the system".
///
/// **Retired providers stay in the registry as tombstones.** Every
/// replica chain and failover sequence is a pure function of registry
/// *positions*, so removing an entry would silently remap every page's
/// copies. Instead, retirement flags the provider and every walk skips
/// it; the position — and with it the determinism of
/// [`Self::replicas_of`]/[`Self::fallbacks_of`] — survives arbitrarily
/// many membership changes.
pub struct ProviderManager {
    providers: RwLock<Vec<Arc<DataProvider>>>,
    policy: RwLock<Arc<dyn PlacementPolicy>>,
}

impl ProviderManager {
    /// Manager over `n` fresh in-memory providers.
    pub fn with_memory_providers(n: usize, strategy: AllocationStrategy) -> Self {
        let providers = (0..n)
            .map(|i| {
                Arc::new(DataProvider::new(ProviderId(i as u32), Arc::new(MemoryPageStore::new())))
            })
            .collect();
        Self::new(providers, strategy)
    }

    /// Manager over pre-built providers.
    pub fn new(providers: Vec<Arc<DataProvider>>, strategy: AllocationStrategy) -> Self {
        assert!(!providers.is_empty(), "at least one data provider required");
        ProviderManager {
            providers: RwLock::new(providers),
            policy: RwLock::new(strategy.policy()),
        }
    }

    /// The active placement policy's name.
    pub fn placement_name(&self) -> &'static str {
        self.policy.read().name()
    }

    /// Hot-swap the placement policy to a built-in strategy. Only new
    /// allocations are affected; every already-stored page keeps its
    /// location and its registry-order replica chain.
    pub fn set_placement(&self, strategy: AllocationStrategy) {
        self.set_placement_policy(strategy.policy());
    }

    /// Hot-swap to an arbitrary [`PlacementPolicy`] implementation.
    pub fn set_placement_policy(&self, policy: Arc<dyn PlacementPolicy>) {
        *self.policy.write() = policy;
    }

    /// Number of registered providers (tombstones included).
    pub fn provider_count(&self) -> usize {
        self.providers.read().len()
    }

    /// Census of the membership states; the source of the
    /// `blobseer_providers_*` gauges.
    pub fn membership(&self) -> MembershipCounts {
        let providers = self.providers.read();
        let mut counts = MembershipCounts { registered: providers.len(), ..Default::default() };
        for p in providers.iter() {
            if p.is_retired() {
                counts.retired += 1;
            } else if p.is_draining() {
                counts.draining += 1;
            } else if p.is_available() {
                counts.active += 1;
            }
        }
        counts
    }

    /// Register a provider that joined the deployment. It lands at the
    /// end of the registry, so every existing replica chain is
    /// unchanged except where it wraps past the former last position —
    /// exactly the chains the repairer already reconciles.
    pub fn register(&self, provider: Arc<DataProvider>) {
        self.providers.write().push(provider);
    }

    /// Register a brand-new provider over `store`, assigning the next
    /// unused id. Returns the new member's id; it is immediately
    /// eligible for placement and failover.
    pub fn add_provider(&self, store: Arc<dyn PageStore>) -> ProviderId {
        let mut providers = self.providers.write();
        let id = ProviderId(providers.iter().map(|p| p.id().raw() + 1).max().unwrap_or(0));
        providers.push(Arc::new(DataProvider::new(id, store)));
        id
    }

    /// Every registered provider still in service (retired tombstones
    /// excluded), in registry order — the sweep list of the orphan
    /// scrubber and repairer (which must visit *all* serving providers,
    /// available or not, and report the offline ones as skipped).
    pub fn all_providers(&self) -> Vec<Arc<DataProvider>> {
        self.providers.read().iter().filter(|p| !p.is_retired()).cloned().collect()
    }

    /// Look up a provider by id. Resolves retired tombstones too —
    /// readers probe a retired primary (and take the miss) rather than
    /// failing the chain walk.
    pub fn provider(&self, id: ProviderId) -> Result<Arc<DataProvider>> {
        self.providers
            .read()
            .iter()
            .find(|p| p.id() == id)
            .cloned()
            .ok_or(BlobError::ProviderNotFound(id))
    }

    /// Choose `n` providers to receive `n` new pages (paper Algorithm 2
    /// line 2: "PP ← the list of n page providers"). Providers repeat
    /// when `n` exceeds the deployment size. Failed, draining and
    /// retired providers are skipped; errors when no provider is
    /// eligible.
    pub fn allocate(&self, n: usize) -> Result<Vec<ProviderId>> {
        let candidates: Vec<PlacementCandidate> = {
            let all = self.providers.read();
            all.iter()
                .filter(|p| p.is_available() && !p.is_draining() && !p.is_retired())
                .map(|p| PlacementCandidate { id: p.id(), stored_bytes: p.stored_bytes() })
                .collect()
        };
        if candidates.is_empty() {
            return Err(BlobError::NoAvailableProvider);
        }
        let policy = Arc::clone(&self.policy.read());
        let picks = policy.place(&candidates, n);
        if picks.len() != n {
            return Err(BlobError::Internal(format!(
                "placement policy '{}' returned {} placements for {} pages",
                policy.name(),
                picks.len(),
                n
            )));
        }
        Ok(picks.into_iter().map(|i| candidates[i % candidates.len()].id).collect())
    }

    /// The live successors of `primary` in registry order (wrapping,
    /// retired tombstones skipped, `exclude` treated as already
    /// retired), plus whether the primary itself still serves. The one
    /// walk every chain derivation shares.
    fn walk(
        &self,
        primary: ProviderId,
        exclude: Option<ProviderId>,
    ) -> Result<(bool, Vec<ProviderId>)> {
        let providers = self.providers.read();
        let idx = providers
            .iter()
            .position(|p| p.id() == primary)
            .ok_or(BlobError::ProviderNotFound(primary))?;
        let serving = |p: &Arc<DataProvider>| !p.is_retired() && Some(p.id()) != exclude;
        let primary_serving = serving(&providers[idx]);
        let n = providers.len();
        let succ = (1..n)
            .map(|i| &providers[(idx + i) % n])
            .filter(|p| serving(p))
            .map(|p| p.id())
            .collect();
        Ok((primary_serving, succ))
    }

    /// The deterministic replica chain of a page whose primary copy is
    /// on `primary`: the `replicas − 1` serving providers that follow
    /// it in registry order. Deriving replica locations from the
    /// primary keeps the metadata tree unchanged (leaves name one
    /// provider) — readers recompute the same chain when the primary is
    /// down.
    ///
    /// The chain is computed over all serving providers, available or
    /// not, so it is stable across failures and recoveries; only
    /// **retirement** (a completed drain) re-derives it, identically
    /// for every reader, writer and repairer.
    pub fn replicas_of(&self, primary: ProviderId, replicas: usize) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let (_, mut succ) = self.walk(primary, None)?;
        succ.truncate(replicas - 1);
        Ok(succ)
    }

    /// The deterministic **failover sequence** of a page: every serving
    /// provider *beyond* the replica chain, in registry order. When a
    /// chain member rejects a store (or a read misses on the whole
    /// chain), the next copy lives on the first of these that is alive
    /// — writers and readers recompute the identical sequence from the
    /// leaf's primary alone, so failover placement needs no extra
    /// metadata, exactly like the chain itself.
    pub fn fallbacks_of(&self, primary: ProviderId, replicas: usize) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let (_, succ) = self.walk(primary, None)?;
        Ok(succ.into_iter().skip(replicas - 1).collect())
    }

    /// Where a page's copies are **expected to live**: the first
    /// `replicas` serving providers at-or-after `primary` in registry
    /// order. With the primary still serving this is `primary` plus
    /// [`Self::replicas_of`]; once the primary retired, its position
    /// still anchors the walk but the chain starts at the first live
    /// successor. The repairer's and GC's notion of the full chain.
    pub fn chain_of(&self, primary: ProviderId, replicas: usize) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let (primary_serving, succ) = self.walk(primary, None)?;
        let mut chain = Vec::with_capacity(replicas);
        if primary_serving {
            chain.push(primary);
        }
        chain.extend(succ.into_iter().take(replicas - chain.len()));
        Ok(chain)
    }

    /// [`Self::chain_of`] as it will read **after** `victim` retires:
    /// the migration targets of a drain. Computing the post-retirement
    /// chain while the victim still serves is what lets the drain fill
    /// copies first and only then retire — readers never observe a
    /// chain whose copies have not been placed yet.
    pub fn chain_after_retire(
        &self,
        primary: ProviderId,
        replicas: usize,
        victim: ProviderId,
    ) -> Result<Vec<ProviderId>> {
        assert!(replicas >= 1);
        let (primary_serving, succ) = self.walk(primary, Some(victim))?;
        let mut chain = Vec::with_capacity(replicas);
        if primary_serving {
            chain.push(primary);
        }
        chain.extend(succ.into_iter().take(replicas - chain.len()));
        Ok(chain)
    }

    /// Stats snapshot for every serving provider.
    pub fn stats(&self) -> Vec<ProviderStats> {
        self.providers.read().iter().filter(|p| !p.is_retired()).map(|p| p.stats()).collect()
    }

    /// Total payload bytes stored across all providers — the physical
    /// footprint used by the storage-efficiency experiment (E3).
    pub fn total_stored_bytes(&self) -> u64 {
        self.providers.read().iter().map(|p| p.stored_bytes()).sum()
    }

    /// Total pages stored across all providers.
    pub fn total_pages(&self) -> usize {
        self.providers.read().iter().map(|p| p.page_count()).sum()
    }
}

impl std::fmt::Debug for ProviderManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProviderManager")
            .field("providers", &self.provider_count())
            .field("placement", &self.placement_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::PageId;
    use bytes::Bytes;

    fn fill(mgr: &ProviderManager, pages: usize, page_bytes: usize) {
        let ids = mgr.allocate(pages).unwrap();
        for (i, id) in ids.iter().enumerate() {
            mgr.provider(*id)
                .unwrap()
                .store_page(PageId(i as u128), Bytes::from(vec![0u8; page_bytes]))
                .unwrap();
        }
    }

    #[test]
    fn round_robin_is_perfectly_even() {
        let mgr = ProviderManager::with_memory_providers(7, AllocationStrategy::RoundRobin);
        let ids = mgr.allocate(70).unwrap();
        let mut counts = vec![0usize; 7];
        for id in ids {
            counts[id.raw() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn round_robin_continues_across_allocations() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        let a = mgr.allocate(3).unwrap();
        let b = mgr.allocate(3).unwrap();
        assert_eq!(a, vec![ProviderId(0), ProviderId(1), ProviderId(2)]);
        assert_eq!(b, vec![ProviderId(3), ProviderId(0), ProviderId(1)]);
    }

    #[test]
    fn random_covers_all_providers_eventually() {
        let mgr = ProviderManager::with_memory_providers(8, AllocationStrategy::Random);
        let ids = mgr.allocate(1000).unwrap();
        let mut seen = [false; 8];
        for id in &ids {
            seen[id.raw() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn least_loaded_prefers_empty_providers() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::LeastLoaded);
        // Pre-load provider 0 heavily.
        mgr.provider(ProviderId(0))
            .unwrap()
            .store_page(PageId(999), Bytes::from(vec![0u8; 10_000]))
            .unwrap();
        let ids = mgr.allocate(2).unwrap();
        assert!(!ids.contains(&ProviderId(0)), "{ids:?}");
    }

    #[test]
    fn power_of_two_choices_balances() {
        let mgr = ProviderManager::with_memory_providers(10, AllocationStrategy::PowerOfTwoChoices);
        for round in 0..100 {
            let ids = mgr.allocate(10).unwrap();
            for (i, id) in ids.iter().enumerate() {
                mgr.provider(*id)
                    .unwrap()
                    .store_page(PageId((round * 100 + i) as u128), Bytes::from(vec![0u8; 100]))
                    .unwrap();
            }
        }
        let stats = mgr.stats();
        let max = stats.iter().map(|s| s.pages).max().unwrap();
        let min = stats.iter().map(|s| s.pages).min().unwrap();
        // p2c keeps the gap tight: no provider more than ~2x any other.
        assert!(max <= min * 2 + 10, "max={max} min={min}");
    }

    #[test]
    fn allocate_more_than_providers_repeats() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::RoundRobin);
        let ids = mgr.allocate(10).unwrap();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn register_grows_deployment() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::RoundRobin);
        assert_eq!(mgr.provider_count(), 2);
        mgr.register(Arc::new(DataProvider::new(ProviderId(2), Arc::new(MemoryPageStore::new()))));
        assert_eq!(mgr.provider_count(), 3);
        assert!(mgr.provider(ProviderId(2)).is_ok());
    }

    #[test]
    fn add_provider_assigns_next_free_id_and_is_eligible() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::RoundRobin);
        let id = mgr.add_provider(Arc::new(MemoryPageStore::new()));
        assert_eq!(id, ProviderId(2));
        assert_eq!(mgr.membership().active, 3);
        // Immediately eligible: a full rotation includes the newcomer.
        assert!(mgr.allocate(3).unwrap().contains(&id));
        // Ids are never reused, even past a retirement.
        mgr.provider(ProviderId(2)).unwrap().retire();
        assert_eq!(mgr.add_provider(Arc::new(MemoryPageStore::new())), ProviderId(3));
    }

    #[test]
    fn unknown_provider_is_error() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::RoundRobin);
        assert!(matches!(
            mgr.provider(ProviderId(9)),
            Err(BlobError::ProviderNotFound(ProviderId(9)))
        ));
    }

    #[test]
    fn allocate_skips_failed_providers() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        mgr.provider(ProviderId(1)).unwrap().fail();
        let ids = mgr.allocate(30).unwrap();
        assert!(!ids.contains(&ProviderId(1)), "{ids:?}");
        assert!(ids.contains(&ProviderId(0)));
        mgr.provider(ProviderId(1)).unwrap().recover();
        assert!(mgr.allocate(30).unwrap().contains(&ProviderId(1)));
    }

    #[test]
    fn allocate_skips_draining_and_retired_providers() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::RoundRobin);
        mgr.provider(ProviderId(0)).unwrap().begin_drain();
        mgr.provider(ProviderId(2)).unwrap().retire();
        let ids = mgr.allocate(10).unwrap();
        assert!(ids.iter().all(|&id| id == ProviderId(1)), "{ids:?}");
        let counts = mgr.membership();
        assert_eq!(
            (counts.registered, counts.active, counts.draining, counts.retired),
            (3, 1, 1, 1)
        );
    }

    #[test]
    fn allocate_fails_when_all_providers_down() {
        let mgr = ProviderManager::with_memory_providers(2, AllocationStrategy::Random);
        mgr.provider(ProviderId(0)).unwrap().fail();
        mgr.provider(ProviderId(1)).unwrap().fail();
        assert!(matches!(mgr.allocate(1), Err(BlobError::NoAvailableProvider)));
    }

    #[test]
    fn set_placement_swaps_live() {
        let mgr = ProviderManager::with_memory_providers(3, AllocationStrategy::RoundRobin);
        assert_eq!(mgr.placement_name(), "round_robin");
        // Load provider 0; least-loaded must now avoid it.
        mgr.provider(ProviderId(0))
            .unwrap()
            .store_page(PageId(1), Bytes::from(vec![0u8; 4096]))
            .unwrap();
        mgr.set_placement(AllocationStrategy::LeastLoaded);
        assert_eq!(mgr.placement_name(), "least_loaded");
        assert!(!mgr.allocate(2).unwrap().contains(&ProviderId(0)));
    }

    #[test]
    fn replica_chain_is_successors_in_registry_order() {
        let mgr = ProviderManager::with_memory_providers(5, AllocationStrategy::RoundRobin);
        assert_eq!(mgr.replicas_of(ProviderId(3), 3).unwrap(), vec![ProviderId(4), ProviderId(0)]);
        assert!(mgr.replicas_of(ProviderId(0), 1).unwrap().is_empty());
        assert!(mgr.replicas_of(ProviderId(9), 2).is_err());
        // Stable across failures: the chain ignores availability.
        mgr.provider(ProviderId(4)).unwrap().fail();
        assert_eq!(mgr.replicas_of(ProviderId(3), 2).unwrap(), vec![ProviderId(4)]);
    }

    #[test]
    fn fallback_sequence_continues_past_the_chain() {
        let mgr = ProviderManager::with_memory_providers(5, AllocationStrategy::RoundRobin);
        // Chain of prov#3 at replication 2 is [prov#4]; fallbacks are
        // the remaining providers in registry order.
        assert_eq!(
            mgr.fallbacks_of(ProviderId(3), 2).unwrap(),
            vec![ProviderId(0), ProviderId(1), ProviderId(2)]
        );
        // Chain + fallbacks partition the deployment.
        assert!(mgr.fallbacks_of(ProviderId(0), 5).unwrap().is_empty());
        assert!(mgr.fallbacks_of(ProviderId(9), 2).is_err());
    }

    #[test]
    fn retirement_rederives_chains_deterministically() {
        let mgr = ProviderManager::with_memory_providers(5, AllocationStrategy::RoundRobin);
        // Before: chain of prov#3 at r=2 is [3, 4].
        assert_eq!(mgr.chain_of(ProviderId(3), 2).unwrap(), vec![ProviderId(3), ProviderId(4)]);
        // The drain previews the post-retirement chain …
        assert_eq!(
            mgr.chain_after_retire(ProviderId(3), 2, ProviderId(4)).unwrap(),
            vec![ProviderId(3), ProviderId(0)]
        );
        // … and after retiring #4, every derivation agrees with it.
        mgr.provider(ProviderId(4)).unwrap().retire();
        assert_eq!(mgr.chain_of(ProviderId(3), 2).unwrap(), vec![ProviderId(3), ProviderId(0)]);
        assert_eq!(mgr.replicas_of(ProviderId(3), 2).unwrap(), vec![ProviderId(0)]);
        assert_eq!(mgr.fallbacks_of(ProviderId(3), 2).unwrap(), vec![ProviderId(1), ProviderId(2)]);
        // A retired *primary* still anchors its position: the chain
        // starts at the first live successor.
        assert_eq!(mgr.chain_of(ProviderId(4), 2).unwrap(), vec![ProviderId(0), ProviderId(1)]);
        assert_eq!(mgr.replicas_of(ProviderId(4), 2).unwrap(), vec![ProviderId(0)]);
        // Tombstones resolve for point lookups but leave the sweep list.
        assert!(mgr.provider(ProviderId(4)).is_ok());
        assert_eq!(mgr.all_providers().len(), 4);
        assert_eq!(mgr.stats().len(), 4);
    }

    #[test]
    fn totals_aggregate() {
        let mgr = ProviderManager::with_memory_providers(4, AllocationStrategy::RoundRobin);
        fill(&mgr, 8, 128);
        assert_eq!(mgr.total_pages(), 8);
        assert_eq!(mgr.total_stored_bytes(), 8 * 128);
    }
}
