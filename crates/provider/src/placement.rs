//! Runtime-swappable page-placement policies.
//!
//! PR 9 lifts [`AllocationStrategy`](crate::AllocationStrategy) from a
//! `match` inside the manager to a trait object the manager holds
//! behind a lock, so a running deployment can hot-swap how new pages
//! are placed (`BlobSeer::set_placement`) without touching any stored
//! data: placement only ever decides where *new* primaries go, while
//! replica chains and failover sequences stay a pure function of the
//! registry order (see `ProviderManager::replicas_of`). Swapping the
//! policy therefore never invalidates a single leaf descriptor.
//!
//! A policy sees one immutable snapshot per allocation — the eligible
//! (online, not draining, not retired) providers with their current
//! load — and returns indices into it. All built-in policies keep
//! their mutable state (rotation counter, RNG) inside the policy
//! object itself, so a fresh policy starts from a fresh state and two
//! managers never share a cursor.

use std::sync::atomic::{AtomicU64, Ordering};

use blobseer_types::ProviderId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One eligible provider as the placement policy sees it: identity
/// plus current payload load. A snapshot — the policy must not assume
/// the load is still exact by the time its pages land.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementCandidate {
    /// The provider's id.
    pub id: ProviderId,
    /// Payload bytes it currently stores.
    pub stored_bytes: u64,
}

/// A page-to-provider placement policy (paper §3.1: "a strategy aiming
/// at ensuring an even distribution of pages among providers").
///
/// `place` chooses, for `n` new pages, the index (into `candidates`)
/// of each page's **primary** provider. Candidates are the currently
/// eligible providers in registry order and are never empty. Returned
/// indices are taken modulo `candidates.len()`, so a sloppy custom
/// policy degrades to wraparound instead of a panic.
pub trait PlacementPolicy: Send + Sync {
    /// Short policy name, surfaced in `Debug` output and reports.
    fn name(&self) -> &'static str;
    /// Choose a candidate index for each of `n` pages.
    fn place(&self, candidates: &[PlacementCandidate], n: usize) -> Vec<usize>;
}

/// Deterministic rotation — the baseline "even distribution". The
/// cursor lives in the policy object and survives across allocations.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    next: AtomicU64,
}

impl PlacementPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn place(&self, candidates: &[PlacementCandidate], n: usize) -> Vec<usize> {
        let count = candidates.len() as u64;
        let start = self.next.fetch_add(n as u64, Ordering::Relaxed);
        (0..n as u64).map(|i| ((start + i) % count) as usize).collect()
    }
}

/// Uniform random placement, seeded for reproducibility.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: Mutex<StdRng>,
}

impl RandomPolicy {
    /// Policy with the deployment's fixed default seed.
    pub fn new() -> Self {
        RandomPolicy { rng: Mutex::new(StdRng::seed_from_u64(0x5eed_b10b)) }
    }
}

impl Default for RandomPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&self, candidates: &[PlacementCandidate], n: usize) -> Vec<usize> {
        let mut rng = self.rng.lock();
        (0..n).map(|_| rng.gen_range(0..candidates.len())).collect()
    }
}

/// Always pick the providers currently storing the fewest bytes: sort
/// once per allocation, then deal pages round-robin over that order so
/// a single large allocation still spreads.
#[derive(Debug, Default)]
pub struct LeastLoadedPolicy;

impl PlacementPolicy for LeastLoadedPolicy {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn place(&self, candidates: &[PlacementCandidate], n: usize) -> Vec<usize> {
        let mut by_load: Vec<usize> = (0..candidates.len()).collect();
        by_load.sort_by_key(|&i| (candidates[i].stored_bytes, candidates[i].id.raw()));
        (0..n).map(|i| by_load[i % by_load.len()]).collect()
    }
}

/// Two random candidates, keep the less loaded (the classic
/// power-of-two-choices balancer).
#[derive(Debug)]
pub struct PowerOfTwoPolicy {
    rng: Mutex<StdRng>,
}

impl PowerOfTwoPolicy {
    /// Policy with the deployment's fixed default seed.
    pub fn new() -> Self {
        PowerOfTwoPolicy { rng: Mutex::new(StdRng::seed_from_u64(0x5eed_b10b)) }
    }
}

impl Default for PowerOfTwoPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for PowerOfTwoPolicy {
    fn name(&self) -> &'static str {
        "power_of_two_choices"
    }

    fn place(&self, candidates: &[PlacementCandidate], n: usize) -> Vec<usize> {
        let mut rng = self.rng.lock();
        (0..n)
            .map(|_| {
                let a = rng.gen_range(0..candidates.len());
                let b = rng.gen_range(0..candidates.len());
                if candidates[a].stored_bytes <= candidates[b].stored_bytes {
                    a
                } else {
                    b
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(loads: &[u64]) -> Vec<PlacementCandidate> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &stored_bytes)| PlacementCandidate { id: ProviderId(i as u32), stored_bytes })
            .collect()
    }

    #[test]
    fn round_robin_rotates_across_calls() {
        let p = RoundRobinPolicy::default();
        let c = candidates(&[0, 0, 0]);
        assert_eq!(p.place(&c, 4), vec![0, 1, 2, 0]);
        assert_eq!(p.place(&c, 2), vec![1, 2]);
    }

    #[test]
    fn least_loaded_deals_from_the_lightest() {
        let p = LeastLoadedPolicy;
        let c = candidates(&[500, 10, 100]);
        assert_eq!(p.place(&c, 3), vec![1, 2, 0]);
    }

    #[test]
    fn power_of_two_never_picks_strictly_heavier_of_the_pair() {
        let p = PowerOfTwoPolicy::new();
        // With one hugely loaded candidate among light ones, p2c picks
        // it only when both random draws land on it: rare.
        let c = candidates(&[0, 1_000_000, 0, 0]);
        let picks = p.place(&c, 200);
        let heavy = picks.iter().filter(|&&i| i == 1).count();
        assert!(heavy < 40, "heavy candidate picked {heavy}/200 times");
    }
}
