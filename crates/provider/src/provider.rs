//! A single data provider node.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use blobseer_types::{page_checksum, BlobError, PageId, ProviderId, Result};
use bytes::Bytes;
use parking_lot::RwLock;

use crate::store::PageStore;

/// One storage node: a page store plus request counters.
///
/// The counters let benches observe per-provider load imbalance — the
/// paper notes that "data access serialization is only necessary when
/// the same provider is contacted at the same time by different
/// clients" (§4.3), so skew here is the real engine's analogue of the
/// contention the simulator models with queues.
///
/// Every stored page carries a **checksum sidecar** entry
/// ([`blobseer_types::page_checksum`] of the payload, recorded at store
/// time) that is verified on every fetch. The checksum deliberately
/// lives *next to* the store, never inside the payload: stored `Bytes`
/// stay byte-identical (and pointer-identical, for the zero-copy write
/// path) to what the client handed over. A failed verification surfaces
/// as [`BlobError::PageCorrupt`] and bumps `corrupt_detected`; callers
/// treat it as a miss and fall through to the next replica.
pub struct DataProvider {
    id: ProviderId,
    store: Arc<dyn PageStore>,
    checksums: RwLock<HashMap<PageId, u64>>,
    available: AtomicBool,
    draining: AtomicBool,
    retired: AtomicBool,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    scrub_passes: AtomicU64,
    pages_scrubbed: AtomicU64,
    bytes_scrubbed: AtomicU64,
    corrupt_detected: AtomicU64,
    pages_repaired: AtomicU64,
    bytes_repaired: AtomicU64,
}

impl DataProvider {
    /// Wrap a store as provider `id`.
    pub fn new(id: ProviderId, store: Arc<dyn PageStore>) -> Self {
        DataProvider {
            id,
            store,
            checksums: RwLock::new(HashMap::new()),
            available: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
            pages_scrubbed: AtomicU64::new(0),
            bytes_scrubbed: AtomicU64::new(0),
            corrupt_detected: AtomicU64::new(0),
            pages_repaired: AtomicU64::new(0),
            bytes_repaired: AtomicU64::new(0),
        }
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// Failure injection: take the provider offline. Stored pages are
    /// retained (a crashed node, not a wiped one); every request fails
    /// with [`BlobError::ProviderUnavailable`] until [`Self::recover`].
    pub fn fail(&self) {
        self.available.store(false, Ordering::SeqCst);
    }

    /// Bring a failed provider back online.
    pub fn recover(&self) {
        self.available.store(true, Ordering::SeqCst);
    }

    /// `true` when the provider accepts requests.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    fn check_available(&self) -> Result<()> {
        if self.is_available() {
            Ok(())
        } else {
            Err(BlobError::ProviderUnavailable(self.id))
        }
    }

    /// Put the provider into **draining** (read-only) mode: fetches,
    /// scans and deletions keep working so its pages can be migrated
    /// off, but every new [`Self::store_page`] is refused with
    /// [`BlobError::ProviderUnavailable`] — the same typed error as a
    /// crash, so the write path's existing failover re-places the copy
    /// on a healthy provider without learning a new protocol.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Leave draining mode (a drain that aborted); the provider
    /// accepts stores again.
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::SeqCst);
    }

    /// `true` while the provider is draining (read-only).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Permanently remove the provider from service after a successful
    /// drain. Retired providers stay registered as **tombstones** — the
    /// registry index anchors every replica-chain walk, so positions
    /// must never shift — but they are skipped by placement, replica
    /// chains and maintenance sweeps. Irreversible.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
        self.draining.store(false, Ordering::SeqCst);
    }

    /// `true` once the provider was retired by a completed drain.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    /// Store a page on this provider. The payload's checksum is
    /// recorded in the sidecar only after the store succeeded, so a
    /// failed store leaves no phantom expectation behind.
    pub fn store_page(&self, pid: PageId, data: Bytes) -> Result<()> {
        self.check_available()?;
        // Draining and retired providers are write-side unavailable
        // (reads keep flowing): refusing here is what guarantees the
        // drain's victim page set only ever shrinks.
        if self.is_draining() || self.is_retired() {
            return Err(BlobError::ProviderUnavailable(self.id));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        let sum = page_checksum(&data);
        self.store.store(pid, data)?;
        self.checksums.write().insert(pid, sum);
        Ok(())
    }

    /// Store a page copy on behalf of the replica repairer
    /// ([`Self::store_page`] plus the lifetime repair counters in
    /// [`ProviderStats`]). Also used to *replace* a copy that failed
    /// verification — the one legitimate overwrite of differing
    /// content, since the old bytes were provably not the page.
    pub fn store_repaired_page(&self, pid: PageId, data: Bytes) -> Result<()> {
        let len = data.len() as u64;
        self.store_page(pid, data)?;
        self.pages_repaired.fetch_add(1, Ordering::Relaxed);
        self.bytes_repaired.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Checksum-verify `page` against the sidecar entry for `pid`.
    ///
    /// A page with no sidecar entry (stored before this provider
    /// wrapped the backing store — e.g. a recovered [`crate::FilePageStore`]
    /// directory) cannot be judged; its current checksum is *adopted*
    /// so later rot is still caught.
    fn verify(&self, pid: PageId, page: &Bytes) -> Result<()> {
        let actual = page_checksum(page);
        match self.checksums.read().get(&pid).copied() {
            Some(expected) if expected == actual => return Ok(()),
            Some(_) => {
                self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                return Err(BlobError::PageCorrupt { pid, provider: self.id });
            }
            None => {}
        }
        self.checksums.write().insert(pid, actual);
        Ok(())
    }

    /// Fetch a whole page, checksum-verified.
    pub fn fetch_page(&self, pid: PageId) -> Result<Bytes> {
        self.check_available()?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let out =
            self.store.fetch(pid).map_err(|_| BlobError::PageMissing { pid, provider: self.id })?;
        self.verify(pid, &out)?;
        self.bytes_read.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Fetch part of a page, checksum-verified.
    ///
    /// Verification is whole-page by construction (the checksum covers
    /// the full payload), so this fetches the page and slices the range
    /// out of it — free for the in-memory store (`Bytes` windows share
    /// the allocation) and the price of integrity for file-backed ones.
    pub fn fetch_page_range(&self, pid: PageId, offset: u64, len: u64) -> Result<Bytes> {
        self.check_available()?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let page =
            self.store.fetch(pid).map_err(|_| BlobError::PageMissing { pid, provider: self.id })?;
        self.verify(pid, &page)?;
        let off = offset as usize;
        let end = off + len as usize;
        if end > page.len() {
            return Err(BlobError::Storage(format!(
                "range [{offset}, {end}) exceeds page of {} bytes",
                page.len()
            )));
        }
        let out = page.slice(off..end);
        self.bytes_read.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// `true` when the page is stored here.
    pub fn has_page(&self, pid: PageId) -> bool {
        self.store.contains(pid)
    }

    /// Delete a page (garbage collection); returns the bytes freed, or
    /// `None` when the page was not stored here.
    pub fn delete_page(&self, pid: PageId) -> Result<Option<u64>> {
        self.check_available()?;
        self.delete_tracked(pid)
    }

    /// Delete from the store and drop the checksum sidecar entry with
    /// it — every deletion path (GC, scrub, repair trimming) funnels
    /// through here so the sidecar never outlives its page.
    fn delete_tracked(&self, pid: PageId) -> Result<Option<u64>> {
        let out = self.store.delete(pid)?;
        self.checksums.write().remove(&pid);
        Ok(out)
    }

    /// Enumerate the pages stored here as `(pid, payload bytes)` pairs
    /// (weakly consistent under concurrency; see [`PageStore::scan`]).
    /// Like every request, fails typed while the provider is offline.
    pub fn scan_pages(&self) -> Result<Vec<(PageId, u64)>> {
        self.check_available()?;
        self.store.scan()
    }

    /// The orphan-scrub hook: scan this provider's store and delete
    /// every page `condemned` says is dead. The predicate is consulted
    /// once per stored page; deletions racing concurrent writers are
    /// safe because pages are immutable and `condemned` is required
    /// (by the caller's mark/epoch protocol) to never condemn a page a
    /// live tree references. Returns this pass's outcome and bumps the
    /// provider's lifetime scrub counters ([`ProviderStats`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use blobseer_provider::{DataProvider, MemoryPageStore};
    /// use blobseer_types::{PageId, ProviderId};
    ///
    /// let p = DataProvider::new(ProviderId(0), Arc::new(MemoryPageStore::new()));
    /// p.store_page(PageId(1), bytes::Bytes::from_static(b"live"))?;
    /// p.store_page(PageId(2), bytes::Bytes::from_static(b"orphan"))?;
    /// let pass = p.scrub(&|pid| pid == PageId(2))?;
    /// assert_eq!((pass.pages_scanned, pass.pages_reclaimed, pass.bytes_reclaimed), (2, 1, 6));
    /// assert!(p.has_page(PageId(1)) && !p.has_page(PageId(2)));
    /// # Ok::<(), blobseer_types::BlobError>(())
    /// ```
    pub fn scrub(&self, condemned: &(dyn Fn(PageId) -> bool + Sync)) -> Result<ScrubPass> {
        self.check_available()?;
        let mut pass = ScrubPass::default();
        for (pid, _) in self.store.scan()? {
            pass.pages_scanned += 1;
            if !condemned(pid) {
                continue;
            }
            // The store's own accounting (delete returns the payload
            // length) is authoritative — the scanned length could be
            // stale if the page raced an overwrite-retry. A delete
            // *error* must not abort the pass: earlier deletions
            // already happened, and dropping them from the outcome
            // would corrupt every byte count downstream. Count the
            // failure and keep sweeping; the page is retried next
            // pass.
            match self.delete_tracked(pid) {
                Ok(Some(bytes)) => {
                    pass.pages_reclaimed += 1;
                    pass.bytes_reclaimed += bytes;
                }
                Ok(None) => {}
                Err(_) => pass.pages_failed += 1,
            }
        }
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        self.pages_scrubbed.fetch_add(pass.pages_reclaimed, Ordering::Relaxed);
        self.bytes_scrubbed.fetch_add(pass.bytes_reclaimed, Ordering::Relaxed);
        Ok(pass)
    }

    /// Pages currently stored.
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }

    /// Payload bytes currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.store.stored_bytes()
    }

    /// Snapshot of access counters.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats {
            id: self.id,
            pages: self.store.page_count(),
            stored_bytes: self.store.stored_bytes(),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            pages_scrubbed: self.pages_scrubbed.load(Ordering::Relaxed),
            bytes_scrubbed: self.bytes_scrubbed.load(Ordering::Relaxed),
            corrupt_detected: self.corrupt_detected.load(Ordering::Relaxed),
            pages_repaired: self.pages_repaired.load(Ordering::Relaxed),
            bytes_repaired: self.bytes_repaired.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for DataProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataProvider")
            .field("id", &self.id)
            .field("pages", &self.page_count())
            .finish()
    }
}

/// Point-in-time counters for one provider.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProviderStats {
    /// Provider id.
    pub id: ProviderId,
    /// Pages stored.
    pub pages: usize,
    /// Payload bytes stored.
    pub stored_bytes: u64,
    /// Lifetime page reads served.
    pub reads: u64,
    /// Lifetime page writes served.
    pub writes: u64,
    /// Lifetime bytes served to readers.
    pub bytes_read: u64,
    /// Lifetime bytes accepted from writers.
    pub bytes_written: u64,
    /// Lifetime orphan-scrub passes over this provider.
    pub scrub_passes: u64,
    /// Lifetime pages deleted by orphan scrubs.
    pub pages_scrubbed: u64,
    /// Lifetime payload bytes reclaimed by orphan scrubs.
    pub bytes_scrubbed: u64,
    /// Lifetime fetches that failed checksum verification here.
    pub corrupt_detected: u64,
    /// Lifetime page copies written onto this provider by the replica
    /// repairer (fills and corrupt-copy replacements).
    pub pages_repaired: u64,
    /// Lifetime payload bytes those repair writes carried.
    pub bytes_repaired: u64,
}

/// Outcome of one [`DataProvider::scrub`] pass over one provider.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubPass {
    /// Pages the pass inspected.
    pub pages_scanned: u64,
    /// Condemned pages actually deleted.
    pub pages_reclaimed: u64,
    /// Payload bytes those deletions freed.
    pub bytes_reclaimed: u64,
    /// Condemned pages whose delete *errored* (storage-level I/O
    /// failure, not "already gone"). They stay stored and are retried
    /// by the next pass; reclaimed counts above stay exact either way.
    pub pages_failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryPageStore;

    fn provider() -> DataProvider {
        DataProvider::new(ProviderId(7), Arc::new(MemoryPageStore::new()))
    }

    #[test]
    fn store_fetch_roundtrip_with_stats() {
        let p = provider();
        p.store_page(PageId(1), Bytes::from_static(b"abcdef")).unwrap();
        assert_eq!(p.fetch_page(PageId(1)).unwrap(), Bytes::from_static(b"abcdef"));
        assert_eq!(p.fetch_page_range(PageId(1), 2, 3).unwrap(), Bytes::from_static(b"cde"));
        let s = p.stats();
        assert_eq!(s.id, ProviderId(7));
        assert_eq!(s.pages, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 6);
        assert_eq!(s.bytes_read, 9);
    }

    #[test]
    fn missing_page_is_typed_error() {
        let p = provider();
        match p.fetch_page(PageId(99)) {
            Err(BlobError::PageMissing { pid, provider }) => {
                assert_eq!(pid, PageId(99));
                assert_eq!(provider, ProviderId(7));
            }
            other => panic!("expected PageMissing, got {other:?}"),
        }
        assert!(matches!(p.fetch_page_range(PageId(99), 0, 1), Err(BlobError::PageMissing { .. })));
    }

    #[test]
    fn has_page_reflects_store() {
        let p = provider();
        assert!(!p.has_page(PageId(5)));
        p.store_page(PageId(5), Bytes::from_static(b"x")).unwrap();
        assert!(p.has_page(PageId(5)));
    }

    #[test]
    fn scrub_deletes_condemned_pages_and_counts() {
        let p = provider();
        p.store_page(PageId(1), Bytes::from_static(b"live")).unwrap();
        p.store_page(PageId(2), Bytes::from_static(b"orphaned!")).unwrap();
        p.store_page(PageId(3), Bytes::from_static(b"dead")).unwrap();
        let mut scanned = p.scan_pages().unwrap();
        scanned.sort_unstable();
        assert_eq!(scanned, vec![(PageId(1), 4), (PageId(2), 9), (PageId(3), 4)]);

        let pass = p.scrub(&|pid| pid != PageId(1)).unwrap();
        assert_eq!(
            pass,
            ScrubPass {
                pages_scanned: 3,
                pages_reclaimed: 2,
                bytes_reclaimed: 13,
                pages_failed: 0
            }
        );
        assert!(p.has_page(PageId(1)));
        assert!(!p.has_page(PageId(2)));
        assert_eq!(p.stored_bytes(), 4);

        // A second pass finds nothing condemned; lifetime counters
        // accumulate across passes.
        let pass2 = p.scrub(&|pid| pid != PageId(1)).unwrap();
        assert_eq!(
            pass2,
            ScrubPass { pages_scanned: 1, pages_reclaimed: 0, bytes_reclaimed: 0, pages_failed: 0 }
        );
        let s = p.stats();
        assert_eq!(s.scrub_passes, 2);
        assert_eq!(s.pages_scrubbed, 2);
        assert_eq!(s.bytes_scrubbed, 13);
    }

    #[test]
    fn offline_provider_rejects_scan_and_scrub() {
        let p = provider();
        p.store_page(PageId(1), Bytes::from_static(b"kept")).unwrap();
        p.fail();
        assert!(matches!(p.scan_pages(), Err(BlobError::ProviderUnavailable(_))));
        assert!(matches!(p.scrub(&|_| true), Err(BlobError::ProviderUnavailable(_))));
        p.recover();
        // The failed pass did not count and the data survived.
        assert_eq!(p.stats().scrub_passes, 0);
        assert!(p.has_page(PageId(1)));
    }

    #[test]
    fn corrupt_copy_fails_typed_and_counts() {
        let store = Arc::new(MemoryPageStore::new());
        let p = DataProvider::new(ProviderId(7), Arc::clone(&store) as Arc<dyn PageStore>);
        p.store_page(PageId(1), Bytes::from_static(b"healthy payload")).unwrap();
        // Corrupt the stored copy *underneath* the provider, the way
        // bit rot would: the sidecar checksum still expects the
        // original bytes.
        store.store(PageId(1), Bytes::from_static(b"heolthy payload")).unwrap();
        match p.fetch_page(PageId(1)) {
            Err(BlobError::PageCorrupt { pid, provider }) => {
                assert_eq!(pid, PageId(1));
                assert_eq!(provider, ProviderId(7));
            }
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
        assert!(matches!(p.fetch_page_range(PageId(1), 0, 4), Err(BlobError::PageCorrupt { .. })));
        assert_eq!(p.stats().corrupt_detected, 2);
        // Repair overwrites with verified bytes; fetches recover.
        p.store_repaired_page(PageId(1), Bytes::from_static(b"healthy payload")).unwrap();
        assert_eq!(p.fetch_page(PageId(1)).unwrap(), Bytes::from_static(b"healthy payload"));
        let s = p.stats();
        assert_eq!((s.pages_repaired, s.bytes_repaired), (1, 15));
    }

    #[test]
    fn preexisting_page_checksum_is_adopted_on_first_fetch() {
        let store = Arc::new(MemoryPageStore::new());
        store.store(PageId(3), Bytes::from_static(b"from before")).unwrap();
        let p = DataProvider::new(ProviderId(1), Arc::clone(&store) as Arc<dyn PageStore>);
        // No sidecar entry: unjudgeable, accepted and adopted …
        assert_eq!(p.fetch_page(PageId(3)).unwrap(), Bytes::from_static(b"from before"));
        // … after which rot *is* caught.
        store.store(PageId(3), Bytes::from_static(b"fron before")).unwrap();
        assert!(matches!(p.fetch_page(PageId(3)), Err(BlobError::PageCorrupt { .. })));
    }

    #[test]
    fn delete_clears_the_sidecar_entry() {
        let p = provider();
        p.store_page(PageId(4), Bytes::from_static(b"first life")).unwrap();
        assert_eq!(p.delete_page(PageId(4)).unwrap(), Some(10));
        // Re-storing different content under the same pid must not trip
        // a stale checksum (GC reuses nothing, but scrub + re-repair
        // can legitimately re-store).
        p.store_page(PageId(4), Bytes::from_static(b"second")).unwrap();
        assert_eq!(p.fetch_page(PageId(4)).unwrap(), Bytes::from_static(b"second"));
    }

    #[test]
    fn draining_provider_is_read_only() {
        let p = provider();
        p.store_page(PageId(1), Bytes::from_static(b"kept")).unwrap();
        p.begin_drain();
        assert!(p.is_draining() && p.is_available());
        // Writes refuse with the same typed error as a crash …
        assert!(matches!(
            p.store_page(PageId(2), Bytes::from_static(b"no")),
            Err(BlobError::ProviderUnavailable(ProviderId(7)))
        ));
        // … while the read/migrate side keeps working.
        assert_eq!(p.fetch_page(PageId(1)).unwrap(), Bytes::from_static(b"kept"));
        assert_eq!(p.scan_pages().unwrap(), vec![(PageId(1), 4)]);
        assert_eq!(p.delete_page(PageId(1)).unwrap(), Some(4));
        p.end_drain();
        assert!(!p.is_draining());
        p.store_page(PageId(2), Bytes::from_static(b"yes")).unwrap();
    }

    #[test]
    fn retired_provider_rejects_stores_for_good() {
        let p = provider();
        p.begin_drain();
        p.retire();
        assert!(p.is_retired() && !p.is_draining() && p.is_available());
        assert!(matches!(
            p.store_page(PageId(1), Bytes::from_static(b"no")),
            Err(BlobError::ProviderUnavailable(_))
        ));
    }

    #[test]
    fn failed_provider_rejects_requests_but_keeps_data() {
        let p = provider();
        p.store_page(PageId(1), Bytes::from_static(b"kept")).unwrap();
        p.fail();
        assert!(!p.is_available());
        assert!(matches!(
            p.store_page(PageId(2), Bytes::from_static(b"no")),
            Err(BlobError::ProviderUnavailable(ProviderId(7)))
        ));
        assert!(matches!(p.fetch_page(PageId(1)), Err(BlobError::ProviderUnavailable(_))));
        assert!(matches!(
            p.fetch_page_range(PageId(1), 0, 1),
            Err(BlobError::ProviderUnavailable(_))
        ));
        p.recover();
        assert_eq!(p.fetch_page(PageId(1)).unwrap(), Bytes::from_static(b"kept"));
    }
}
