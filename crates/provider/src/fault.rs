//! Composable fault injection for page stores.
//!
//! [`FaultPlan`] wraps any [`PageStore`] and injects the provider
//! failure modes the paper's availability story must survive:
//!
//! * **offline** — every request errors until the plan is cleared
//!   (a crashed node whose disk survives);
//! * **one-shot I/O errors** — the next *n* stores/fetches fail, then
//!   service resumes (a flaky NIC, a timed-out RPC);
//! * **probabilistic I/O errors** — each store/fetch fails with
//!   probability `p`, drawn from a **seeded** RNG so every run of a
//!   test replays the same fault schedule;
//! * **latency** — every request sleeps first (a degraded disk);
//! * **bit-flip corruption** — the stored copy differs from the caller's
//!   payload by one flipped bit (silent media rot). The caller's
//!   `Bytes` is never mutated — corruption happens on a private copy —
//!   so zero-copy aliasing with the client buffer stays intact and the
//!   oracle a test compares against is never poisoned.
//!
//! The plan sits *below* [`crate::DataProvider`], which means the
//! provider's checksum sidecar sees the faults exactly the way it would
//! see real ones: a corrupted store is detected on the next fetch, an
//! injected error is indistinguishable from a genuine storage failure.
//!
//! All knobs are interior-mutable (`&self`): tests keep one
//! `Arc<FaultPlan>` clone as a control handle while the engine owns the
//! other through its provider.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blobseer_types::{BlobError, PageId, Result};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::store::PageStore;

/// A fault-injecting [`PageStore`] wrapper; see the module docs.
pub struct FaultPlan {
    inner: Arc<dyn PageStore>,
    offline: AtomicBool,
    fail_next_stores: AtomicU64,
    fail_next_fetches: AtomicU64,
    /// `f64::to_bits` of the per-request error probability (0.0 = off).
    error_prob_bits: AtomicU64,
    corrupt_next_stores: AtomicU64,
    /// Injected latency per request, in microseconds (0 = off).
    latency_micros: AtomicU64,
    rng: Mutex<StdRng>,
    injected_errors: AtomicU64,
    injected_corruptions: AtomicU64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("offline", &self.offline.load(Ordering::Relaxed))
            .field("injected_errors", &self.injected_errors.load(Ordering::Relaxed))
            .field("injected_corruptions", &self.injected_corruptions.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// Wrap `inner` with no faults armed and a default RNG seed.
    pub fn new(inner: Arc<dyn PageStore>) -> Self {
        Self::with_seed(inner, 0xfau64)
    }

    /// Wrap `inner` with `seed` driving every probabilistic decision
    /// (error draws and corrupt-bit positions). Same seed + same
    /// request sequence = same fault schedule.
    pub fn with_seed(inner: Arc<dyn PageStore>, seed: u64) -> Self {
        FaultPlan {
            inner,
            offline: AtomicBool::new(false),
            fail_next_stores: AtomicU64::new(0),
            fail_next_fetches: AtomicU64::new(0),
            error_prob_bits: AtomicU64::new(0f64.to_bits()),
            corrupt_next_stores: AtomicU64::new(0),
            latency_micros: AtomicU64::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected_errors: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
        }
    }

    /// Take the store offline (`true`) or back online (`false`). While
    /// offline every request fails; stored pages are retained.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::SeqCst);
    }

    /// Arm one-shot store errors: the next `n` stores fail.
    pub fn fail_next_stores(&self, n: u64) {
        self.fail_next_stores.store(n, Ordering::SeqCst);
    }

    /// Arm one-shot fetch errors: the next `n` fetches fail.
    pub fn fail_next_fetches(&self, n: u64) {
        self.fail_next_fetches.store(n, Ordering::SeqCst);
    }

    /// Every store/fetch fails with probability `p` (0.0 disables).
    pub fn set_error_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.error_prob_bits.store(p.to_bits(), Ordering::SeqCst);
    }

    /// Arm bit-flip corruption: the next `n` stores flip one
    /// RNG-chosen bit in a private copy of the payload before it
    /// reaches the inner store.
    pub fn corrupt_next_stores(&self, n: u64) {
        self.corrupt_next_stores.store(n, Ordering::SeqCst);
    }

    /// Every request sleeps `latency` first (zero disables).
    pub fn set_latency(&self, latency: Duration) {
        self.latency_micros.store(latency.as_micros() as u64, Ordering::SeqCst);
    }

    /// Flip one RNG-chosen bit of a page already in the inner store —
    /// media rot striking at rest rather than in flight. Returns `true`
    /// if the page existed (and is now corrupt).
    pub fn corrupt_stored_page(&self, pid: PageId) -> Result<bool> {
        let page = match self.inner.fetch(pid) {
            Ok(p) => p,
            Err(_) => return Ok(false),
        };
        let flipped = self.flip_one_bit(&page);
        self.inner.store(pid, flipped)?;
        self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Lifetime injected request errors (one-shot + probabilistic +
    /// offline rejections).
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::Relaxed)
    }

    /// Lifetime payload corruptions injected (on-store and at-rest).
    pub fn injected_corruptions(&self) -> u64 {
        self.injected_corruptions.load(Ordering::Relaxed)
    }

    /// Copy `data` with one RNG-chosen bit flipped (empty payloads pass
    /// through untouched — nothing to flip).
    fn flip_one_bit(&self, data: &Bytes) -> Bytes {
        if data.is_empty() {
            return data.clone();
        }
        let mut copy = data.to_vec();
        let mut rng = self.rng.lock();
        let byte = rng.gen_range(0..copy.len());
        let bit = rng.gen_range(0..8u32);
        copy[byte] ^= 1 << bit;
        Bytes::from(copy)
    }

    /// Common request gate: latency, offline, one-shot and
    /// probabilistic errors, in that order.
    fn gate(&self, what: &str, one_shot: &AtomicU64) -> Result<()> {
        let micros = self.latency_micros.load(Ordering::SeqCst);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
        if self.offline.load(Ordering::SeqCst) {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::Storage(format!("injected fault: store offline ({what})")));
        }
        // Decrement-if-positive without underflow under concurrency.
        let mut armed = one_shot.load(Ordering::SeqCst);
        while armed > 0 {
            match one_shot.compare_exchange_weak(
                armed,
                armed - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.injected_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(BlobError::Storage(format!(
                        "injected fault: one-shot {what} error"
                    )));
                }
                Err(now) => armed = now,
            }
        }
        let p = f64::from_bits(self.error_prob_bits.load(Ordering::SeqCst));
        if p > 0.0 && self.rng.lock().gen_bool(p) {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::Storage(format!("injected fault: probabilistic {what} error")));
        }
        Ok(())
    }

    /// Consume one armed on-store corruption, if any.
    fn take_corruption(&self) -> bool {
        let mut armed = self.corrupt_next_stores.load(Ordering::SeqCst);
        while armed > 0 {
            match self.corrupt_next_stores.compare_exchange_weak(
                armed,
                armed - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(now) => armed = now,
            }
        }
        false
    }
}

impl PageStore for FaultPlan {
    fn store(&self, pid: PageId, data: Bytes) -> Result<()> {
        self.gate("store", &self.fail_next_stores)?;
        let data = if self.take_corruption() {
            self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
            self.flip_one_bit(&data)
        } else {
            data
        };
        self.inner.store(pid, data)
    }

    fn fetch(&self, pid: PageId) -> Result<Bytes> {
        self.gate("fetch", &self.fail_next_fetches)?;
        self.inner.fetch(pid)
    }

    fn fetch_range(&self, pid: PageId, offset: u64, len: u64) -> Result<Bytes> {
        self.gate("fetch", &self.fail_next_fetches)?;
        self.inner.fetch_range(pid, offset, len)
    }

    fn contains(&self, pid: PageId) -> bool {
        self.inner.contains(pid)
    }

    fn delete(&self, pid: PageId) -> Result<Option<u64>> {
        self.gate("delete", &self.fail_next_stores)?;
        self.inner.delete(pid)
    }

    fn scan(&self) -> Result<Vec<(PageId, u64)>> {
        // Scans (scrub/repair enumeration) honour *offline* only: the
        // transient-error knobs model per-request flakiness, and a scan
        // is the one request whose spurious failure would make a whole
        // provider look unenumerable.
        if self.offline.load(Ordering::SeqCst) {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::Storage("injected fault: store offline (scan)".into()));
        }
        self.inner.scan()
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryPageStore;
    use crate::DataProvider;
    use blobseer_types::ProviderId;

    fn plan() -> (Arc<FaultPlan>, Arc<MemoryPageStore>) {
        let mem = Arc::new(MemoryPageStore::new());
        let plan = Arc::new(FaultPlan::with_seed(Arc::clone(&mem) as Arc<dyn PageStore>, 42));
        (plan, mem)
    }

    #[test]
    fn transparent_when_no_faults_armed() {
        let (plan, _) = plan();
        plan.store(PageId(1), Bytes::from_static(b"payload")).unwrap();
        assert_eq!(plan.fetch(PageId(1)).unwrap(), Bytes::from_static(b"payload"));
        assert_eq!(plan.fetch_range(PageId(1), 0, 3).unwrap(), Bytes::from_static(b"pay"));
        assert_eq!(plan.scan().unwrap(), vec![(PageId(1), 7)]);
        assert_eq!(plan.injected_errors(), 0);
    }

    #[test]
    fn offline_fails_everything_then_recovers() {
        let (plan, _) = plan();
        plan.store(PageId(1), Bytes::from_static(b"kept")).unwrap();
        plan.set_offline(true);
        assert!(plan.store(PageId(2), Bytes::from_static(b"no")).is_err());
        assert!(plan.fetch(PageId(1)).is_err());
        assert!(plan.scan().is_err());
        plan.set_offline(false);
        assert_eq!(plan.fetch(PageId(1)).unwrap(), Bytes::from_static(b"kept"));
        assert_eq!(plan.injected_errors(), 3);
    }

    #[test]
    fn one_shot_errors_consume_then_clear() {
        let (plan, _) = plan();
        plan.fail_next_stores(2);
        assert!(plan.store(PageId(1), Bytes::from_static(b"a")).is_err());
        assert!(plan.store(PageId(1), Bytes::from_static(b"a")).is_err());
        plan.store(PageId(1), Bytes::from_static(b"a")).unwrap();
        plan.fail_next_fetches(1);
        assert!(plan.fetch(PageId(1)).is_err());
        assert_eq!(plan.fetch(PageId(1)).unwrap(), Bytes::from_static(b"a"));
    }

    #[test]
    fn probabilistic_errors_are_seed_deterministic() {
        let run = || {
            let (plan, _) = plan();
            plan.set_error_probability(0.5);
            (0..64)
                .map(|i| plan.store(PageId(i), Bytes::from_static(b"x")).is_err())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert!(a.iter().any(|&e| e) && !a.iter().all(|&e| e));
    }

    #[test]
    fn corruption_never_touches_the_callers_bytes() {
        let (plan, mem) = plan();
        let original = Bytes::from(vec![0u8; 512]);
        plan.corrupt_next_stores(1);
        plan.store(PageId(1), original.clone()).unwrap();
        assert!(original.iter().all(|&b| b == 0), "caller's buffer was mutated");
        let stored = mem.fetch(PageId(1)).unwrap();
        assert_ne!(stored, original);
        let diff: u32 = stored.iter().zip(original.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one bit flips");
        assert_eq!(plan.injected_corruptions(), 1);
    }

    #[test]
    fn at_rest_corruption_is_caught_by_the_provider_checksum() {
        let (plan, _) = plan();
        let p = DataProvider::new(ProviderId(0), Arc::clone(&plan) as Arc<dyn PageStore>);
        p.store_page(PageId(9), Bytes::from(vec![7u8; 128])).unwrap();
        assert!(plan.corrupt_stored_page(PageId(9)).unwrap());
        assert!(matches!(p.fetch_page(PageId(9)), Err(BlobError::PageCorrupt { .. })));
        assert!(!plan.corrupt_stored_page(PageId(404)).unwrap(), "absent page: nothing to rot");
    }

    #[test]
    fn latency_injection_delays_requests() {
        let (plan, _) = plan();
        plan.set_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        plan.store(PageId(1), Bytes::from_static(b"slow")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        plan.set_latency(Duration::ZERO);
    }
}
