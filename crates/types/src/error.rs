//! The common error type for all BlobSeer crates.

use std::fmt;

use crate::{BlobId, PageId, ProviderId, TenantId, Version};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, BlobError>;

/// Errors surfaced by the BlobSeer public API and its substrates.
///
/// The paper's primitives fail in well-defined situations (§2.1): a
/// `READ` of an unpublished version, a `READ` beyond the snapshot size,
/// a `WRITE` whose offset exceeds the previous snapshot size, a `BRANCH`
/// from an unpublished version. The remaining variants cover substrate
/// faults (missing pages/metadata, timeouts) that the paper's prototype
/// would surface as RPC failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// The blob id is not registered with the version manager.
    BlobNotFound(BlobId),
    /// The version has not been published yet (READ/GET_SIZE/BRANCH).
    VersionNotPublished { blob: BlobId, version: Version },
    /// The version exceeds anything ever assigned for this blob.
    VersionUnknown { blob: BlobId, version: Version },
    /// WRITE offset beyond the size of the previous snapshot (§2.1:
    /// "the WRITE primitive fails if the specified offset is larger than
    /// the total size of the snapshot vw − 1").
    WriteBeyondEnd { blob: BlobId, offset: u64, snapshot_size: u64 },
    /// READ range exceeds the snapshot size (§2.1: "a read fails also if
    /// the total size of the snapshot v is smaller than offset + size").
    ReadBeyondEnd { blob: BlobId, version: Version, requested_end: u64, snapshot_size: u64 },
    /// Zero-byte updates are rejected: they would publish a snapshot
    /// indistinguishable from its predecessor.
    EmptyUpdate,
    /// A page referenced by metadata is missing from its provider.
    PageMissing { pid: PageId, provider: ProviderId },
    /// Every reachable copy of a page failed checksum verification.
    /// Individual corrupt copies are downgraded to misses (the reader
    /// falls through to the next replica); this surfaces only when no
    /// copy verified — `provider` is the last one that returned corrupt
    /// bytes. Distinct from [`BlobError::PageMissing`] so operators can
    /// tell bit rot from loss; see `docs/FAILURES.md`.
    PageCorrupt { pid: PageId, provider: ProviderId },
    /// A requested provider id is not part of the deployment.
    ProviderNotFound(ProviderId),
    /// The provider is registered but currently failed/offline.
    ProviderUnavailable(ProviderId),
    /// No available provider could serve an allocation or fetch (all
    /// registered providers, or all replicas of a page, are offline).
    NoAvailableProvider,
    /// The version was reclaimed by garbage collection and can no
    /// longer be read.
    VersionRetired { blob: BlobId, version: Version },
    /// The version was assigned to a writer that died (or explicitly
    /// aborted) before completing its update. The version is skipped by
    /// the total order: it never publishes, is never readable, and
    /// later versions publish right over the hole.
    VersionAborted { blob: BlobId, version: Version },
    /// An abort cannot proceed: the version already completed its
    /// metadata (publication is the version manager's job now), already
    /// published, or was already aborted.
    AbortConflict(String),
    /// Garbage collection cannot proceed (live branch pins the history,
    /// or updates are in flight).
    GcConflict(String),
    /// An orphan scrub aborted before sweeping anything: the mark phase
    /// could not assemble a consistent live set (typically a concurrent
    /// `retire_versions` swept tree nodes out from under the mark walk).
    /// Nothing was deleted; rerun the scrub once the interfering
    /// operation finished.
    ScrubConflict(String),
    /// A provider drain aborted before retiring the provider: the
    /// membership change could not assemble or migrate a consistent
    /// live set (the provider is offline or already retired, no
    /// survivor can absorb its pages, in-flight writers outlasted the
    /// drain deadline, or a concurrent `retire_versions` kept moving
    /// the cut out from under the mark walk). Nothing was
    /// migrated-then-lost: every page either reached full replication
    /// on the survivors before leaving the provider or is still on it.
    /// The provider returns to service; rerun the drain once the
    /// interfering condition clears. See `docs/FAILURES.md`.
    DrainConflict(String),
    /// A metadata tree node was not found (and waiting was not allowed
    /// or timed out).
    MetadataMissing { blob: BlobId, version: Version },
    /// A blocking wait (SYNC, DHT `get_wait`) exceeded its deadline.
    Timeout(&'static str),
    /// Multi-tenant QoS refused the update: the tenant's token
    /// buckets could not supply the required tokens — immediately for
    /// non-blocking submission (`write_pipelined`/`append_pipelined`),
    /// or within the configured `max_wait_ms` for blocking calls.
    /// Nothing was done: no version assigned, no page stored. The
    /// caller owns the retry policy; see `docs/FAILURES.md`.
    QuotaExceeded { tenant: TenantId },
    /// Storage-level failure (file-backed page store I/O, etc.).
    Storage(String),
    /// Internal invariant violation; indicates a bug, surfaced rather
    /// than panicking so stress tests can report it.
    Internal(String),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::BlobNotFound(id) => write!(f, "{id} not found"),
            BlobError::VersionNotPublished { blob, version } => {
                write!(f, "{blob} {version} is not published yet")
            }
            BlobError::VersionUnknown { blob, version } => {
                write!(f, "{blob} {version} was never assigned")
            }
            BlobError::WriteBeyondEnd { blob, offset, snapshot_size } => write!(
                f,
                "write to {blob} at offset {offset} beyond snapshot size {snapshot_size}"
            ),
            BlobError::ReadBeyondEnd { blob, version, requested_end, snapshot_size } => write!(
                f,
                "read of {blob} {version} up to byte {requested_end} exceeds snapshot size {snapshot_size}"
            ),
            BlobError::EmptyUpdate => write!(f, "zero-byte updates are not allowed"),
            BlobError::PageMissing { pid, provider } => {
                write!(f, "{pid:?} missing from {provider}")
            }
            BlobError::PageCorrupt { pid, provider } => {
                write!(f, "{pid:?} failed checksum verification on every replica (last: {provider})")
            }
            BlobError::ProviderNotFound(p) => write!(f, "{p} is not deployed"),
            BlobError::ProviderUnavailable(p) => write!(f, "{p} is currently unavailable"),
            BlobError::NoAvailableProvider => {
                write!(f, "no available provider can serve the request")
            }
            BlobError::VersionRetired { blob, version } => {
                write!(f, "{blob} {version} was retired by garbage collection")
            }
            BlobError::VersionAborted { blob, version } => {
                write!(f, "{blob} {version} was aborted (writer failed before completion)")
            }
            BlobError::AbortConflict(why) => write!(f, "abort blocked: {why}"),
            BlobError::GcConflict(why) => write!(f, "garbage collection blocked: {why}"),
            BlobError::ScrubConflict(why) => write!(f, "orphan scrub aborted: {why}"),
            BlobError::DrainConflict(why) => write!(f, "provider drain aborted: {why}"),
            BlobError::MetadataMissing { blob, version } => {
                write!(f, "metadata node missing for {blob} {version}")
            }
            BlobError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            BlobError::QuotaExceeded { tenant } => {
                write!(f, "{tenant} is over its QoS quota (admission refused)")
            }
            BlobError::Storage(msg) => write!(f, "storage failure: {msg}"),
            BlobError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for BlobError {}

impl From<std::io::Error> for BlobError {
    fn from(e: std::io::Error) -> Self {
        BlobError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BlobError::WriteBeyondEnd { blob: BlobId(1), offset: 100, snapshot_size: 64 };
        let s = e.to_string();
        assert!(s.contains("blob#1"));
        assert!(s.contains("100"));
        assert!(s.contains("64"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: BlobError = io.into();
        assert!(matches!(e, BlobError::Storage(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn page_corrupt_is_distinct_from_missing() {
        let pid = PageId(7);
        let provider = ProviderId(3);
        let corrupt = BlobError::PageCorrupt { pid, provider };
        let missing = BlobError::PageMissing { pid, provider };
        assert_ne!(corrupt, missing);
        assert!(corrupt.to_string().contains("checksum"));
        assert!(corrupt.to_string().contains("prov#3"));
    }

    #[test]
    fn quota_exceeded_names_the_tenant() {
        let e = BlobError::QuotaExceeded { tenant: TenantId(4) };
        assert!(e.to_string().contains("tenant#4"));
        assert!(e.to_string().contains("quota"));
        assert_ne!(e, BlobError::QuotaExceeded { tenant: TenantId(5) });
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(BlobError::Timeout("publication"), BlobError::Timeout("publication"));
        assert_ne!(BlobError::BlobNotFound(BlobId(1)), BlobError::BlobNotFound(BlobId(2)));
    }
}
