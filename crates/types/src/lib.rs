//! Core data model for the BlobSeer reproduction.
//!
//! BlobSeer (Nicolae, Antoniu, Bougé — EDBT/DAMAP 2009) stores *binary
//! large objects* (blobs) striped into fixed-size **pages** distributed
//! over data providers, with per-snapshot metadata organised as a
//! distributed **segment tree**. This crate defines the vocabulary shared
//! by every other crate in the workspace:
//!
//! * identifiers — [`BlobId`], [`Version`], [`PageId`], [`ProviderId`],
//!   [`TenantId`];
//! * range arithmetic — [`ByteRange`], [`PageRange`] and the dyadic
//!   segment-tree positions [`NodePos`];
//! * the [`PageDescriptor`] record exchanged between the metadata layer
//!   and the data-access layer (the paper's *PD* sets);
//! * store-wide [`StoreConfig`] and the common [`BlobError`] type.
//!
//! Everything here is pure data: no I/O, no locks, no global state other
//! than the monotonic id generators.

mod checksum;
mod config;
mod error;
mod ids;
mod page;
mod range;

pub use checksum::page_checksum;
pub use config::{QosConfig, StoreConfig, TenantQuota, TenantQuotaEntry, DEFAULT_PAGE_SIZE};
pub use error::{BlobError, Result};
pub use ids::{BlobId, PageId, PageIdGen, ProviderId, TenantId, Version};
pub use page::{PageDescriptor, PageSlice};
pub use range::{ByteRange, NodePos, PageRange};

/// Round `n` up to the next power of two, with `next_pow2(0) == 1`.
///
/// Used to size segment-tree roots: the root of a snapshot holding `p`
/// pages covers `next_pow2(p)` pages (paper §4.1 assumes power-of-two
/// tree spans).
#[inline]
pub fn next_pow2(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

/// Integer ceiling division.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_edge_cases() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn div_ceil_edge_cases() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil(8, 4), 2);
        assert_eq!(div_ceil(u64::MAX, 1), u64::MAX);
    }
}
