//! Page checksums: dependency-free 64-bit FNV-1a.
//!
//! The paper's prototype trusts providers to return the bytes they were
//! given; real deployments cannot (disk bit rot, torn writes, buggy
//! stores). Every stored page copy therefore carries a checksum of its
//! payload, recorded at store time and verified on every fetch — a
//! mismatch downgrades the copy to a *miss* so the reader falls through
//! to the next replica, and surfaces as
//! [`crate::BlobError::PageCorrupt`] only when no copy verifies.
//!
//! FNV-1a is not cryptographic and does not need to be: the adversary
//! is entropy, not an attacker. What matters is that it is cheap (one
//! multiply + xor per byte), has no dependencies, and is stable across
//! platforms so checksums can be persisted next to file-backed pages.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Checksum of a page payload: 64-bit FNV-1a over the raw bytes.
///
/// Deterministic and platform-independent; the empty payload hashes to
/// the FNV offset basis (a page is never empty in practice, but the
/// function totalises anyway).
#[inline]
pub fn page_checksum(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(page_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(page_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(page_checksum(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let page = vec![0xA5u8; 4096];
        let healthy = page_checksum(&page);
        for byte in [0usize, 1, 2048, 4095] {
            for bit in 0..8 {
                let mut flipped = page.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(page_checksum(&flipped), healthy, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).cycle().take(65536).collect();
        assert_eq!(page_checksum(&data), page_checksum(&data));
    }
}
