//! Store-wide configuration.

use serde::{Deserialize, Serialize};

/// Default page size: 64 KiB, the smaller of the two page sizes used in
/// the paper's evaluation (§5 uses 64 KiB and 256 KiB).
pub const DEFAULT_PAGE_SIZE: u64 = 64 * 1024;

/// Configuration of a BlobSeer deployment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Page size in bytes (`psize`). Must be a power of two (paper §4.1:
    /// "We assume the page size psize is a power of two").
    pub page_size: u64,
    /// Number of data providers pages are striped over.
    pub data_providers: usize,
    /// Number of metadata providers (DHT buckets) tree nodes are
    /// distributed over.
    pub metadata_providers: usize,
    /// Maximum time a blocking metadata wait may take before an
    /// operation fails with [`crate::BlobError::Timeout`]. Expressed in
    /// milliseconds to keep the type serde-friendly.
    pub metadata_wait_ms: u64,
    /// Number of worker threads each client uses for parallel page and
    /// metadata I/O (the paper's clients fetch/store pages "in
    /// parallel").
    pub client_io_threads: usize,
    /// Copies kept of every page (1 = no replication). The paper defers
    /// replication to future work (§3.2); this implementation places
    /// the extra copies on the providers that follow the primary in
    /// registry order, so replica locations are derivable without any
    /// extra metadata.
    pub replication: usize,
    /// Entries in the client-side metadata node cache (0 disables it).
    /// Tree nodes are immutable, so the cache needs no invalidation.
    pub metadata_cache_entries: usize,
    /// Fork-join chunking factor: a parallel page/metadata batch is
    /// split into at most `client_io_threads * io_chunks_per_thread`
    /// dispatched jobs, each covering a contiguous index range. `0`
    /// disables chunking and dispatches one boxed job per item (the
    /// pre-chunking behaviour, kept as an ablation baseline).
    pub io_chunks_per_thread: usize,
    /// Carve page payloads out of an update as refcounted `Bytes`
    /// slices of the caller's buffer (`true`, zero-copy) instead of
    /// per-page copies (`false`, kept as an ablation baseline).
    pub zero_copy_pages: bool,
    /// Worker threads completing pipelined (non-blocking) updates:
    /// boundary merges, metadata weaving and version-manager
    /// notification of `write_pipelined`/`append_pipelined` run here so
    /// the caller's thread returns right after version assignment. Also
    /// the practical bound on how many unaligned pipelined updates can
    /// make progress at once (a stage may block on a lower in-flight
    /// version's metadata).
    pub pipeline_threads: usize,
    /// Writer-lease TTL in version-manager **logical-clock ticks**. An
    /// update holds a lease on its assigned version from `assign` until
    /// `complete`; pipeline stages renew it as they progress. The clock
    /// ticks on VM write-path operations (assign / renew / complete /
    /// abort) and via explicit advancement, never on wall time — so
    /// lease expiry is deterministic under test. A version whose lease
    /// lapses for `lease_ttl_ticks` ticks is presumed dead: the sweeper
    /// aborts it, the total order skips the hole, and every later
    /// version publishes. Must be ≥ 1; size it to comfortably exceed
    /// the number of VM operations a slow-but-alive writer can overlap
    /// with (spurious expiry of a *live* writer aborts its update —
    /// safe, but the writer gets [`crate::BlobError::VersionAborted`]).
    pub lease_ttl_ticks: u64,
    /// Opt-in wall-clock→tick mapping for the lease clock: when
    /// non-zero, a background ticker advances the version manager's
    /// logical clock by one tick every `lease_tick_interval_ms`
    /// milliseconds and runs a lease sweep whenever something expired.
    /// This closes the "quiet deployment" liveness gap — a wedged
    /// writer is aborted after roughly `lease_ttl_ticks *
    /// lease_tick_interval_ms` ms even with zero traffic. **Default 0
    /// (off)**: the clock then moves only with VM operations and
    /// explicit advancement, keeping lease expiry deterministic under
    /// test. See `docs/OPERATIONS.md` for tuning guidance.
    pub lease_tick_interval_ms: u64,
    /// Extra store attempts per page-store target after the first
    /// failure, before the write path gives up on that provider and
    /// fails over to the next live one in registry order. Retries catch
    /// transient faults (a flaky store erroring one request); failover
    /// catches durable ones (provider offline). `0` disables retries:
    /// the first error per target immediately triggers failover.
    pub store_retry_attempts: u32,
    /// Backoff between store retries, in milliseconds: attempt `n`
    /// (1-based) sleeps `n * store_retry_backoff_ms` before retrying —
    /// deterministic, no jitter, so tests can reason about timing.
    /// **Default 0 (no sleep)**: in-process stores fail fast and a
    /// same-thread retry is already a meaningful delay for them.
    pub store_retry_backoff_ms: u64,
    /// Slice a blocking metadata wait into `metadata_wait_slice_ms`
    /// chunks, running a **self-help lease sweep** between slices: a
    /// reader (or higher update) blocked on a dead writer's missing
    /// tree node then recovers in roughly one slice — the sweep aborts
    /// the expired version, abort repair fills the hole — instead of
    /// burning the full `metadata_wait_ms` and failing. `0` disables
    /// slicing (one uninterrupted block, the pre-PR 7 behaviour). The
    /// overall deadline is still `metadata_wait_ms`; slicing only
    /// changes what happens *during* the wait, and block-time metrics
    /// still record one sample per blocked call.
    pub metadata_wait_slice_ms: u64,
    /// Record per-operation latency histograms (append/write, reads,
    /// metadata prepare, sweeps, scrubs) for
    /// `BlobSeer::stats_snapshot`. **Default true**: recording is one
    /// precise clock read plus one relaxed `fetch_add` per operation —
    /// noise next to a page round-trip (`BENCH_PR6.json` checks in the
    /// overhead ratio). Turn off to run an uninstrumented A/B baseline.
    /// DHT block-time recording stays on regardless: a blocking
    /// metadata wait is already orders of magnitude slower than its
    /// own timestamping. See `docs/OBSERVABILITY.md`.
    pub latency_metrics: bool,
    /// Serve hot version-manager reads (`GET_RECENT`, open-latest,
    /// latest-version snapshot views) wait-free from each blob's
    /// seqlock-published hot triple instead of under the blob mutex.
    /// **Default true**; `false` restores the all-locked read path as
    /// an A/B baseline for the `hot_blob_snapshot` bench. Correctness
    /// is identical either way — the seqlock path is proven
    /// torn-read-free by the `prop_seqlock` stress suite. See the
    /// seqlock section of `docs/ARCHITECTURE.md`.
    pub lockfree_publication: bool,
}

impl StoreConfig {
    /// Validate invariants, normalising nothing.
    pub fn validate(&self) -> Result<(), String> {
        if !self.page_size.is_power_of_two() {
            return Err(format!("page_size {} is not a power of two", self.page_size));
        }
        if self.data_providers == 0 {
            return Err("at least one data provider is required".into());
        }
        if self.metadata_providers == 0 {
            return Err("at least one metadata provider is required".into());
        }
        if self.client_io_threads == 0 {
            return Err("client_io_threads must be at least 1".into());
        }
        if self.replication == 0 {
            return Err("replication must be at least 1 (1 = no extra copies)".into());
        }
        if self.replication > self.data_providers {
            return Err(format!(
                "replication {} exceeds the {} data providers",
                self.replication, self.data_providers
            ));
        }
        if self.pipeline_threads == 0 {
            return Err("pipeline_threads must be at least 1".into());
        }
        if self.lease_ttl_ticks == 0 {
            return Err("lease_ttl_ticks must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: DEFAULT_PAGE_SIZE,
            data_providers: 16,
            metadata_providers: 16,
            metadata_wait_ms: 10_000,
            client_io_threads: 8,
            replication: 1,
            metadata_cache_entries: 0,
            io_chunks_per_thread: 1,
            zero_copy_pages: true,
            pipeline_threads: 4,
            lease_ttl_ticks: 1 << 20,
            lease_tick_interval_ms: 0,
            store_retry_attempts: 1,
            store_retry_backoff_ms: 0,
            metadata_wait_slice_ms: 250,
            latency_metrics: true,
            lockfree_publication: true,
        }
    }
}

/// Per-tenant rate quota for multi-tenant QoS (PR 8).
///
/// A quota is two token buckets (bytes/s and ops/s, each with its own
/// burst capacity) plus a scheduling weight for the deficit-weighted
/// round-robin pipeline drain. `0` for a rate means **unlimited** on
/// that axis (the corresponding bucket is not created at all, so the
/// fast path pays nothing for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Sustained payload bytes per second admitted into updates
    /// (writes, appends, pipelined submissions). `0` = unlimited.
    pub bytes_per_sec: u64,
    /// Sustained update operations per second. `0` = unlimited.
    pub ops_per_sec: u64,
    /// Byte-bucket burst capacity: how many bytes may be admitted
    /// back-to-back after an idle period. `0` defaults to one second's
    /// worth (`bytes_per_sec`).
    pub burst_bytes: u64,
    /// Op-bucket burst capacity. `0` defaults to `ops_per_sec`.
    pub burst_ops: u64,
    /// Scheduling weight for the pipeline's deficit-weighted
    /// round-robin: a weight-3 tenant drains ~3x the bytes per round
    /// of a weight-1 tenant under contention. Must be ≥ 1.
    pub weight: u32,
}

impl TenantQuota {
    /// A quota that never throttles (both rates unlimited, weight 1).
    pub fn unlimited() -> Self {
        TenantQuota { bytes_per_sec: 0, ops_per_sec: 0, burst_bytes: 0, burst_ops: 0, weight: 1 }
    }

    /// Effective byte-bucket burst: explicit, or one second's refill.
    pub fn effective_burst_bytes(&self) -> u64 {
        if self.burst_bytes != 0 {
            self.burst_bytes
        } else {
            self.bytes_per_sec
        }
    }

    /// Effective op-bucket burst: explicit, or one second's refill.
    pub fn effective_burst_ops(&self) -> u64 {
        if self.burst_ops != 0 {
            self.burst_ops
        } else {
            self.ops_per_sec
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota::unlimited()
    }
}

/// A named tenant's quota inside a [`QosConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuotaEntry {
    /// Raw tenant id (see `TenantId`).
    pub tenant: u32,
    /// That tenant's quota.
    pub quota: TenantQuota,
}

/// Multi-tenant QoS configuration, passed to `Builder::qos` (PR 8).
///
/// QoS is **opt-in**: a store built without it has no admission hook
/// at all (the zero-copy hot path is untouched). With it, every
/// update acquires tokens from its tenant's buckets before doing any
/// work, and the pipeline pool drains per-tenant completion queues by
/// deficit-weighted round-robin instead of FIFO. Quotas are
/// runtime-adjustable afterwards via `BlobSeer::set_tenant_quota`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Quota for every tenant without an explicit entry — including
    /// `TenantId::DEFAULT`, which all untagged callers share. Defaults
    /// to unlimited, so enabling QoS alone throttles nobody.
    pub default_quota: TenantQuota,
    /// Per-tenant overrides.
    pub tenants: Vec<TenantQuotaEntry>,
    /// Deadline for **blocking** update admission (`Blob::write` /
    /// `Blob::append`): a throttled caller waits up to this long for
    /// tokens before failing with `BlobError::QuotaExceeded`.
    /// Non-blocking submission (`*_pipelined`) never waits — it fails
    /// typed immediately. Milliseconds, serde-friendly.
    pub max_wait_ms: u64,
}

impl QosConfig {
    /// Validate invariants (weights ≥ 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.default_quota.weight == 0 {
            return Err("default_quota.weight must be at least 1".into());
        }
        for e in &self.tenants {
            if e.quota.weight == 0 {
                return Err(format!("tenant {} weight must be at least 1", e.tenant));
            }
        }
        Ok(())
    }

    /// Set the quota shared by all tenants without explicit entries.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Add (or replace) one tenant's quota.
    pub fn with_tenant(mut self, tenant: u32, quota: TenantQuota) -> Self {
        self.tenants.retain(|e| e.tenant != tenant);
        self.tenants.push(TenantQuotaEntry { tenant, quota });
        self
    }

    /// Set the blocking-admission deadline (milliseconds).
    pub fn with_max_wait_ms(mut self, ms: u64) -> Self {
        self.max_wait_ms = ms;
        self
    }
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            default_quota: TenantQuota::unlimited(),
            tenants: Vec::new(),
            max_wait_ms: 5_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(StoreConfig::default().validate().is_ok());
    }

    #[test]
    fn default_qos_is_valid_and_unlimited() {
        let qos = QosConfig::default();
        assert!(qos.validate().is_ok());
        assert_eq!(qos.default_quota, TenantQuota::unlimited());
        assert_eq!(qos.default_quota.bytes_per_sec, 0);
    }

    #[test]
    fn qos_rejects_zero_weight() {
        let mut qos = QosConfig::default();
        qos.default_quota.weight = 0;
        assert!(qos.validate().is_err());
        let qos = QosConfig::default()
            .with_tenant(3, TenantQuota { weight: 0, ..TenantQuota::unlimited() });
        assert!(qos.validate().is_err());
    }

    #[test]
    fn with_tenant_replaces_existing_entries() {
        let q1 = TenantQuota { bytes_per_sec: 100, ..TenantQuota::unlimited() };
        let q2 = TenantQuota { bytes_per_sec: 200, ..TenantQuota::unlimited() };
        let qos = QosConfig::default().with_tenant(7, q1).with_tenant(7, q2);
        assert_eq!(qos.tenants.len(), 1);
        assert_eq!(qos.tenants[0].quota.bytes_per_sec, 200);
    }

    #[test]
    fn burst_defaults_to_one_second_of_refill() {
        let q = TenantQuota { bytes_per_sec: 1024, ops_per_sec: 8, ..TenantQuota::unlimited() };
        assert_eq!(q.effective_burst_bytes(), 1024);
        assert_eq!(q.effective_burst_ops(), 8);
        let q = TenantQuota { bytes_per_sec: 1024, burst_bytes: 64, ..TenantQuota::unlimited() };
        assert_eq!(q.effective_burst_bytes(), 64);
    }

    #[test]
    fn rejects_non_power_of_two_pages() {
        let cfg = StoreConfig { page_size: 3000, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_providers() {
        let cfg = StoreConfig { data_providers: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = StoreConfig { metadata_providers: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = StoreConfig { client_io_threads: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_replication() {
        let cfg = StoreConfig { replication: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = StoreConfig { replication: 17, data_providers: 16, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = StoreConfig { replication: 3, data_providers: 16, ..Default::default() };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rejects_zero_pipeline_threads() {
        let cfg = StoreConfig { pipeline_threads: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_lease_ttl() {
        let cfg = StoreConfig { lease_ttl_ticks: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }
}
