//! Page descriptors: the records linking metadata to stored pages.
//!
//! A `READ` first consults metadata to assemble a set of page
//! descriptors (the paper's *PD* set, Algorithm 1 line 4), then fetches
//! the described pages in parallel. A `WRITE`/`APPEND` produces the same
//! records while storing pages and hands them to `BUILD_META`
//! (Algorithm 2 line 8).

use serde::{Deserialize, Serialize};

use crate::{ByteRange, PageId, ProviderId};

/// One entry of the paper's *PD* set: a page, where it lives, and which
/// page slot of the blob it occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageDescriptor {
    /// Globally-unique id of the stored page.
    pub pid: PageId,
    /// Absolute page index within the blob (the paper indexes pages
    /// relative to the accessed range; we keep absolute indices and
    /// derive buffer offsets at the access site).
    pub page_index: u64,
    /// Data provider storing the page.
    pub provider: ProviderId,
    /// Number of valid bytes in the page (< `psize` only for the final,
    /// partially-filled page of a snapshot).
    pub valid_len: u32,
}

/// A sub-range of a single page that a `READ` must fetch.
///
/// When the requested byte range is not page-aligned, the first and last
/// pages are fetched partially (paper §3.2: "the client may request only
/// a part of the page from the page provider").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSlice {
    /// The page to fetch from.
    pub descriptor: PageDescriptor,
    /// Byte range *within the page* to fetch: `offset < psize`,
    /// `offset + len <= psize`.
    pub within: ByteRange,
    /// Destination offset in the caller's buffer.
    pub buffer_offset: u64,
}

impl PageSlice {
    /// Compute the slice of `descriptor`'s page needed to satisfy a read
    /// of `request` (absolute byte range), given the page size.
    ///
    /// Returns `None` when the page does not intersect the request.
    pub fn for_request(
        descriptor: PageDescriptor,
        request: ByteRange,
        psize: u64,
    ) -> Option<PageSlice> {
        let page_bytes = ByteRange::new(descriptor.page_index * psize, psize);
        let hit = page_bytes.intersect(request)?;
        Some(PageSlice {
            descriptor,
            within: ByteRange::new(hit.offset - page_bytes.offset, hit.size),
            buffer_offset: hit.offset - request.offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageId;

    fn pd(page_index: u64) -> PageDescriptor {
        PageDescriptor {
            pid: PageId(page_index as u128 + 1000),
            page_index,
            provider: ProviderId(0),
            valid_len: 4,
        }
    }

    #[test]
    fn full_page_slice() {
        let s = PageSlice::for_request(pd(2), ByteRange::new(8, 4), 4).unwrap();
        assert_eq!(s.within, ByteRange::new(0, 4));
        assert_eq!(s.buffer_offset, 0);
    }

    #[test]
    fn head_partial_slice() {
        // Request [9, 16) with psize 4: page 2 contributes [1,4) of itself.
        let s = PageSlice::for_request(pd(2), ByteRange::new(9, 7), 4).unwrap();
        assert_eq!(s.within, ByteRange::new(1, 3));
        assert_eq!(s.buffer_offset, 0);
    }

    #[test]
    fn tail_partial_slice() {
        // Request [8, 14): page 3 contributes [0,2), landing at buffer 4.
        let s = PageSlice::for_request(pd(3), ByteRange::new(8, 6), 4).unwrap();
        assert_eq!(s.within, ByteRange::new(0, 2));
        assert_eq!(s.buffer_offset, 4);
    }

    #[test]
    fn middle_page_full_slice_with_unaligned_request() {
        // Request [9, 19): page 3 is fully interior.
        let s = PageSlice::for_request(pd(3), ByteRange::new(9, 10), 4).unwrap();
        assert_eq!(s.within, ByteRange::new(0, 4));
        assert_eq!(s.buffer_offset, 3);
    }

    #[test]
    fn disjoint_page_yields_none() {
        assert!(PageSlice::for_request(pd(5), ByteRange::new(8, 6), 4).is_none());
    }

    #[test]
    fn single_byte_request() {
        let s = PageSlice::for_request(pd(0), ByteRange::new(2, 1), 4).unwrap();
        assert_eq!(s.within, ByteRange::new(2, 1));
        assert_eq!(s.buffer_offset, 0);
    }
}
