//! Identifier newtypes.
//!
//! All identifiers are small `Copy` newtypes so they can be used as map
//! keys and passed across component boundaries freely. Uniqueness of
//! [`BlobId`] and [`PageId`] is provided by monotonic in-process
//! generators (the paper's deployment uses globally-unique ids handed
//! out by the version manager; a process-wide atomic counter plays the
//! same role in our in-process reproduction).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Globally-unique identifier of a blob (paper §2.1, `CREATE` returns it).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlobId(pub u64);

impl BlobId {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

/// Snapshot version label.
///
/// Versions are assigned by the version manager in a total order per
/// blob; version 0 is the initial empty snapshot (paper §2: "In its
/// initial state, we assume any blob is considered empty ... and is
/// labeled with version 0").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Version(pub u64);

impl Version {
    /// The initial, empty snapshot of every blob.
    pub const ZERO: Version = Version(0);

    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The next version in the per-blob total order.
    #[inline]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// The previous version; `None` for version 0.
    #[inline]
    pub fn prev(self) -> Option<Version> {
        self.0.checked_sub(1).map(Version)
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Globally-unique identifier of a stored page (the paper's *pid*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u128);

impl PageId {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{:x}", self.0)
    }
}

/// Identifier of a tenant — a client class sharing one deployment
/// under multi-tenant QoS (PR 8). Untagged callers act as
/// [`TenantId::DEFAULT`]; tag a handle with `Blob::for_tenant` to
/// charge its updates to another tenant's quota. Tenants are a purely
/// client-side notion: pages and metadata carry no tenant marker, so
/// tagging changes *admission*, never placement or content.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant untagged callers are accounted to.
    pub const DEFAULT: TenantId = TenantId(0);

    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Identifier of a data provider (storage node).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProviderId(pub u32);

impl ProviderId {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prov#{}", self.0)
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prov#{}", self.0)
    }
}

/// Generator of globally-unique [`PageId`]s.
///
/// Each generator instance gets a distinct high 64-bit *namespace* from a
/// process-wide counter; page ids are `(namespace << 64) | sequence`.
/// Clients each own a generator, so page-id generation is contention-free
/// (the paper stresses that page writes need no synchronisation at all).
#[derive(Debug)]
pub struct PageIdGen {
    namespace: u64,
    seq: AtomicU64,
}

static NAMESPACE_COUNTER: AtomicU64 = AtomicU64::new(1);

impl PageIdGen {
    /// Create a generator with a fresh, process-unique namespace.
    pub fn new() -> Self {
        PageIdGen {
            namespace: NAMESPACE_COUNTER.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
        }
    }

    /// Produce the next unique page id.
    #[inline]
    pub fn next_id(&self) -> PageId {
        let lo = self.seq.fetch_add(1, Ordering::Relaxed);
        PageId(((self.namespace as u128) << 64) | lo as u128)
    }

    /// The **watermark**: the id the next [`PageIdGen::next_id`] call
    /// would return. Ids are handed out in strictly increasing order
    /// within a generator, so every id issued at or after a `peek` is
    /// `>= ` the peeked value — the property the orphan scrubber's
    /// epoch cut relies on ("pages stored after the mark began are
    /// exempt"). The watermark itself is never issued *before* the
    /// peek, only (possibly) after it.
    ///
    /// # Examples
    ///
    /// ```
    /// let gen = blobseer_types::PageIdGen::new();
    /// let watermark = gen.peek();
    /// assert!(gen.next_id() >= watermark);
    /// assert!(gen.peek() > watermark);
    /// ```
    #[inline]
    pub fn peek(&self) -> PageId {
        let lo = self.seq.load(Ordering::Relaxed);
        PageId(((self.namespace as u128) << 64) | lo as u128)
    }
}

impl Default for PageIdGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn version_arithmetic() {
        assert_eq!(Version::ZERO.next(), Version(1));
        assert_eq!(Version(5).prev(), Some(Version(4)));
        assert_eq!(Version::ZERO.prev(), None);
        assert!(Version(3) < Version(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlobId(7).to_string(), "blob#7");
        assert_eq!(Version(12).to_string(), "v12");
        assert_eq!(ProviderId(3).to_string(), "prov#3");
        assert_eq!(format!("{:?}", PageId(255)), "pid:ff");
    }

    #[test]
    fn page_ids_unique_within_generator() {
        let g = PageIdGen::new();
        let ids: HashSet<_> = (0..10_000).map(|_| g.next_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn peek_bounds_future_ids_from_below() {
        let g = PageIdGen::new();
        let before = g.next_id();
        let watermark = g.peek();
        assert!(before < watermark, "issued ids sit below the watermark");
        for _ in 0..100 {
            assert!(g.next_id() >= watermark, "future ids sit at or above it");
        }
        assert!(g.peek() > watermark, "the watermark is monotonic");
    }

    #[test]
    fn page_ids_unique_across_generators() {
        let a = PageIdGen::new();
        let b = PageIdGen::new();
        let mut ids = HashSet::new();
        for _ in 0..1000 {
            assert!(ids.insert(a.next_id()));
            assert!(ids.insert(b.next_id()));
        }
    }

    #[test]
    fn page_ids_unique_under_concurrency() {
        let g = Arc::new(PageIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..5000).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate page id {:?}", id);
            }
        }
        assert_eq!(all.len(), 8 * 5000);
    }
}
