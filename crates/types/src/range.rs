//! Range arithmetic: byte ranges, page ranges and dyadic tree positions.
//!
//! BlobSeer addresses blob content in three coordinate systems:
//!
//! 1. **bytes** — the client API works on `(offset, size)` byte ranges
//!    ([`ByteRange`]);
//! 2. **pages** — data is striped into fixed-size pages; a byte range
//!    maps to the half-open page-index interval that covers it
//!    ([`PageRange`]);
//! 3. **dyadic positions** — segment-tree nodes cover power-of-two-sized,
//!    self-aligned page ranges ([`NodePos`]); the tree of snapshot `v`
//!    is rooted at `(0, next_pow2(pages(v)))`.
//!
//! Keeping the tree coordinates in *pages* (not bytes) makes every
//! alignment argument in the paper's Algorithms 3 & 4 an exact integer
//! statement, with no overflow for blobs up to 2^63 pages.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::next_pow2;

/// A byte range `[offset, offset + size)` within a blob snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteRange {
    /// First byte covered.
    pub offset: u64,
    /// Number of bytes covered (may be 0: the empty range).
    pub size: u64,
}

impl ByteRange {
    /// Construct a byte range.
    #[inline]
    pub fn new(offset: u64, size: u64) -> Self {
        ByteRange { offset, size }
    }

    /// One past the last byte covered.
    #[inline]
    pub fn end(self) -> u64 {
        self.offset + self.size
    }

    /// `true` when the range covers no bytes.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.size == 0
    }

    /// `true` when the two ranges share at least one byte.
    #[inline]
    pub fn intersects(self, other: ByteRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// The common sub-range, or `None` when disjoint.
    #[inline]
    pub fn intersect(self, other: ByteRange) -> Option<ByteRange> {
        let lo = self.offset.max(other.offset);
        let hi = self.end().min(other.end());
        (lo < hi).then(|| ByteRange::new(lo, hi - lo))
    }

    /// `true` when `other` lies entirely within `self`.
    #[inline]
    pub fn contains(self, other: ByteRange) -> bool {
        other.is_empty() || (other.offset >= self.offset && other.end() <= self.end())
    }

    /// The half-open page-index interval covering this byte range.
    ///
    /// `psize` is the page size in bytes. The empty range maps to an
    /// empty page range at the containing page index.
    #[inline]
    pub fn pages(self, psize: u64) -> PageRange {
        debug_assert!(psize > 0);
        if self.is_empty() {
            return PageRange::new(self.offset / psize, 0);
        }
        let first = self.offset / psize;
        let last = (self.end() - 1) / psize;
        PageRange::new(first, last - first + 1)
    }

    /// `true` when both ends fall on page boundaries.
    #[inline]
    pub fn is_page_aligned(self, psize: u64) -> bool {
        self.offset.is_multiple_of(psize) && self.end().is_multiple_of(psize)
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})B", self.offset, self.end())
    }
}

/// A half-open interval of page indices `[first, first + count)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageRange {
    /// Index of the first page covered.
    pub first: u64,
    /// Number of pages covered (may be 0).
    pub count: u64,
}

impl PageRange {
    /// Construct a page range.
    #[inline]
    pub fn new(first: u64, count: u64) -> Self {
        PageRange { first, count }
    }

    /// One past the last page index covered.
    #[inline]
    pub fn end(self) -> u64 {
        self.first + self.count
    }

    /// `true` when the range covers no pages.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.count == 0
    }

    /// Index of the last page covered; `None` when empty.
    #[inline]
    pub fn last(self) -> Option<u64> {
        (!self.is_empty()).then(|| self.end() - 1)
    }

    /// `true` when the two ranges share at least one page.
    #[inline]
    pub fn intersects(self, other: PageRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.first < other.end()
            && other.first < self.end()
    }

    /// The common sub-range, or `None` when disjoint.
    #[inline]
    pub fn intersect(self, other: PageRange) -> Option<PageRange> {
        let lo = self.first.max(other.first);
        let hi = self.end().min(other.end());
        (lo < hi).then(|| PageRange::new(lo, hi - lo))
    }

    /// `true` when page index `p` falls within the range.
    #[inline]
    pub fn contains_page(self, p: u64) -> bool {
        p >= self.first && p < self.end()
    }

    /// Iterate over covered page indices.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = u64> {
        self.first..self.end()
    }

    /// The byte range spanned by these pages.
    #[inline]
    pub fn bytes(self, psize: u64) -> ByteRange {
        ByteRange::new(self.first * psize, self.count * psize)
    }
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})P", self.first, self.end())
    }
}

/// A segment-tree node position: a *dyadic* page range.
///
/// Positions satisfy two invariants, checked in debug builds:
/// `size` is a power of two, and `offset` is a multiple of `size`
/// (self-alignment). Under these invariants any two positions are either
/// disjoint or nested — the property that makes the paper's tree-weaving
/// well defined: a tree position is occupied by exactly one node per
/// version, and sharing a subtree is sharing all positions below it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodePos {
    /// First page covered (multiple of `size`).
    pub offset: u64,
    /// Number of pages covered (power of two, ≥ 1).
    pub size: u64,
}

impl NodePos {
    /// Construct a position, checking the dyadic invariants in debug builds.
    #[inline]
    pub fn new(offset: u64, size: u64) -> Self {
        debug_assert!(size.is_power_of_two(), "node size {size} not a power of two");
        debug_assert!(offset.is_multiple_of(size), "node offset {offset} not aligned to {size}");
        NodePos { offset, size }
    }

    /// The root position for a snapshot holding `pages` pages.
    #[inline]
    pub fn root_for(pages: u64) -> Self {
        NodePos::new(0, next_pow2(pages))
    }

    /// `true` when this position covers a single page.
    #[inline]
    pub fn is_leaf(self) -> bool {
        self.size == 1
    }

    /// Tree level: 0 for leaves, `log2(size)` in general.
    #[inline]
    pub fn level(self) -> u32 {
        self.size.trailing_zeros()
    }

    /// Left child position (first half of the covered range).
    ///
    /// Panics in debug builds when called on a leaf.
    #[inline]
    pub fn left(self) -> NodePos {
        debug_assert!(!self.is_leaf());
        NodePos::new(self.offset, self.size / 2)
    }

    /// Right child position (second half of the covered range).
    #[inline]
    pub fn right(self) -> NodePos {
        debug_assert!(!self.is_leaf());
        NodePos::new(self.offset + self.size / 2, self.size / 2)
    }

    /// Parent position (Algorithm 4, lines 13-18).
    #[inline]
    pub fn parent(self) -> NodePos {
        if self.is_left_child() {
            NodePos::new(self.offset, self.size * 2)
        } else {
            NodePos::new(self.offset - self.size, self.size * 2)
        }
    }

    /// `true` when this position is the left child of its parent
    /// (paper: `offset % (2 × size) == 0`).
    #[inline]
    pub fn is_left_child(self) -> bool {
        self.offset.is_multiple_of(self.size * 2)
    }

    /// The page range covered.
    #[inline]
    pub fn page_range(self) -> PageRange {
        PageRange::new(self.offset, self.size)
    }

    /// One past the last page covered.
    #[inline]
    pub fn end(self) -> u64 {
        self.offset + self.size
    }

    /// `true` when the covered range shares a page with `r`.
    #[inline]
    pub fn intersects(self, r: PageRange) -> bool {
        self.page_range().intersects(r)
    }

    /// `true` when `other`'s range nests inside this position's range.
    #[inline]
    pub fn contains(self, other: NodePos) -> bool {
        other.offset >= self.offset && other.end() <= self.end()
    }

    /// `true` when page `p` falls under this position.
    #[inline]
    pub fn contains_page(self, p: u64) -> bool {
        p >= self.offset && p < self.end()
    }

    /// The child position (of this inner node) under which page `p` lies.
    #[inline]
    pub fn child_toward(self, p: u64) -> NodePos {
        debug_assert!(!self.is_leaf() && self.contains_page(p));
        if p < self.offset + self.size / 2 {
            self.left()
        } else {
            self.right()
        }
    }

    /// The ancestor of `self` at `level` (≥ `self.level()`).
    #[inline]
    pub fn ancestor_at_level(self, level: u32) -> NodePos {
        debug_assert!(level >= self.level());
        debug_assert!(level < 64);
        let size = 1u64 << level;
        NodePos::new(self.offset & !(size - 1), size)
    }
}

impl fmt::Debug for NodePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.offset, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_basics() {
        let r = ByteRange::new(10, 20);
        assert_eq!(r.end(), 30);
        assert!(!r.is_empty());
        assert!(ByteRange::new(5, 0).is_empty());
        assert!(r.intersects(ByteRange::new(29, 1)));
        assert!(!r.intersects(ByteRange::new(30, 1)));
        assert!(!r.intersects(ByteRange::new(0, 10)));
        assert!(!r.intersects(ByteRange::new(15, 0)), "empty never intersects");
        assert_eq!(r.intersect(ByteRange::new(25, 100)), Some(ByteRange::new(25, 5)));
        assert_eq!(r.intersect(ByteRange::new(30, 5)), None);
        assert!(r.contains(ByteRange::new(10, 20)));
        assert!(r.contains(ByteRange::new(15, 5)));
        assert!(!r.contains(ByteRange::new(5, 10)));
        assert!(r.contains(ByteRange::new(999, 0)), "empty contained anywhere");
    }

    #[test]
    fn byte_to_page_mapping() {
        let psize = 4;
        assert_eq!(ByteRange::new(0, 4).pages(psize), PageRange::new(0, 1));
        assert_eq!(ByteRange::new(0, 5).pages(psize), PageRange::new(0, 2));
        assert_eq!(ByteRange::new(3, 2).pages(psize), PageRange::new(0, 2));
        assert_eq!(ByteRange::new(4, 4).pages(psize), PageRange::new(1, 1));
        assert_eq!(ByteRange::new(7, 1).pages(psize), PageRange::new(1, 1));
        assert_eq!(ByteRange::new(8, 0).pages(psize).count, 0);
    }

    #[test]
    fn page_alignment() {
        assert!(ByteRange::new(0, 8).is_page_aligned(4));
        assert!(ByteRange::new(4, 8).is_page_aligned(4));
        assert!(!ByteRange::new(1, 8).is_page_aligned(4));
        assert!(!ByteRange::new(0, 7).is_page_aligned(4));
    }

    #[test]
    fn page_range_basics() {
        let r = PageRange::new(2, 3);
        assert_eq!(r.end(), 5);
        assert_eq!(r.last(), Some(4));
        assert_eq!(PageRange::new(9, 0).last(), None);
        assert!(r.contains_page(2));
        assert!(r.contains_page(4));
        assert!(!r.contains_page(5));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.intersect(PageRange::new(4, 10)), Some(PageRange::new(4, 1)));
        assert_eq!(r.bytes(4), ByteRange::new(8, 12));
    }

    #[test]
    fn node_pos_navigation() {
        // The 4-page example tree from paper Figure 1(a).
        let root = NodePos::root_for(4);
        assert_eq!(root, NodePos::new(0, 4));
        assert_eq!(root.left(), NodePos::new(0, 2));
        assert_eq!(root.right(), NodePos::new(2, 2));
        assert_eq!(root.left().left(), NodePos::new(0, 1));
        assert_eq!(root.right().right(), NodePos::new(3, 1));
        assert!(root.left().left().is_leaf());
        assert_eq!(root.level(), 2);
        assert_eq!(NodePos::new(3, 1).level(), 0);
    }

    #[test]
    fn node_pos_parent_inverts_children() {
        let root = NodePos::new(0, 8);
        for pos in [
            root.left(),
            root.right(),
            root.left().left(),
            root.left().right(),
            root.right().left(),
            root.right().right(),
        ] {
            if pos.is_left_child() {
                assert_eq!(pos.parent().left(), pos);
            } else {
                assert_eq!(pos.parent().right(), pos);
            }
        }
    }

    #[test]
    fn node_pos_left_right_detection() {
        assert!(NodePos::new(0, 2).is_left_child());
        assert!(!NodePos::new(2, 2).is_left_child());
        assert!(NodePos::new(4, 2).is_left_child());
        assert!(!NodePos::new(6, 2).is_left_child());
        assert!(NodePos::new(0, 1).is_left_child());
        assert!(!NodePos::new(1, 1).is_left_child());
    }

    #[test]
    fn node_pos_root_growth_matches_figure_1c() {
        // Fig 1(c): appending a 5th page to a 4-page blob grows the root
        // from (0,4) to (0,8), whose left child is the old root.
        assert_eq!(NodePos::root_for(4), NodePos::new(0, 4));
        let grown = NodePos::root_for(5);
        assert_eq!(grown, NodePos::new(0, 8));
        assert_eq!(grown.left(), NodePos::new(0, 4));
    }

    #[test]
    fn node_pos_child_toward() {
        let root = NodePos::new(0, 8);
        assert_eq!(root.child_toward(0), root.left());
        assert_eq!(root.child_toward(3), root.left());
        assert_eq!(root.child_toward(4), root.right());
        assert_eq!(root.child_toward(7), root.right());
    }

    #[test]
    fn node_pos_ancestor_at_level() {
        let leaf = NodePos::new(5, 1);
        assert_eq!(leaf.ancestor_at_level(0), leaf);
        assert_eq!(leaf.ancestor_at_level(1), NodePos::new(4, 2));
        assert_eq!(leaf.ancestor_at_level(2), NodePos::new(4, 4));
        assert_eq!(leaf.ancestor_at_level(3), NodePos::new(0, 8));
    }

    #[test]
    fn node_pos_intersects_and_contains() {
        let n = NodePos::new(4, 4);
        assert!(n.intersects(PageRange::new(7, 2)));
        assert!(!n.intersects(PageRange::new(8, 2)));
        assert!(!n.intersects(PageRange::new(0, 4)));
        assert!(n.contains(NodePos::new(6, 2)));
        assert!(n.contains(n));
        assert!(!n.contains(NodePos::new(0, 8)));
    }
}
