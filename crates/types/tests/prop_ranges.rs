//! Property tests for the range/dyadic-position algebra.
//!
//! These invariants underpin the correctness of the segment-tree
//! planners: if dyadic positions ever overlapped without nesting, the
//! metadata "weaving" of the paper would be ill-defined.

use blobseer_types::{next_pow2, ByteRange, NodePos, PageRange};
use proptest::prelude::*;

/// Strategy producing a valid dyadic position within a bounded universe.
fn node_pos() -> impl Strategy<Value = NodePos> {
    (0u32..16, 0u64..4096).prop_map(|(level, slot)| {
        let size = 1u64 << level;
        NodePos::new(slot * size, size)
    })
}

proptest! {
    #[test]
    fn dyadic_positions_disjoint_or_nested(a in node_pos(), b in node_pos()) {
        let ar = a.page_range();
        let br = b.page_range();
        if ar.intersects(br) {
            prop_assert!(a.contains(b) || b.contains(a),
                "{a:?} and {b:?} overlap without nesting");
        }
    }

    #[test]
    fn parent_child_roundtrip(p in node_pos()) {
        if !p.is_leaf() {
            prop_assert_eq!(p.left().parent(), p);
            prop_assert_eq!(p.right().parent(), p);
            prop_assert!(p.left().is_left_child());
            prop_assert!(!p.right().is_left_child());
            // Children partition the parent exactly.
            prop_assert_eq!(p.left().end(), p.right().offset);
            prop_assert_eq!(p.left().offset, p.offset);
            prop_assert_eq!(p.right().end(), p.end());
        }
    }

    #[test]
    fn ancestor_at_level_contains(p in node_pos(), up in 0u32..8) {
        let level = p.level() + up;
        let a = p.ancestor_at_level(level);
        prop_assert!(a.contains(p));
        prop_assert_eq!(a.level(), level);
    }

    #[test]
    fn child_toward_reaches_leaf(p in node_pos(), seed in any::<u64>()) {
        let page = p.offset + seed % p.size;
        let mut cur = p;
        while !cur.is_leaf() {
            cur = cur.child_toward(page);
            prop_assert!(cur.contains_page(page));
        }
        prop_assert_eq!(cur.offset, page);
    }

    #[test]
    fn byte_page_roundtrip(offset in 0u64..1_000_000, size in 1u64..100_000, pshift in 2u32..20) {
        let psize = 1u64 << pshift;
        let br = ByteRange::new(offset, size);
        let pr = br.pages(psize);
        // Covering pages do cover the byte range...
        prop_assert!(pr.bytes(psize).contains(br));
        // ...and no page is superfluous: first and last pages intersect it.
        prop_assert!(ByteRange::new(pr.first * psize, psize).intersects(br));
        let last = pr.last().unwrap();
        prop_assert!(ByteRange::new(last * psize, psize).intersects(br));
    }

    #[test]
    fn intersect_is_commutative_and_sound(
        a_off in 0u64..10_000, a_len in 0u64..5000,
        b_off in 0u64..10_000, b_len in 0u64..5000,
    ) {
        let a = ByteRange::new(a_off, a_len);
        let b = ByteRange::new(b_off, b_len);
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.intersects(b), a.intersect(b).is_some());
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains(i));
            prop_assert!(b.contains(i));
            prop_assert!(i.size <= a.size && i.size <= b.size);
        }
    }

    #[test]
    fn page_range_intersect_sound(
        a_first in 0u64..1000, a_count in 0u64..500,
        b_first in 0u64..1000, b_count in 0u64..500,
    ) {
        let a = PageRange::new(a_first, a_count);
        let b = PageRange::new(b_first, b_count);
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.intersects(b), a.intersect(b).is_some());
        if let Some(i) = a.intersect(b) {
            for p in i.iter() {
                prop_assert!(a.contains_page(p) && b.contains_page(p));
            }
        }
    }

    #[test]
    fn next_pow2_properties(n in 0u64..(1 << 40)) {
        let p = next_pow2(n);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p >= n.max(1));
        prop_assert!(p < 2 * n.max(1));
    }

    #[test]
    fn root_for_covers_all_pages(pages in 0u64..(1 << 30)) {
        let root = NodePos::root_for(pages);
        prop_assert_eq!(root.offset, 0);
        prop_assert!(root.size >= pages.max(1));
        if pages > 0 {
            prop_assert!(root.contains_page(pages - 1));
        }
    }
}
