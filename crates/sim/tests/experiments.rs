//! Sanity and shape tests for the simulated experiments (small scales,
//! so they run in milliseconds; the full paper-scale sweeps live in the
//! bench harnesses).

use blobseer_sim::{
    append_experiment, crash_writer_experiment, pipelined_append_experiment, read_experiment,
    scrub_experiment, SimParams,
};

#[test]
fn append_points_cover_the_sweep() {
    let pts = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 256);
    // 1 MiB appends of 16 pages each, up to 256 pages → 16 appends.
    assert_eq!(pts.len(), 16);
    assert_eq!(pts.last().unwrap().pages_after, 256);
    for p in &pts {
        assert!(p.seconds > 0.0);
        assert!(p.mbps > 10.0 && p.mbps < 117.5, "bandwidth {} out of band", p.mbps);
    }
}

#[test]
fn append_bandwidth_dips_when_tree_gains_a_level() {
    // With 16-page appends, the tree root grows at 16→32, 32→64, ...:
    // the append that first needs the deeper tree must be slower than
    // its predecessor.
    let pts = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 512);
    let at = |pages: u64| pts.iter().find(|p| p.pages_after == pages).unwrap().mbps;
    assert!(at(48) < at(32), "crossing 32 pages adds a level: {} !< {}", at(48), at(32));
    assert!(at(144) < at(128), "crossing 128 pages adds a level");
    // And bandwidth declines only mildly overall (high sustained BW).
    assert!(at(512) > 0.7 * at(16), "decline must be slight: {} vs {}", at(512), at(16));
}

#[test]
fn append_is_deterministic() {
    let a = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 128);
    let b = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 128);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.seconds, y.seconds);
    }
}

#[test]
fn larger_pages_amortize_overheads() {
    let small = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 64);
    let large = append_experiment(SimParams::default(), 10, 256 * 1024, 1 << 20, 64);
    let avg = |pts: &[blobseer_sim::AppendPoint]| {
        pts.iter().map(|p| p.mbps).sum::<f64>() / pts.len() as f64
    };
    assert!(
        avg(&large) > avg(&small),
        "256 KiB pages should beat 64 KiB: {} vs {}",
        avg(&large),
        avg(&small)
    );
}

#[test]
fn single_reader_baseline() {
    // Tiny version of Figure 2(b)'s first point: one reader, small blob.
    let s = read_experiment(SimParams::default(), 16, 1, 1 << 14, 64 * 1024, 256);
    assert_eq!(s.readers, 1);
    assert!(s.avg_mbps > 30.0 && s.avg_mbps < 117.5, "got {}", s.avg_mbps);
    assert_eq!(s.min_mbps, s.max_mbps);
}

#[test]
fn reader_bandwidth_degrades_gracefully() {
    // More readers on the same providers → mild per-reader slowdown,
    // not collapse.
    let one = read_experiment(SimParams::default(), 16, 1, 1 << 14, 64 * 1024, 256);
    let sixteen = read_experiment(SimParams::default(), 16, 16, 1 << 14, 64 * 1024, 256);
    assert!(sixteen.avg_mbps < one.avg_mbps, "contention must cost something");
    assert!(
        sixteen.avg_mbps > 0.5 * one.avg_mbps,
        "degradation must be graceful: {} vs {}",
        sixteen.avg_mbps,
        one.avg_mbps
    );
}

#[test]
fn read_is_deterministic() {
    let a = read_experiment(SimParams::default(), 8, 4, 1 << 12, 64 * 1024, 128);
    let b = read_experiment(SimParams::default(), 8, 4, 1 << 12, 64 * 1024, 128);
    assert_eq!(a.avg_mbps, b.avg_mbps);
    assert_eq!(a.seconds, b.seconds);
}

#[test]
fn pipelining_appends_beats_sequential() {
    // Keeping appends in flight overlaps page transfers with metadata
    // work of lower versions: aggregate bandwidth must rise with depth
    // (and saturate, not explode).
    let p = SimParams::default();
    let d1 = pipelined_append_experiment(p, 16, 64 * 1024, 1 << 20, 512, 1);
    let d4 = pipelined_append_experiment(p, 16, 64 * 1024, 1 << 20, 512, 4);
    assert!(
        d4.mbps > 1.2 * d1.mbps,
        "depth-4 pipelining must clearly beat sequential: {} vs {}",
        d4.mbps,
        d1.mbps
    );
    assert!(d4.mbps < 10.0 * d1.mbps, "a 4-deep pipeline cannot exceed ~4x: {}", d4.mbps);
    assert!(d4.seconds < d1.seconds);
}

#[test]
fn pipelined_depth_one_matches_sequential_client() {
    let p = SimParams::default();
    let seq = append_experiment(p, 10, 64 * 1024, 1 << 20, 256);
    let pipe = pipelined_append_experiment(p, 10, 64 * 1024, 1 << 20, 256, 1);
    let seq_total: f64 = seq.iter().map(|pt| pt.seconds).sum();
    assert!(
        (pipe.seconds - seq_total).abs() < 1e-6,
        "depth 1 must degenerate to the sequential pipeline: {} vs {}",
        pipe.seconds,
        seq_total
    );
}

#[test]
fn cold_border_descent_costs_more() {
    let cached = append_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 128);
    let cold_params = SimParams { cached_border_descent: false, ..SimParams::default() };
    let cold = append_experiment(cold_params, 10, 64 * 1024, 1 << 20, 128);
    let avg = |pts: &[blobseer_sim::AppendPoint]| {
        pts.iter().map(|p| p.mbps).sum::<f64>() / pts.len() as f64
    };
    assert!(avg(&cold) < avg(&cached));
}

#[test]
fn crashed_writer_wedges_then_recovers() {
    // One of four pipelined writers dies right after registering
    // append #16; the lease expires 80 virtual ms later. Publication
    // must stall while the hole is wedged and burst past the
    // pre-crash rate once the version manager skips it.
    let p = SimParams::default();
    let s = crash_writer_experiment(p, 16, 64 * 1024, 1 << 20, 1024, 4, 16, 0.08);
    assert!(s.crash_at > 0.0);
    assert!((s.stall_seconds - 0.08).abs() < 1e-9);
    assert_eq!(s.abort_at, s.crash_at + s.stall_seconds);
    // Everything but the hole publishes: 64 registered appends, the
    // dead writer loses its own plus all its later slots never happen.
    assert!(s.published >= 48, "got {}", s.published);
    // Wedged: the only during-window publications are completions of
    // versions *below* the hole that were still in flight at crash.
    assert!(
        s.mbps_during < 0.5 * s.mbps_before,
        "publication must stall: {} vs {}",
        s.mbps_during,
        s.mbps_before
    );
    // Recovered: the backlog drains and ingest continues.
    assert!(
        s.mbps_after > s.mbps_before,
        "post-abort burst must beat steady state: {} vs {}",
        s.mbps_after,
        s.mbps_before
    );
    assert!(s.total_seconds >= s.abort_at);
}

#[test]
fn crash_recovery_is_deterministic() {
    let p = SimParams::default();
    let a = crash_writer_experiment(p, 16, 64 * 1024, 1 << 20, 512, 4, 8, 0.05);
    let b = crash_writer_experiment(p, 16, 64 * 1024, 1 << 20, 512, 4, 8, 0.05);
    assert_eq!(a.crash_at, b.crash_at);
    assert_eq!(a.mbps_before, b.mbps_before);
    assert_eq!(a.mbps_after, b.mbps_after);
    assert_eq!(a.published, b.published);
}

#[test]
fn longer_leases_stall_longer() {
    let p = SimParams::default();
    let short = crash_writer_experiment(p, 16, 64 * 1024, 1 << 20, 512, 4, 8, 0.05);
    let long = crash_writer_experiment(p, 16, 64 * 1024, 1 << 20, 512, 4, 8, 0.5);
    assert!(long.stall_seconds > short.stall_seconds);
    assert!(long.total_seconds >= short.total_seconds);
    assert_eq!(long.published, short.published, "the TTL changes when, not what");
}

#[test]
fn scrub_cost_is_a_small_fraction_of_ingest() {
    let s = scrub_experiment(SimParams::default(), 10, 64 * 1024, 1 << 20, 256, 8);
    // 16 appends of 16 pages; every 8th crashed → 2 leaks of 16 pages.
    assert_eq!(s.pages_deleted, 32);
    assert_eq!(s.pages_scanned, 256 + 32);
    assert!(s.nodes_fetched > 256, "at least one node per page plus inner levels");
    assert!(s.mark_seconds > 0.0 && s.sweep_seconds > 0.0);
    assert!((s.scrub_seconds - (s.mark_seconds + s.sweep_seconds)).abs() < 1e-9);
    // The whole point of a background scrubber: far cheaper than the
    // ingest it cleans up after.
    assert!(
        s.scrub_to_ingest < 0.5,
        "scrub should be a fraction of ingest, got {}",
        s.scrub_to_ingest
    );
}

#[test]
fn scrub_experiment_is_deterministic_and_scales_with_leaks() {
    let p = SimParams::default();
    let a = scrub_experiment(p, 10, 64 * 1024, 1 << 20, 256, 4);
    let b = scrub_experiment(p, 10, 64 * 1024, 1 << 20, 256, 4);
    assert_eq!(a.scrub_seconds, b.scrub_seconds);
    assert_eq!(a.pages_deleted, b.pages_deleted);
    // No failure injection → nothing to delete, but mark + scan still
    // cost something.
    let clean = scrub_experiment(p, 10, 64 * 1024, 1 << 20, 256, 0);
    assert_eq!(clean.pages_deleted, 0);
    assert!(clean.scrub_seconds > 0.0);
    assert!(clean.scrub_seconds < a.scrub_seconds, "leaks add sweep work");
    assert!(clean.pages_scanned < a.pages_scanned);
}
