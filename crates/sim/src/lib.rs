//! Simulated BlobSeer protocol pipelines (the paper's §5 experiments).
//!
//! This crate reruns the paper's two evaluation workloads on the
//! [`blobseer_simnet`] cluster model:
//!
//! * [`append_experiment`] — Figure 2(a): a single client repeatedly
//!   appends to a growing blob; per-append bandwidth is recorded
//!   against the blob's page count;
//! * [`read_experiment`] — Figure 2(b): N concurrent readers fetch
//!   disjoint 64 MiB chunks of a large blob; the average per-reader
//!   bandwidth is recorded against N;
//! * [`pipelined_append_experiment`] — the Figure 4/5 overlap
//!   scenario: a client keeps `depth` appends in flight (the engine's
//!   `append_pipelined`), overlapping data transfers with metadata
//!   work of lower versions;
//! * [`crash_writer_experiment`] — beyond the paper (which defers
//!   client failures to future work): one of the pipelined writers
//!   dies right after registering a version, wedging publication until
//!   the engine's writer lease expires and the version manager skips
//!   the hole. Measures the stall and the recovery.
//! * [`scrub_experiment`] — the other half of running versioned
//!   storage as a long-lived service: the cost of the provider-side
//!   orphan mark-and-sweep (PR 5) over the end state of a
//!   crash-injected ingest, priced against the ingest itself.
//! * [`degraded_read_experiment`] — Figure 2(b) under provider
//!   failure (PR 7): dead data providers redirect their pages to live
//!   replica-chain members, and the concurrent-reader bandwidth is
//!   priced against the healthy baseline — the degraded-mode tax.
//! * [`elastic_drain_experiment`] — the elastic-membership scenario
//!   (PR 9): a replicated deployment grows by two providers and drains
//!   one; the drain's mark/scan/migrate phases are priced against the
//!   ingest that filled the victim — the cost of shrinking a cluster
//!   by one node.
//! * [`qos_isolation_experiment`] — the multi-tenant scenario (PR 8):
//!   a noisy tenant floods a shared ingest with 10× a quiet tenant's
//!   traffic; quiet-tenant p99 is measured solo, shared-FIFO, and
//!   shared with `blobseer_qos` token-bucket admission + DRR drain —
//!   the isolation the QoS subsystem buys.
//!
//! Crucially, the *costs* fed into the simulator come from the real
//! implementation, not from formulas baked into the benchmark:
//!
//! * the number and position of metadata tree nodes touched by an
//!   update or a read come from [`blobseer_meta::plan`] — the exact
//!   planner the real engine executes, which is where the power-of-two
//!   bandwidth steps of Figure 2(a) originate;
//! * page→provider placement replays the engine's round-robin
//!   allocation, and tree-node→metadata-provider placement uses the
//!   real DHT hash ([`blobseer_dht::static_bucket`]), so simulated
//!   hotspots (every reader hits the same root bucket) are the real
//!   ones.
//!
//! Calibration constants live in [`SimParams`]; see that type and
//! EXPERIMENTS.md for the mapping to the paper's testbed.

mod append;
mod cluster;
mod degraded;
mod elastic;
mod failure;
mod params;
mod qos;
mod read;
mod scrub;

pub use append::{append_experiment, pipelined_append_experiment, AppendPoint, PipelinedSummary};
pub use cluster::Cluster;
pub use degraded::{degraded_read_experiment, DegradedReadSummary};
pub use elastic::{elastic_drain_experiment, ElasticSimSummary};
pub use failure::{crash_writer_experiment, CrashRecoverySummary};
pub use params::SimParams;
pub use qos::{qos_isolation_experiment, QosIsolationSummary};
pub use read::{read_experiment, ReadSummary};
pub use scrub::{scrub_experiment, ScrubSimSummary};
