//! The Figure 2(a) workload: a single client appends to a growing blob.
//!
//! Per append, the simulated client executes the real pipeline of
//! Algorithm 2: store all new pages in parallel → register with the
//! version manager → build the new metadata tree (the node set comes
//! from [`blobseer_meta::plan::update_plan`] — the *real* planner) and
//! store every node in parallel → notify the version manager. The
//! client-side tree build charges CPU per node and per level, which is
//! where the paper's "slight bandwidth decrease ... when the number of
//! pages reaches a power of two" comes from: crossing a power of two
//! adds a tree level permanently.

use std::sync::{Arc, Mutex};

use blobseer_meta::plan::{border_positions, update_plan, UpdatePlan};
use blobseer_simnet::{
    millis, to_secs, Activity, Engine, Nanos, Network, NodeId, Process, Stage, Step, TransferSpec,
};
use blobseer_types::{NodePos, PageRange};

use crate::cluster::Cluster;
use crate::params::SimParams;

/// Shared sink for per-append completion times: `(global index,
/// notify-ack time)` pairs, filled by every client of a run.
pub(crate) type CompletionSink = Arc<Mutex<Vec<(u64, Nanos)>>>;

/// One measured append: the paper plots `mbps` against `pages_after`.
#[derive(Clone, Copy, Debug)]
pub struct AppendPoint {
    /// Blob size in pages after this append.
    pub pages_after: u64,
    /// Wall-clock (virtual) duration of the append in seconds.
    pub seconds: f64,
    /// Achieved append bandwidth in MB/s.
    pub mbps: f64,
}

/// Run the Figure 2(a) experiment: a dedicated client performs
/// successive `append_bytes`-sized appends until the blob holds
/// `total_pages` pages, on a cluster of `providers` co-deployed
/// data+metadata providers. Returns one point per append.
pub fn append_experiment(
    params: SimParams,
    providers: usize,
    page_size: u64,
    append_bytes: u64,
    total_pages: u64,
) -> Vec<AppendPoint> {
    assert!(append_bytes.is_multiple_of(page_size), "appends are page-aligned in this workload");
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, 1)
        .with_centralized_metadata(params.centralized_metadata);
    let client = cluster.clients[0];
    let results = Arc::new(Mutex::new(Vec::new()));
    let proc = AppendClient {
        params,
        cluster,
        client,
        page_size,
        pages_per_append: append_bytes / page_size,
        total_pages,
        next_index: 0,
        stride: 1,
        phase: Phase::Begin,
        plan: None,
        append_start: 0,
        results: Some(Arc::clone(&results)),
        crash_after_register: None,
        crash_time: None,
        completions: None,
    };
    let mut engine = Engine::new(net);
    engine.spawn(Box::new(proc));
    engine.run();
    drop(engine); // releases the process's clone of `results`
    Arc::try_unwrap(results).expect("engine dropped").into_inner().expect("no poison")
}

/// Aggregate result of one pipelined-append run.
#[derive(Clone, Copy, Debug)]
pub struct PipelinedSummary {
    /// Updates kept in flight.
    pub depth: usize,
    /// Virtual time until the last append published, in seconds.
    pub seconds: f64,
    /// Aggregate append bandwidth in MB/s.
    pub mbps: f64,
}

/// The paper's Figure 4/5 overlap scenario: a client keeps `depth`
/// appends in flight. Modelled as `depth` interleaved append pipelines
/// (process `k` performs appends `k, k + depth, ...` of the version
/// sequence) whose data transfers, border fetches and metadata stores
/// all overlap on the simulated network — exactly what the engine's
/// `append_pipelined` does with its completion pool. `depth == 1`
/// degenerates to the sequential [`append_experiment`] client.
pub fn pipelined_append_experiment(
    params: SimParams,
    providers: usize,
    page_size: u64,
    append_bytes: u64,
    total_pages: u64,
    depth: usize,
) -> PipelinedSummary {
    assert!(depth >= 1);
    assert!(append_bytes.is_multiple_of(page_size), "appends are page-aligned in this workload");
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, depth)
        .with_centralized_metadata(params.centralized_metadata);
    let mut engine = Engine::new(net);
    for k in 0..depth {
        engine.spawn(Box::new(AppendClient {
            params,
            client: cluster.clients[k],
            cluster: cluster.clone(),
            page_size,
            pages_per_append: append_bytes / page_size,
            total_pages,
            next_index: k as u64,
            stride: depth as u64,
            phase: Phase::Begin,
            plan: None,
            append_start: 0,
            results: None,
            crash_after_register: None,
            crash_time: None,
            completions: None,
        }));
    }
    let end = engine.run();
    let seconds = to_secs(end);
    let bytes = total_pages * page_size;
    PipelinedSummary { depth, seconds, mbps: bytes as f64 / 1e6 / seconds }
}

pub(crate) enum Phase {
    /// Start the next append (or finish).
    Begin,
    /// Pages stored; register with the version manager.
    Register,
    /// Version assigned; resolve borders (cold descent only).
    Borders,
    /// Build the tree in memory (client CPU).
    Build,
    /// Store all new tree nodes.
    StoreNodes,
    /// Nodes durable; notify the version manager.
    Notify,
    /// Notify acknowledged; record the measurement.
    Record { start: Nanos, pages_after: u64, bytes: u64 },
}

pub(crate) struct AppendClient {
    pub(crate) params: SimParams,
    pub(crate) cluster: Cluster,
    pub(crate) client: NodeId,
    pub(crate) page_size: u64,
    pub(crate) pages_per_append: u64,
    pub(crate) total_pages: u64,
    /// Index (in the global version sequence) of this client's next
    /// append; advances by `stride` per append.
    pub(crate) next_index: u64,
    pub(crate) stride: u64,
    pub(crate) phase: Phase,
    pub(crate) plan: Option<UpdatePlan>,
    pub(crate) append_start: Nanos,
    /// Per-append measurement sink; `None` when the caller only wants
    /// the aggregate (the pipelined experiment).
    pub(crate) results: Option<Arc<Mutex<Vec<AppendPoint>>>>,
    /// Failure injection: after *registering* the append with this
    /// global index (version assigned, nothing else durable), the
    /// client dies — the crash-writer experiment's victim.
    pub(crate) crash_after_register: Option<u64>,
    /// Time-of-death cell for the victim.
    pub(crate) crash_time: Option<Arc<Mutex<Option<Nanos>>>>,
    /// Per-append completion sink — what the crash-writer experiment
    /// replays the publication frontier from.
    pub(crate) completions: Option<CompletionSink>,
}

impl AppendClient {
    fn rpc(&self, dst: NodeId, req_bytes: u64, resp_bytes: u64) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: req_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: resp_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    fn page_store(&self, page_index: u64) -> Activity {
        let p = &self.params;
        let dst = self.cluster.data_provider_of(page_index);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: self.page_size,
                src_overhead: p.client_send_overhead,
                dst_overhead: p.provider_store_overhead,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    fn node_store(&self, pos: NodePos) -> Activity {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.node_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: p.meta_store_overhead,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    fn node_fetch(&self, pos: NodePos) -> Vec<Stage> {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.node_bytes,
                src_overhead: p.meta_read_overhead,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ]
    }

    /// Client-side CPU cost of computing the new tree: per created node
    /// plus per level (border bookkeeping, level assembly). The
    /// per-level term is what makes a new tree level — gained exactly
    /// when the page count crosses a power of two — visible in the
    /// bandwidth curve.
    fn build_compute(&self, plan: &UpdatePlan) -> Nanos {
        let per_node = millis(0.01);
        let per_level = millis(0.15);
        plan.node_count() * per_node + u64::from(plan.depth()) * per_level
    }
}

impl Process for AppendClient {
    fn step(&mut self, now: Nanos) -> Step {
        loop {
            match self.phase {
                Phase::Begin => {
                    let pages_before = self.next_index * self.pages_per_append;
                    if pages_before >= self.total_pages {
                        return Step::Done;
                    }
                    self.append_start = now;
                    let range = PageRange::new(pages_before, self.pages_per_append);
                    let root = NodePos::root_for(pages_before + self.pages_per_append);
                    self.plan = Some(update_plan(range, root));
                    self.phase = Phase::Register;
                    let batch = range.iter().map(|p| self.page_store(p)).collect();
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.store_window,
                    };
                }
                Phase::Register => {
                    self.phase = Phase::Borders;
                    // Version grant carries the partial border set.
                    return Step::Await(vec![self.rpc(
                        self.cluster.vm,
                        self.params.ctl_bytes,
                        self.params.ctl_bytes + self.params.node_bytes,
                    )]);
                }
                Phase::Borders => {
                    if self.crash_after_register == Some(self.next_index) {
                        // The writer dies holding an assigned version:
                        // no metadata will be stored, no notify sent.
                        if let Some(cell) = &self.crash_time {
                            *cell.lock().expect("no poison") = Some(now);
                        }
                        return Step::Done;
                    }
                    self.phase = Phase::Build;
                    if self.params.cached_border_descent {
                        // Single writer: every border node is one this
                        // client wrote itself — resolution is local.
                        continue;
                    }
                    // Cold descent: sequential fetches of the border
                    // positions plus the path from the root.
                    let plan = self.plan.as_ref().expect("planned");
                    let mut stages = Vec::new();
                    let mut cur = plan.root;
                    while !cur.is_leaf() && cur.intersects(plan.range) {
                        stages.extend(self.node_fetch(cur));
                        cur = cur.child_toward(plan.range.first);
                    }
                    for pos in border_positions(plan.range, plan.root) {
                        stages.extend(self.node_fetch(pos));
                    }
                    if stages.is_empty() {
                        continue;
                    }
                    return Step::Await(vec![Activity::new(stages)]);
                }
                Phase::Build => {
                    // In-memory tree construction on the client CPU.
                    self.phase = Phase::StoreNodes;
                    let compute = self.build_compute(self.plan.as_ref().expect("planned"));
                    return Step::Await(vec![Activity::new(vec![Stage::Service {
                        node: self.client,
                        duration: compute,
                    }])]);
                }
                Phase::StoreNodes => {
                    self.phase = Phase::Notify;
                    let plan = self.plan.as_ref().expect("planned");
                    let batch: Vec<Activity> =
                        plan.positions().map(|pos| self.node_store(pos)).collect();
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.store_window,
                    };
                }
                Phase::Notify => {
                    // The notify RPC is the append's last timed step.
                    self.phase = Phase::Record {
                        start: self.append_start,
                        pages_after: (self.next_index + 1) * self.pages_per_append,
                        bytes: self.pages_per_append * self.page_size,
                    };
                    return Step::Await(vec![self.rpc(
                        self.cluster.vm,
                        self.params.ctl_bytes,
                        self.params.ctl_bytes,
                    )]);
                }
                Phase::Record { start, pages_after, bytes } => {
                    if let Some(completions) = &self.completions {
                        completions.lock().expect("no poison").push((self.next_index, now));
                    }
                    if let Some(results) = &self.results {
                        let seconds = to_secs(now - start);
                        results.lock().expect("no poison").push(AppendPoint {
                            pages_after,
                            seconds,
                            mbps: bytes as f64 / 1e6 / seconds,
                        });
                    }
                    self.next_index += self.stride;
                    self.phase = Phase::Begin;
                    continue;
                }
            }
        }
    }
}
