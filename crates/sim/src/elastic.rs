//! The elastic-rebalance experiment: what does draining a provider
//! cost, relative to the ingest that filled it, while the cluster
//! keeps growing?
//!
//! The modelled deployment state is the end state of a healthy
//! replicated ingest: `total_pages` pages placed round-robin over the
//! original `providers`, each with a successor-chain replica
//! (replication 2). Then the cluster *changes shape*: `joins` fresh
//! providers register (free — registration is a control-plane blip)
//! and provider 0 is drained. The drain executes the engine's phases
//! (`BlobSeer::drain_provider` on the real engine) on the simulated
//! cluster:
//!
//! * **mark** — fetch every live tree node from its metadata provider
//!   (the drain reuses the scrubber's liveness walk, so this phase is
//!   priced exactly like the scrub mark: it scales with *metadata*
//!   size and rides the same DHT paths);
//! * **scan** — one enumeration RPC at the victim, priced per page
//!   held ([`crate::SimParams::provider_scan_overhead`]);
//! * **migrate** — every copy the victim holds moves through the
//!   drain client to its post-retirement chain target: victim → client
//!   (read + reassembly) then client → target (send + store), with the
//!   write path's RPC window. Targets re-derive over the survivors
//!   *including the newcomers*, which is what makes the join half of
//!   the elasticity visible: a bigger survivor set spreads the
//!   migration fan-in;
//! * each migrated page ends with a deletion charge at the victim
//!   (storage mutation, priced like the scrub sweep's deletes).
//!
//! The headline number is `migrate_to_ingest`: virtual drain seconds
//! per virtual ingest second — the cost of shrinking a cluster by one
//! node as a fraction of the work that filled it. The real-engine
//! measurement of the same trajectory is `bench_report`'s
//! `elastic_rebalance` case (`blobseer_workloads::ElasticIngest`).

use std::sync::{Arc, Mutex};

use blobseer_meta::plan::update_plan;
use blobseer_simnet::{
    to_secs, Activity, Engine, Nanos, Network, NodeId, Process, Stage, Step, TransferSpec,
};
use blobseer_types::{div_ceil, NodePos, PageRange};

use crate::append::append_experiment;
use crate::cluster::Cluster;
use crate::params::SimParams;

/// Aggregate result of one elastic-rebalance run.
#[derive(Clone, Copy, Debug)]
pub struct ElasticSimSummary {
    /// Data providers before the churn.
    pub providers: usize,
    /// Providers joined before the drain.
    pub joined: usize,
    /// Pages the blob holds (each with one chain replica).
    pub pages_total: u64,
    /// Page copies the victim held and the drain migrated.
    pub pages_migrated: u64,
    /// Payload bytes of those copies.
    pub bytes_migrated: u64,
    /// Virtual seconds of the liveness mark …
    pub mark_seconds: f64,
    /// … of the victim's enumeration scan …
    pub scan_seconds: f64,
    /// … and of the copy-out/copy-in migration.
    pub migrate_seconds: f64,
    /// Total virtual drain time (mark + scan + migrate).
    pub drain_seconds: f64,
    /// Virtual time the equivalent sequential ingest took.
    pub ingest_seconds: f64,
    /// The elasticity tax: `drain_seconds / ingest_seconds`.
    pub migrate_to_ingest: f64,
}

/// Run the elastic-rebalance experiment; see the module docs.
/// Deterministic.
pub fn elastic_drain_experiment(
    params: SimParams,
    providers: usize,
    joins: usize,
    page_size: u64,
    append_bytes: u64,
    total_pages: u64,
) -> ElasticSimSummary {
    assert!(providers >= 3, "drain needs survivors beyond the replica chain");
    assert!(append_bytes.is_multiple_of(page_size), "appends are page-aligned in this workload");
    let pages_per_append = append_bytes / page_size;
    let appends = div_ceil(total_pages, pages_per_append);
    let pages = appends * pages_per_append;

    // Replay the ingest's metadata growth through the real planner —
    // the drain's mark fetches exactly these nodes (shared once).
    let mut nodes: Vec<NodePos> = Vec::new();
    for k in 0..appends {
        let range = PageRange::new(k * pages_per_append, pages_per_append);
        let root = NodePos::root_for((k + 1) * pages_per_append);
        for span in &update_plan(range, root).levels {
            nodes.extend(span.positions());
        }
    }

    // The victim's copy set under round-robin + successor replication:
    // primaries of pages placed on slot 0, plus replicas of pages whose
    // primary is the predecessor slot. Each migrates to its
    // post-retirement chain target, re-derived over the survivors
    // including the joined newcomers.
    let total_nodes = providers + joins;
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, total_nodes, 1)
        .with_centralized_metadata(params.centralized_metadata);
    let mut moves: Vec<(NodeId, u64)> = Vec::new(); // (target, pages)
    let mut per_target = vec![0u64; total_nodes];
    for page in 0..pages {
        let primary = (page % providers as u64) as usize;
        let replica = (primary + 1) % providers;
        if primary == 0 {
            // The primary copy moves to the slot after the (surviving)
            // replica in the new, larger ring.
            per_target[(replica + 1) % total_nodes] += 1;
        } else if replica == 0 {
            // The replica copy re-homes on the primary's new successor.
            per_target[(primary + 1) % total_nodes] += 1;
        }
    }
    for (slot, pages) in per_target.iter().enumerate() {
        if *pages > 0 {
            assert_ne!(slot, 0, "a migration target must not be the victim");
            moves.push((cluster.providers[slot], *pages));
        }
    }
    let pages_migrated: u64 = per_target.iter().sum();

    let mark_done = Arc::new(Mutex::new(None));
    let scan_done = Arc::new(Mutex::new(None));
    let mut engine = Engine::new(net);
    engine.spawn(Box::new(Drainer {
        params,
        client: cluster.clients[0],
        victim: cluster.providers[0],
        cluster,
        nodes,
        moves,
        page_size,
        phase: Phase::Mark,
        mark_done: Arc::clone(&mark_done),
        scan_done: Arc::clone(&scan_done),
    }));
    let end = engine.run();
    drop(engine);

    let mark_ns: Nanos = mark_done.lock().expect("no poison").expect("mark phase ran");
    let scan_ns: Nanos = scan_done.lock().expect("no poison").expect("scan phase ran");
    let drain_seconds = to_secs(end);
    let ingest_seconds: f64 = append_experiment(params, providers, page_size, append_bytes, pages)
        .iter()
        .map(|pt| pt.seconds)
        .sum();
    ElasticSimSummary {
        providers,
        joined: joins,
        pages_total: pages,
        pages_migrated,
        bytes_migrated: pages_migrated * page_size,
        mark_seconds: to_secs(mark_ns),
        scan_seconds: to_secs(scan_ns) - to_secs(mark_ns),
        migrate_seconds: drain_seconds - to_secs(scan_ns),
        drain_seconds,
        ingest_seconds,
        migrate_to_ingest: drain_seconds / ingest_seconds,
    }
}

enum Phase {
    Mark,
    Scan,
    Migrate,
    Finish,
}

struct Drainer {
    params: SimParams,
    cluster: Cluster,
    client: NodeId,
    victim: NodeId,
    nodes: Vec<NodePos>,
    /// `(target provider, pages to move there)`.
    moves: Vec<(NodeId, u64)>,
    page_size: u64,
    phase: Phase,
    mark_done: Arc<Mutex<Option<Nanos>>>,
    scan_done: Arc<Mutex<Option<Nanos>>>,
}

impl Drainer {
    /// One mark fetch — the scrubber's node-fetch shape.
    fn node_fetch(&self, pos: NodePos) -> Activity {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.node_bytes,
                src_overhead: p.meta_read_overhead,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    /// The victim's enumeration scan, priced per page held.
    fn victim_scan(&self, pages: u64) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst: self.victim,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service {
                node: self.victim,
                duration: p.rpc_service + pages * p.provider_scan_overhead,
            },
            Stage::Transfer(TransferSpec {
                src: self.victim,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    /// One page's migration: victim → client (read + reassembly),
    /// client → target (send + store), and the victim-side deletion of
    /// the evacuated copy.
    fn migrate_page(&self, target: NodeId) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.victim,
                dst: self.client,
                bytes: self.page_size,
                src_overhead: p.provider_read_overhead,
                dst_overhead: p.client_recv_page_overhead,
            }),
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst: target,
                bytes: self.page_size,
                src_overhead: p.client_send_overhead,
                dst_overhead: p.provider_store_overhead,
            }),
            // Deleting the drained copy mutates the victim's store —
            // same charge the scrub sweep pays per reclaimed page.
            Stage::Service { node: self.victim, duration: p.provider_store_overhead },
        ])
    }
}

impl Process for Drainer {
    fn step(&mut self, now: Nanos) -> Step {
        match self.phase {
            Phase::Mark => {
                self.phase = Phase::Scan;
                let batch: Vec<Activity> =
                    self.nodes.iter().map(|&pos| self.node_fetch(pos)).collect();
                Step::AwaitWindow { activities: batch, window: self.params.fetch_window }
            }
            Phase::Scan => {
                *self.mark_done.lock().expect("no poison") = Some(now);
                self.phase = Phase::Migrate;
                let held: u64 = self.moves.iter().map(|&(_, n)| n).sum();
                Step::Await(vec![self.victim_scan(held)])
            }
            Phase::Migrate => {
                *self.scan_done.lock().expect("no poison") = Some(now);
                self.phase = Phase::Finish;
                let batch: Vec<Activity> = self
                    .moves
                    .iter()
                    .flat_map(|&(target, n)| (0..n).map(move |_| target))
                    .map(|target| self.migrate_page(target))
                    .collect();
                Step::AwaitWindow { activities: batch, window: self.params.store_window }
            }
            Phase::Finish => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_drain_is_deterministic_and_priced() {
        let run = || elastic_drain_experiment(SimParams::default(), 16, 2, 64 * 1024, 1 << 20, 256);
        let a = run();
        let b = run();
        assert_eq!(a.pages_migrated, b.pages_migrated);
        assert_eq!(a.drain_seconds, b.drain_seconds);
        // Replication 2 over 16 providers: the victim holds ~2/16 of
        // all copies.
        assert_eq!(a.pages_migrated, 2 * a.pages_total / 16);
        assert!(a.migrate_to_ingest > 0.0);
        assert!(
            a.migrate_to_ingest < 1.0,
            "moving 1/8 of the copies must cost less than the full ingest: {:?}",
            a
        );
        assert!(a.mark_seconds > 0.0 && a.scan_seconds > 0.0 && a.migrate_seconds > 0.0);
    }
}
