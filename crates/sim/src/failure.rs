//! The crash-writer experiment: what the paper's §5 evaluation never
//! measured, because the paper defers client failures to future work.
//!
//! `depth` pipelined append clients ingest into one blob (the Figure
//! 4/5 overlap pattern). One of them **dies right after registering a
//! version** — the worst point: the total order now has a hole and no
//! later version can publish. The engine's answer (PR 4) is the writer
//! lease: after `lease_ttl` of silence the version manager aborts the
//! dead version and publication drains over the hole.
//!
//! The simulation splits faithfully along the real architecture's
//! seams: per-append *completion* times come from the simnet cluster
//! (the same transfer/CPU pipeline as [`crate::append_experiment`],
//! network contention included), while the *publication frontier* is
//! replayed with the version manager's exact drain rule — a version
//! publishes at `max(its completion, every lower completion, hole
//! abort time)`, and the hole itself publishes nothing. The replay is
//! exact because the drain rule is deterministic given those inputs;
//! the one modelled approximation is the abort instant, taken as
//! `crash + lease_ttl` (repair cost is page stores for one append,
//! negligible against any sane TTL).
//!
//! The headline numbers: published throughput **before** the crash,
//! **during** the wedge (≈ 0 — everything completes but nothing may
//! publish), and **after** the abort (a burst as the backlog drains,
//! then steady state) — recovery, measured.

use std::sync::{Arc, Mutex};

use blobseer_simnet::{millis, to_secs, Engine, Nanos, Network};

use crate::append::{AppendClient, Phase};
use crate::cluster::Cluster;
use crate::params::SimParams;

/// Aggregate result of one crash-writer run.
#[derive(Clone, Copy, Debug)]
pub struct CrashRecoverySummary {
    /// Virtual time the writer died (right after version registration).
    pub crash_at: f64,
    /// Virtual time the lease sweeper aborted the dead version.
    pub abort_at: f64,
    /// How long publication was wedged behind the hole, in seconds.
    pub stall_seconds: f64,
    /// Published throughput in MB/s before the crash …
    pub mbps_before: f64,
    /// … while the hole wedged publication …
    pub mbps_during: f64,
    /// … and after the abort (backlog burst + steady state).
    pub mbps_after: f64,
    /// Appends that published (the dead writer's hole excluded).
    pub published: u64,
    /// Virtual time of the last publication.
    pub total_seconds: f64,
}

/// Run the crash-writer experiment; see the module docs. The writer
/// owning global append index `crash_index` dies right after
/// registering it; `lease_ttl_secs` is the VM lease TTL mapped to
/// virtual seconds. Deterministic.
// Mirrors the flat positional style of the other experiment entry
// points; one extra knob tips it over clippy's argument budget.
#[allow(clippy::too_many_arguments)]
pub fn crash_writer_experiment(
    params: SimParams,
    providers: usize,
    page_size: u64,
    append_bytes: u64,
    total_pages: u64,
    depth: usize,
    crash_index: u64,
    lease_ttl_secs: f64,
) -> CrashRecoverySummary {
    assert!(depth >= 1);
    assert!(append_bytes.is_multiple_of(page_size), "appends are page-aligned in this workload");
    assert!(
        crash_index * (append_bytes / page_size) < total_pages,
        "the crashed append must be part of the sweep"
    );
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, depth)
        .with_centralized_metadata(params.centralized_metadata);
    let completions = Arc::new(Mutex::new(Vec::new()));
    let crash_time = Arc::new(Mutex::new(None));
    let mut engine = Engine::new(net);
    for k in 0..depth {
        let is_victim = crash_index % depth as u64 == k as u64;
        engine.spawn(Box::new(AppendClient {
            params,
            client: cluster.clients[k],
            cluster: cluster.clone(),
            page_size,
            pages_per_append: append_bytes / page_size,
            total_pages,
            next_index: k as u64,
            stride: depth as u64,
            phase: Phase::Begin,
            plan: None,
            append_start: 0,
            results: None,
            crash_after_register: is_victim.then_some(crash_index),
            crash_time: is_victim.then(|| Arc::clone(&crash_time)),
            completions: Some(Arc::clone(&completions)),
        }));
    }
    engine.run();
    drop(engine);

    let crash_ns: Nanos = crash_time.lock().expect("no poison").expect("victim registered");
    let abort_ns: Nanos = crash_ns + millis(lease_ttl_secs * 1000.0);
    let mut rows: Vec<(u64, Option<Nanos>)> = Arc::try_unwrap(completions)
        .expect("engine dropped")
        .into_inner()
        .expect("no poison")
        .into_iter()
        .map(|(idx, t)| (idx, Some(t)))
        .collect();
    rows.push((crash_index, None));
    rows.sort_unstable_by_key(|&(idx, _)| idx);

    // Replay the VM's drain rule over the completion times.
    let mut frontier: Nanos = 0;
    let mut publications: Vec<Nanos> = Vec::with_capacity(rows.len());
    for (_, completion) in rows {
        match completion {
            Some(t) => {
                frontier = frontier.max(t);
                publications.push(frontier);
            }
            None => frontier = frontier.max(abort_ns), // the hole: skipped, publishes nothing
        }
    }
    // With a TTL far past the last completion the backlog bursts out
    // the instant the abort lands; clamping keeps the windows ordered.
    let end = publications.iter().copied().max().unwrap_or(abort_ns).max(abort_ns);

    let window_mbps = |from: Nanos, to: Nanos| {
        let bytes =
            publications.iter().filter(|&&t| t >= from && t < to).count() as u64 * append_bytes;
        let secs = to_secs(to.saturating_sub(from)).max(1e-9);
        bytes as f64 / 1e6 / secs
    };
    CrashRecoverySummary {
        crash_at: to_secs(crash_ns),
        abort_at: to_secs(abort_ns),
        stall_seconds: to_secs(abort_ns - crash_ns),
        mbps_before: window_mbps(0, crash_ns),
        mbps_during: window_mbps(crash_ns, abort_ns),
        mbps_after: window_mbps(abort_ns, end + 1),
        published: publications.len() as u64,
        total_seconds: to_secs(end),
    }
}
