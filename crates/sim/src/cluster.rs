//! Simulated deployment layout (paper §5).
//!
//! "We deploy each the version manager and the provider manager on two
//! distinct dedicated nodes, and we co-deploy a data provider and a
//! metadata provider on the other nodes."

use blobseer_dht::static_bucket;
use blobseer_simnet::{Network, NodeId, NodeSpec};
use blobseer_types::NodePos;

/// Node roles of one simulated deployment.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// The version manager's dedicated node.
    pub vm: NodeId,
    /// The provider manager's dedicated node.
    pub pm: NodeId,
    /// Co-deployed data + metadata provider nodes.
    pub providers: Vec<NodeId>,
    /// Dedicated client nodes (may be empty when clients are
    /// co-deployed on provider nodes, as in the Figure 2(b) setup).
    pub clients: Vec<NodeId>,
    /// When `true`, every metadata node lives on `providers[0]` — the
    /// centralized-metadata baseline of the related work (paper §1).
    pub centralized_metadata: bool,
}

impl Cluster {
    /// Build the paper's topology: VM + PM on dedicated nodes,
    /// `providers` co-deployed data+metadata nodes, plus
    /// `dedicated_clients` extra client nodes.
    pub fn build(net: &mut Network, providers: usize, dedicated_clients: usize) -> Cluster {
        let spec = NodeSpec::grid5000();
        let vm = net.add_node(spec);
        let pm = net.add_node(spec);
        let providers = (0..providers).map(|_| net.add_node(spec)).collect();
        let clients = (0..dedicated_clients).map(|_| net.add_node(spec)).collect();
        Cluster { vm, pm, providers, clients, centralized_metadata: false }
    }

    /// Switch the deployment to the centralized-metadata baseline.
    pub fn with_centralized_metadata(mut self, on: bool) -> Self {
        self.centralized_metadata = on;
        self
    }

    /// Data provider storing `page_index` — replays the engine's
    /// round-robin allocation for a single sequential writer.
    pub fn data_provider_of(&self, page_index: u64) -> NodeId {
        self.providers[(page_index % self.providers.len() as u64) as usize]
    }

    /// Metadata provider (DHT bucket) owning the tree node at `pos` —
    /// the *real* static distribution used by `blobseer-dht`, or the
    /// single metadata server in centralized mode.
    pub fn meta_provider_of(&self, pos: NodePos) -> NodeId {
        if self.centralized_metadata {
            return self.providers[0];
        }
        self.providers[static_bucket(&(pos.offset, pos.size), self.providers.len())]
    }

    /// The node a reader runs on: reader `r` is co-deployed on provider
    /// node `r mod P` (paper §5: "the readers are deployed on nodes
    /// that already run a data and metadata provider").
    pub fn co_deployed_client(&self, reader: usize) -> NodeId {
        self.providers[reader % self.providers.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_simnet::millis;

    #[test]
    fn topology_counts() {
        let mut net = Network::new(millis(0.1));
        let c = Cluster::build(&mut net, 173, 1);
        assert_eq!(net.node_count(), 2 + 173 + 1);
        assert_eq!(c.providers.len(), 173);
        assert_eq!(c.clients.len(), 1);
        assert_ne!(c.vm, c.pm);
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let mut net = Network::new(millis(0.1));
        let c = Cluster::build(&mut net, 50, 0);
        assert_eq!(c.data_provider_of(0), c.providers[0]);
        assert_eq!(c.data_provider_of(51), c.providers[1]);
        for level in 0..10u32 {
            let pos = NodePos::new(0, 1 << level);
            let a = c.meta_provider_of(pos);
            let b = c.meta_provider_of(pos);
            assert_eq!(a, b);
            assert!(c.providers.contains(&a));
        }
    }

    #[test]
    fn centralized_mode_pins_metadata_to_one_node() {
        let mut net = Network::new(millis(0.1));
        let c = Cluster::build(&mut net, 8, 0).with_centralized_metadata(true);
        for level in 0..6u32 {
            assert_eq!(c.meta_provider_of(NodePos::new(0, 1 << level)), c.providers[0]);
            assert_eq!(c.meta_provider_of(NodePos::new(1 << level, 1 << level)), c.providers[0]);
        }
    }

    #[test]
    fn co_deployment_wraps() {
        let mut net = Network::new(millis(0.1));
        let c = Cluster::build(&mut net, 3, 0);
        assert_eq!(c.co_deployed_client(0), c.providers[0]);
        assert_eq!(c.co_deployed_client(4), c.providers[1]);
    }
}
