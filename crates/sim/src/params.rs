//! Calibration constants for the simulated testbed.

use blobseer_simnet::{millis, Nanos};

/// Cost model of the simulated deployment.
///
/// Wire-level constants are taken from the paper (§5): 1 Gbit/s links
/// measured at 117.5 MB/s for TCP, 0.1 ms latency. Software-path
/// constants are calibrated so that the *single-client* operating
/// points match the paper's measurements (≈ 95-105 MB/s append
/// bandwidth at small blob sizes; ≈ 60 MB/s single-reader bandwidth);
/// everything else — degradation under concurrency, power-of-two steps,
/// series ordering — then **emerges** from the model rather than being
/// fit. The asymmetry between cheap send paths and expensive
/// receive/storage paths reflects the prototype's behaviour: writers
/// push pages zero-copy, while receivers copy, checksum and store.
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// NIC capacity, bytes/second, full duplex (paper: 117.5 MB/s).
    pub bandwidth_bps: f64,
    /// One-way propagation latency (paper: 0.1 ms).
    pub latency: Nanos,
    /// CPU service time per RPC at any server (request parse/dispatch).
    pub rpc_service: Nanos,
    /// Wire size of control messages (requests, acks, version grants).
    pub ctl_bytes: u64,
    /// Wire size of a serialized metadata tree node.
    pub node_bytes: u64,
    /// Sender-side per-transfer cost at a client pushing a page
    /// (scatter-gather send).
    pub client_send_overhead: Nanos,
    /// Receiver-side per-transfer cost at a client pulling a page
    /// (reassembly + copy into the user buffer). Calibrates the
    /// single-reader bandwidth of Figure 2(b).
    pub client_recv_page_overhead: Nanos,
    /// Receiver-side per-transfer cost at a client for small messages.
    pub client_recv_ctl_overhead: Nanos,
    /// Receive-and-store path cost per page at a data provider.
    pub provider_store_overhead: Nanos,
    /// Read-and-send path cost per page at a data provider.
    pub provider_read_overhead: Nanos,
    /// Store path cost per tree node at a metadata provider.
    pub meta_store_overhead: Nanos,
    /// Read path cost per tree node at a metadata provider.
    pub meta_read_overhead: Nanos,
    /// Per-page CPU cost of a provider enumerating its local store
    /// during an orphan-scrub sweep (directory/hash-shard walk — far
    /// cheaper than serving a page, which is why the sweep is priced
    /// per page scanned rather than per RPC).
    pub provider_scan_overhead: Nanos,
    /// When `true`, a writer's border-set resolution is free of remote
    /// fetches because the client caches the nodes it wrote itself —
    /// exact for the single-writer experiments of Figure 2(a). Set to
    /// `false` to price a cold descent of the published tree (used by
    /// the ablation benches).
    pub cached_border_descent: bool,
    /// Maximum concurrent outbound fetch RPCs per client (request
    /// pipelining depth on the read path).
    pub fetch_window: usize,
    /// Maximum concurrent outbound store RPCs per client (write path).
    pub store_window: usize,
    /// Ablation switch: place ALL metadata tree nodes on a single
    /// server instead of distributing them over the DHT. This is the
    /// related-work baseline the paper argues against (§1: "in all
    /// these systems the metadata management is centralized"); measured
    /// by `--bench ablation_metadata`.
    pub centralized_metadata: bool,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            bandwidth_bps: 117.5e6,
            latency: millis(0.1),
            rpc_service: millis(0.1),
            ctl_bytes: 64,
            node_bytes: 128,
            client_send_overhead: millis(0.02),
            client_recv_page_overhead: millis(0.45),
            client_recv_ctl_overhead: millis(0.01),
            provider_store_overhead: millis(0.5),
            provider_read_overhead: millis(0.36),
            meta_store_overhead: millis(0.03),
            meta_read_overhead: millis(0.01),
            provider_scan_overhead: millis(0.002),
            cached_border_descent: true,
            fetch_window: 8,
            store_window: 16,
            centralized_metadata: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let p = SimParams::default();
        assert_eq!(p.bandwidth_bps, 117.5e6);
        assert_eq!(p.latency, 100_000);
    }
}
