//! The Figure 2(b) workload: concurrent readers over disjoint chunks.
//!
//! A blob of `blob_pages` pages (the paper grows it to 64 GiB = 2^20
//! pages of 64 KiB) is served by co-deployed data+metadata providers.
//! Each reader executes Algorithm 1: consult the version manager, walk
//! the metadata tree level by level (parents before children — the
//! node set per level comes from [`blobseer_meta::plan::read_plan`]),
//! then fetch all pages in parallel. Readers run *on provider nodes*
//! ("the readers are deployed on nodes that already run a data and
//! metadata provider"), so client-side work contends with serving work
//! — one of the two degradation sources under concurrency, the other
//! being the shared upper tree levels (every reader fetches the same
//! root from the same metadata provider).

use std::sync::{Arc, Mutex};

use blobseer_meta::plan::{read_plan, ReadPlan};
use blobseer_simnet::{
    to_secs, Activity, Engine, Nanos, Network, NodeId, Process, Stage, Step, TransferSpec,
};
use blobseer_types::{NodePos, PageRange};

use crate::cluster::Cluster;
use crate::params::SimParams;

/// Aggregate result of one reader-concurrency point.
#[derive(Clone, Copy, Debug)]
pub struct ReadSummary {
    /// Number of concurrent readers.
    pub readers: usize,
    /// Mean per-reader bandwidth in MB/s (the paper's y-axis).
    pub avg_mbps: f64,
    /// Slowest reader's bandwidth.
    pub min_mbps: f64,
    /// Fastest reader's bandwidth.
    pub max_mbps: f64,
    /// Virtual time until the last reader finished, in seconds.
    pub seconds: f64,
}

/// Run the Figure 2(b) experiment: `readers` concurrent clients each
/// read a distinct chunk of `chunk_pages` pages from a blob of
/// `blob_pages` pages striped over `providers` co-deployed nodes.
pub fn read_experiment(
    params: SimParams,
    providers: usize,
    readers: usize,
    blob_pages: u64,
    page_size: u64,
    chunk_pages: u64,
) -> ReadSummary {
    assert!(readers as u64 * chunk_pages <= blob_pages, "chunks must be disjoint");
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, 0)
        .with_centralized_metadata(params.centralized_metadata);
    let root = NodePos::root_for(blob_pages);
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut engine = Engine::new(net);
    for r in 0..readers {
        let range = PageRange::new(r as u64 * chunk_pages, chunk_pages);
        engine.spawn(Box::new(ReadClient {
            params,
            client: cluster.co_deployed_client(r),
            cluster: cluster.clone(),
            page_size,
            plan: read_plan(range, root),
            range,
            phase: Phase::Begin,
            level: 0,
            start: 0,
            results: Arc::clone(&results),
        }));
    }
    let end = engine.run();
    drop(engine); // releases the readers' clones of `results`
    let durations =
        Arc::try_unwrap(results).expect("engine dropped").into_inner().expect("no poison");
    let bytes = (chunk_pages * page_size) as f64;
    let mbps: Vec<f64> = durations.iter().map(|&d| bytes / 1e6 / to_secs(d)).collect();
    ReadSummary {
        readers,
        avg_mbps: mbps.iter().sum::<f64>() / mbps.len() as f64,
        min_mbps: mbps.iter().copied().fold(f64::INFINITY, f64::min),
        max_mbps: mbps.iter().copied().fold(0.0, f64::max),
        seconds: to_secs(end),
    }
}

enum Phase {
    Begin,
    MetaLevels,
    Pages,
    Finish,
}

struct ReadClient {
    params: SimParams,
    cluster: Cluster,
    client: NodeId,
    page_size: u64,
    plan: ReadPlan,
    range: PageRange,
    phase: Phase,
    level: usize,
    start: Nanos,
    results: Arc<Mutex<Vec<Nanos>>>,
}

impl ReadClient {
    fn node_fetch(&self, pos: NodePos) -> Activity {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.node_bytes,
                src_overhead: p.meta_read_overhead,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    fn page_fetch(&self, page_index: u64) -> Activity {
        let p = &self.params;
        let dst = self.cluster.data_provider_of(page_index);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: self.page_size,
                src_overhead: p.provider_read_overhead,
                dst_overhead: p.client_recv_page_overhead,
            }),
        ])
    }

    fn vm_rpc(&self) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst: self.cluster.vm,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: self.cluster.vm, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: self.cluster.vm,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }
}

impl Process for ReadClient {
    fn step(&mut self, now: Nanos) -> Step {
        loop {
            match self.phase {
                Phase::Begin => {
                    self.start = now;
                    self.phase = Phase::MetaLevels;
                    // Algorithm 1 line 1: check publication with the VM.
                    return Step::Await(vec![self.vm_rpc()]);
                }
                Phase::MetaLevels => {
                    if self.level >= self.plan.levels.len() {
                        self.phase = Phase::Pages;
                        continue;
                    }
                    let span = self.plan.levels[self.level];
                    self.level += 1;
                    let batch = span.positions().map(|pos| self.node_fetch(pos)).collect();
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.fetch_window,
                    };
                }
                Phase::Pages => {
                    self.phase = Phase::Finish;
                    let batch = self.range.iter().map(|p| self.page_fetch(p)).collect();
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.fetch_window,
                    };
                }
                Phase::Finish => {
                    self.results.lock().expect("no poison").push(now - self.start);
                    return Step::Done;
                }
            }
        }
    }
}
