//! The degraded-mode read experiment: Figure 2(b) with dead providers.
//!
//! PR 7 makes provider failure a first-class state: with replication
//! `r`, every page has copies on its primary and the next `r − 1`
//! providers in registry order, and a reader whose primary is dead
//! falls back along that deterministic chain. This experiment reruns
//! the paper's concurrent-reader workload ([`crate::read_experiment`])
//! on a cluster where the first `dead` data providers are offline, and
//! prices the *degraded mode* the paper's availability story implies
//! but never measures:
//!
//! * every page whose primary is dead is served by the first live
//!   chain member — its round-robin successor — so the survivors
//!   absorb the dead nodes' serving load on top of their own;
//! * everything else (reader placement, metadata serving, chunk
//!   assignment) is byte-identical to the healthy baseline, so the
//!   measured difference is the failover redirection *alone*. A "dead"
//!   node here is a crashed data-provider **process**: its co-deployed
//!   metadata provider and reader keep running (metadata replication
//!   is the DHT layer's concern, which the paper defers).
//!
//! The healthy run on the same cluster parameters is computed
//! alongside, so the headline number is the **degradation ratio**:
//! degraded per-reader bandwidth over healthy. With one dead provider
//! out of P the load imbalance is 2×-on-one-node, and the ratio shows
//! how much of that leaks into the mean (tail contention) — the cost
//! an operator weighs against running the replica repairer
//! (`BlobSeer::repair_replicas`) immediately (see
//! `docs/OPERATIONS.md`, "degraded mode").

use std::sync::{Arc, Mutex};

use blobseer_meta::plan::{read_plan, ReadPlan};
use blobseer_simnet::{
    to_secs, Activity, Engine, Nanos, Network, NodeId, Process, Stage, Step, TransferSpec,
};
use blobseer_types::{NodePos, PageRange};

use crate::cluster::Cluster;
use crate::params::SimParams;
use crate::read_experiment;

/// Aggregate result of one degraded-mode reader-concurrency point.
#[derive(Clone, Copy, Debug)]
pub struct DegradedReadSummary {
    /// Number of concurrent readers.
    pub readers: usize,
    /// Data providers offline during the degraded run.
    pub dead_providers: usize,
    /// Replica-chain length (the engine's `replication` factor).
    pub replication: usize,
    /// Mean per-reader bandwidth of the healthy baseline, MB/s.
    pub healthy_avg_mbps: f64,
    /// Mean per-reader bandwidth with the dead providers, MB/s.
    pub degraded_avg_mbps: f64,
    /// Slowest degraded reader's bandwidth, MB/s (the reader stuck
    /// behind the overloaded failover target).
    pub degraded_min_mbps: f64,
    /// `degraded_avg_mbps / healthy_avg_mbps` — 1.0 means failure-free
    /// performance, lower is the degraded-mode tax.
    pub degradation_ratio: f64,
    /// Page fetches redirected from a dead primary to a live replica.
    pub failover_fetches: u64,
    /// Virtual time until the last degraded reader finished, seconds.
    pub seconds: f64,
}

/// Run the degraded-mode experiment; see the module docs. `dead`
/// providers (the first `dead` in registry order) are offline; it must
/// stay below `replication`, the single-fault budget per chain —
/// adjacent registry slots can share a chain, and a fully-dead chain
/// is data loss, not degraded mode. Deterministic.
#[allow(clippy::too_many_arguments)]
pub fn degraded_read_experiment(
    params: SimParams,
    providers: usize,
    readers: usize,
    blob_pages: u64,
    page_size: u64,
    chunk_pages: u64,
    replication: usize,
    dead: usize,
) -> DegradedReadSummary {
    assert!(readers as u64 * chunk_pages <= blob_pages, "chunks must be disjoint");
    assert!(replication >= 2, "degraded mode needs a replica to fall back to");
    assert!(dead < replication, "a fully-dead chain is data loss, not degraded mode");
    assert!(dead < providers, "someone must survive");

    let healthy = read_experiment(params, providers, readers, blob_pages, page_size, chunk_pages);

    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, 0)
        .with_centralized_metadata(params.centralized_metadata);
    let root = NodePos::root_for(blob_pages);
    let results = Arc::new(Mutex::new(Vec::new()));
    let failovers = Arc::new(Mutex::new(0u64));
    let mut engine = Engine::new(net);
    for r in 0..readers {
        let range = PageRange::new(r as u64 * chunk_pages, chunk_pages);
        // Same co-deployment as the healthy baseline: only the data
        // plane of the dead nodes is gone (module docs).
        engine.spawn(Box::new(DegradedReadClient {
            params,
            client: cluster.co_deployed_client(r),
            cluster: cluster.clone(),
            page_size,
            dead,
            replication,
            plan: read_plan(range, root),
            range,
            phase: Phase::Begin,
            level: 0,
            start: 0,
            results: Arc::clone(&results),
            failovers: Arc::clone(&failovers),
        }));
    }
    let end = engine.run();
    drop(engine);
    let durations =
        Arc::try_unwrap(results).expect("engine dropped").into_inner().expect("no poison");
    let bytes = (chunk_pages * page_size) as f64;
    let mbps: Vec<f64> = durations.iter().map(|&d| bytes / 1e6 / to_secs(d)).collect();
    let degraded_avg = mbps.iter().sum::<f64>() / mbps.len() as f64;
    DegradedReadSummary {
        readers,
        dead_providers: dead,
        replication,
        healthy_avg_mbps: healthy.avg_mbps,
        degraded_avg_mbps: degraded_avg,
        degraded_min_mbps: mbps.iter().copied().fold(f64::INFINITY, f64::min),
        degradation_ratio: degraded_avg / healthy.avg_mbps,
        failover_fetches: Arc::try_unwrap(failovers)
            .expect("engine dropped")
            .into_inner()
            .expect("no poison"),
        seconds: to_secs(end),
    }
}

enum Phase {
    Begin,
    MetaLevels,
    Pages,
    Finish,
}

struct DegradedReadClient {
    params: SimParams,
    cluster: Cluster,
    client: NodeId,
    page_size: u64,
    /// Providers `0..dead` are offline (data plane only).
    dead: usize,
    replication: usize,
    plan: ReadPlan,
    range: PageRange,
    phase: Phase,
    level: usize,
    start: Nanos,
    results: Arc<Mutex<Vec<Nanos>>>,
    failovers: Arc<Mutex<u64>>,
}

impl DegradedReadClient {
    /// The provider that serves `page_index`: the first live member of
    /// its replica chain — the engine's exact read-fallback order.
    /// Returns `(node, failed_over)`.
    fn serving_provider(&self, page_index: u64) -> (NodeId, bool) {
        let p = self.cluster.providers.len();
        let primary = (page_index % p as u64) as usize;
        for k in 0..self.replication {
            let slot = (primary + k) % p;
            if slot >= self.dead {
                return (self.cluster.providers[slot], k > 0);
            }
        }
        unreachable!("dead < replication guarantees a live chain member");
    }

    fn node_fetch(&self, pos: NodePos) -> Activity {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.node_bytes,
                src_overhead: p.meta_read_overhead,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    fn page_fetch(&self, dst: NodeId) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: self.page_size,
                src_overhead: p.provider_read_overhead,
                dst_overhead: p.client_recv_page_overhead,
            }),
        ])
    }

    fn vm_rpc(&self) -> Activity {
        let p = &self.params;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst: self.cluster.vm,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: self.cluster.vm, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: self.cluster.vm,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }
}

impl Process for DegradedReadClient {
    fn step(&mut self, now: Nanos) -> Step {
        loop {
            match self.phase {
                Phase::Begin => {
                    self.start = now;
                    self.phase = Phase::MetaLevels;
                    return Step::Await(vec![self.vm_rpc()]);
                }
                Phase::MetaLevels => {
                    if self.level >= self.plan.levels.len() {
                        self.phase = Phase::Pages;
                        continue;
                    }
                    let span = self.plan.levels[self.level];
                    self.level += 1;
                    let batch = span.positions().map(|pos| self.node_fetch(pos)).collect();
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.fetch_window,
                    };
                }
                Phase::Pages => {
                    self.phase = Phase::Finish;
                    let mut redirected = 0u64;
                    let batch = self
                        .range
                        .iter()
                        .map(|page| {
                            let (node, failed_over) = self.serving_provider(page);
                            redirected += u64::from(failed_over);
                            self.page_fetch(node)
                        })
                        .collect();
                    *self.failovers.lock().expect("no poison") += redirected;
                    return Step::AwaitWindow {
                        activities: batch,
                        window: self.params.fetch_window,
                    };
                }
                Phase::Finish => {
                    self.results.lock().expect("no poison").push(now - self.start);
                    return Step::Done;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_mode_costs_and_redirects() {
        // Full co-deployment (a reader on every provider node): the
        // failover hotspot gates every reader's fetch window.
        let s = degraded_read_experiment(
            SimParams::default(),
            8,    // providers
            8,    // readers
            1024, // blob pages
            65536,
            128, // chunk pages per reader
            2,   // replication
            1,   // dead providers
        );
        // Every page whose primary is provider 0 redirected to its
        // replica: 8 readers × 128 pages / 8 providers.
        assert_eq!(s.failover_fetches, 8 * 128 / 8);
        assert!(
            s.degradation_ratio > 0.0 && s.degradation_ratio < 1.0,
            "the failover hotspot must cost bandwidth: {s:#?}"
        );
        assert!(s.degraded_min_mbps <= s.degraded_avg_mbps);
    }

    #[test]
    fn no_dead_providers_matches_healthy_placement() {
        let s = degraded_read_experiment(SimParams::default(), 6, 3, 600, 65536, 100, 2, 0);
        assert_eq!(s.failover_fetches, 0);
        // Same cluster, same placement, same schedule: the degraded
        // run *is* the healthy run.
        assert!((s.degradation_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn dead_beyond_the_fault_budget_rejected() {
        degraded_read_experiment(SimParams::default(), 4, 1, 64, 65536, 64, 2, 2);
    }
}
