//! The scrub-cost experiment: what does the provider-side orphan
//! mark-and-sweep cost, relative to the crash-injected ingest it
//! cleans up after?
//!
//! The modelled deployment state is the end state of a crashy ingest
//! (`blobseer_workloads::CrashyIngest` on the real engine): `appends`
//! page-aligned appends of which every `crash_every`-th writer died
//! after storing its pages and was repaired by the lease sweeper. The
//! state is derived from the **real** planners, not formulas: every
//! append — survivor or repaired hole — created exactly the tree nodes
//! of [`blobseer_meta::plan::update_plan`], and its pages landed
//! round-robin, so the scrubber's fetch set and per-provider scan load
//! follow the real tree math and the real placement. Each crashed
//! append contributes its page count twice on the data providers: the
//! repair's copies (live) and the dead writer's copies (the leak).
//!
//! The scrubber process then executes the engine's two phases on the
//! simulated cluster:
//!
//! * **mark** — fetch every live tree node from its metadata provider
//!   (shared nodes once; the fetch set *is* the created-node set,
//!   because `retire_versions` has not run), with the client's bounded
//!   RPC window. This prices the phase that scales with *metadata*
//!   size and hits the same DHT hotspots as reads;
//! * **sweep** — one scan RPC per data provider, whose service time is
//!   per-page enumeration ([`crate::SimParams::provider_scan_overhead`])
//!   plus a storage-mutation charge per deleted page; providers scan in
//!   parallel, which is exactly the engine's one-job-per-provider
//!   fan-out.
//!
//! The headline number is `scrub_to_ingest`: virtual scrub seconds per
//! virtual ingest second — the background-maintenance tax of running
//! BlobSeer-style versioned storage as a long-lived service.

use std::sync::{Arc, Mutex};

use blobseer_meta::plan::update_plan;
use blobseer_simnet::{
    to_secs, Activity, Engine, Nanos, Network, NodeId, Process, Stage, Step, TransferSpec,
};
use blobseer_types::{div_ceil, NodePos, PageRange};

use crate::append::append_experiment;
use crate::cluster::Cluster;
use crate::params::SimParams;

/// Aggregate result of one scrub-cost run.
#[derive(Clone, Copy, Debug)]
pub struct ScrubSimSummary {
    /// Tree nodes the mark phase fetched (every node the ingest
    /// created, shared subtrees counted once).
    pub nodes_fetched: u64,
    /// Page copies scanned across all providers (live + leaked).
    pub pages_scanned: u64,
    /// Leaked copies deleted.
    pub pages_deleted: u64,
    /// Virtual seconds spent in the mark phase …
    pub mark_seconds: f64,
    /// … and in the parallel provider sweep.
    pub sweep_seconds: f64,
    /// Total virtual scrub time (mark + sweep).
    pub scrub_seconds: f64,
    /// Virtual time the equivalent sequential ingest took (from
    /// [`append_experiment`] on the same cluster parameters).
    pub ingest_seconds: f64,
    /// The maintenance tax: `scrub_seconds / ingest_seconds`.
    pub scrub_to_ingest: f64,
}

/// Run the scrub-cost experiment; see the module docs. `crash_every ==
/// 0` disables failure injection (a leak-free scrub: pure mark + scan
/// cost). Deterministic.
pub fn scrub_experiment(
    params: SimParams,
    providers: usize,
    page_size: u64,
    append_bytes: u64,
    total_pages: u64,
    crash_every: u64,
) -> ScrubSimSummary {
    assert!(append_bytes.is_multiple_of(page_size), "appends are page-aligned in this workload");
    let pages_per_append = append_bytes / page_size;
    let appends = div_ceil(total_pages, pages_per_append);

    // Replay the ingest's metadata growth through the real planner:
    // every append (survivors and repaired holes alike — a repair tree
    // has the dead writer's exact skeleton) created these nodes.
    let mut nodes: Vec<NodePos> = Vec::new();
    for k in 0..appends {
        let range = PageRange::new(k * pages_per_append, pages_per_append);
        let root = NodePos::root_for((k + 1) * pages_per_append);
        for span in &update_plan(range, root).levels {
            nodes.extend(span.positions());
        }
    }

    // Per-provider sweep load: live pages land round-robin by page
    // index; each crashed append adds a second, leaked copy of its
    // pages (the dead writer's), placed the same way.
    let mut net = Network::new(params.latency);
    let cluster = Cluster::build(&mut net, providers, 1)
        .with_centralized_metadata(params.centralized_metadata);
    let mut scanned = vec![0u64; providers];
    let mut deleted = vec![0u64; providers];
    for page in 0..appends * pages_per_append {
        let slot = (page % providers as u64) as usize;
        scanned[slot] += 1; // the live copy (survivor's or repair's)
        let append_index = page / pages_per_append + 1;
        if crash_every > 0 && append_index.is_multiple_of(crash_every) {
            scanned[slot] += 1; // the dead writer's leaked copy …
            deleted[slot] += 1; // … which the sweep deletes
        }
    }
    let sweep_load: Vec<(NodeId, u64, u64)> =
        (0..providers).map(|i| (cluster.providers[i], scanned[i], deleted[i])).collect();

    let nodes_fetched = nodes.len() as u64;
    let pages_scanned: u64 = scanned.iter().sum();
    let pages_deleted: u64 = deleted.iter().sum();

    let mark_done = Arc::new(Mutex::new(None));
    let mut engine = Engine::new(net);
    engine.spawn(Box::new(Scrubber {
        params,
        client: cluster.clients[0],
        cluster,
        nodes,
        sweep_load,
        phase: Phase::Mark,
        mark_done: Arc::clone(&mark_done),
    }));
    let end = engine.run();
    drop(engine);

    let mark_ns: Nanos = mark_done.lock().expect("no poison").expect("mark phase ran");
    let scrub_seconds = to_secs(end);
    let ingest_seconds: f64 =
        append_experiment(params, providers, page_size, append_bytes, appends * pages_per_append)
            .iter()
            .map(|pt| pt.seconds)
            .sum();
    ScrubSimSummary {
        nodes_fetched,
        pages_scanned,
        pages_deleted,
        mark_seconds: to_secs(mark_ns),
        sweep_seconds: scrub_seconds - to_secs(mark_ns),
        scrub_seconds,
        ingest_seconds,
        scrub_to_ingest: scrub_seconds / ingest_seconds,
    }
}

enum Phase {
    Mark,
    Sweep,
    Finish,
}

struct Scrubber {
    params: SimParams,
    cluster: Cluster,
    client: NodeId,
    nodes: Vec<NodePos>,
    /// `(provider node, pages scanned there, pages deleted there)`.
    sweep_load: Vec<(NodeId, u64, u64)>,
    phase: Phase,
    mark_done: Arc<Mutex<Option<Nanos>>>,
}

impl Scrubber {
    /// One mark fetch: request out, DHT service, node back — the same
    /// shape as a reader's node fetch.
    fn node_fetch(&self, pos: NodePos) -> Activity {
        let p = &self.params;
        let dst = self.cluster.meta_provider_of(pos);
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node: dst, duration: p.rpc_service },
            Stage::Transfer(TransferSpec {
                src: dst,
                dst: self.client,
                bytes: p.node_bytes,
                src_overhead: p.meta_read_overhead,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }

    /// One provider's sweep: a scan RPC whose service time is per-page
    /// enumeration plus a storage-mutation charge per deletion, then a
    /// small outcome report back.
    fn provider_sweep(&self, node: NodeId, scanned: u64, deleted: u64) -> Activity {
        let p = &self.params;
        let service = p.rpc_service
            + scanned * p.provider_scan_overhead
            + deleted * p.provider_store_overhead;
        Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: self.client,
                dst: node,
                bytes: p.ctl_bytes,
                src_overhead: p.client_send_overhead,
                dst_overhead: 0,
            }),
            Stage::Service { node, duration: service },
            Stage::Transfer(TransferSpec {
                src: node,
                dst: self.client,
                bytes: p.ctl_bytes,
                src_overhead: 0,
                dst_overhead: p.client_recv_ctl_overhead,
            }),
        ])
    }
}

impl Process for Scrubber {
    fn step(&mut self, now: Nanos) -> Step {
        match self.phase {
            Phase::Mark => {
                self.phase = Phase::Sweep;
                let batch: Vec<Activity> =
                    self.nodes.iter().map(|&pos| self.node_fetch(pos)).collect();
                Step::AwaitWindow { activities: batch, window: self.params.fetch_window }
            }
            Phase::Sweep => {
                *self.mark_done.lock().expect("no poison") = Some(now);
                self.phase = Phase::Finish;
                let batch: Vec<Activity> = self
                    .sweep_load
                    .iter()
                    .map(|&(node, scanned, deleted)| self.provider_sweep(node, scanned, deleted))
                    .collect();
                Step::Await(batch)
            }
            Phase::Finish => Step::Done,
        }
    }
}
