//! The multi-tenant QoS isolation experiment (PR 8).
//!
//! The paper evaluates BlobSeer under *cooperative* heavy concurrency —
//! every client is part of one application. A shared deployment adds
//! the noisy-neighbour problem: one tenant's burst sits in front of
//! everyone else's requests. This experiment prices that, and what the
//! `blobseer_qos` machinery buys back, on a virtual-time model of the
//! ingest path:
//!
//! * a **quiet tenant** submits appends at a steady, low rate;
//! * a **noisy tenant** submits `noisy_ratio`× as many appends, in
//!   large bursts of small ops;
//! * one server (the deployment's ingest pipeline) serves ops at a
//!   fixed byte rate.
//!
//! Three runs on identical arrivals:
//!
//! 1. **solo** — the quiet tenant alone: its intrinsic p99;
//! 2. **shared / FIFO** — both tenants, served in arrival order (QoS
//!    off): the quiet tenant's p99 inflates by whole noisy bursts;
//! 3. **shared / QoS** — the noisy tenant's admissions are gated by a
//!    real [`TokenBucket`] (virtual `now_ns` — the exact code the
//!    engine runs) and the server drains a real [`FairQueue`] by
//!    deficit-weighted round-robin instead of FIFO, with the quiet
//!    tenant carrying the higher operator-set weight.
//!
//! The headline is [`QosIsolationSummary::isolation_ratio`]: quiet p99
//! under QoS over quiet p99 solo. The PR's acceptance bar is ≤ 2 at a
//! 10:1 noisy/quiet ratio — the quiet tenant should barely notice the
//! neighbour. Fully deterministic: arrivals are closed-form, time is
//! virtual, and the qos primitives take injected timestamps.

use blobseer_qos::{FairQueue, TokenBucket};

/// Aggregate result of one QoS-isolation point.
#[derive(Clone, Copy, Debug)]
pub struct QosIsolationSummary {
    /// Noisy-to-quiet submission ratio (the experiment's 10:1 knob).
    pub noisy_ratio: u64,
    /// Quiet-tenant ops measured (per run).
    pub quiet_ops: usize,
    /// Quiet p99 latency, alone on the deployment, milliseconds.
    pub quiet_solo_p99_ms: f64,
    /// Quiet p99 sharing a FIFO ingest with the noisy tenant (QoS
    /// off), milliseconds.
    pub quiet_fifo_p99_ms: f64,
    /// Quiet p99 sharing a QoS-scheduled ingest (noisy tenant
    /// token-bucketed, DRR drain), milliseconds.
    pub quiet_qos_p99_ms: f64,
    /// `quiet_fifo_p99_ms / quiet_solo_p99_ms` — the noisy-neighbour
    /// tax without QoS.
    pub fifo_ratio: f64,
    /// `quiet_qos_p99_ms / quiet_solo_p99_ms` — what the quiet tenant
    /// still pays with QoS on (the acceptance bar: ≤ 2 at 10:1).
    pub isolation_ratio: f64,
    /// Noisy ops whose admission the token bucket delayed.
    pub noisy_throttled: u64,
    /// Virtual time until the QoS run drained, seconds.
    pub seconds: f64,
}

const QUIET: u64 = 0;
const NOISY: u64 = 1;

// Calibration: 256 KiB quiet appends every 10 ms (a light client); the
// noisy tenant sprays 64 KiB appends in 16 MiB bursts, sized so its
// total op count is `noisy_ratio` x the quiet tenant's. The server
// drains 400 MB/s — comfortably above the combined *sustained* load,
// well below the burst peak (else there is nothing to isolate). The
// quiet tenant's op is deliberately the larger one: on a
// non-preemptive server the floor of any isolation scheme is one
// residual service time of whoever is on the wire, so the neighbour's
// ops must be small next to the victim's own service time for a ≤ 2x
// p99 bound to be reachable at all.
const QUIET_BYTES: u64 = 256 * 1024;
const QUIET_GAP_NS: u64 = 10_000_000;
const NOISY_BYTES: u64 = 64 * 1024;
const BURST: u64 = 256;
const SERVER_BYTES_PER_SEC: u64 = 400_000_000;
/// The quiet tenant's DRR weight (noisy = 1): with the quantum at one
/// noisy op, a quiet visit tops up enough deficit for a whole quiet op
/// while a noisy visit releases a single small op — the operator-set
/// priority the weighted-fair queue exists to honour.
const QUIET_WEIGHT: u32 = 8;

fn service(bytes: u64) -> u64 {
    bytes * 1_000_000_000 / SERVER_BYTES_PER_SEC
}

#[derive(Clone, Copy)]
struct Op {
    tenant: u64,
    /// Submission instant, virtual ns.
    arrival_ns: u64,
    bytes: u64,
}

/// Run the isolation experiment; see the module docs. `noisy_ratio`
/// is the noisy tenant's op-count multiple (10 = the acceptance
/// scenario); service rate and op sizes are fixed internally so the
/// point is self-calibrating. Deterministic.
pub fn qos_isolation_experiment(quiet_ops: usize, noisy_ratio: u64) -> QosIsolationSummary {
    assert!(quiet_ops >= 100, "need enough quiet ops for a meaningful p99");
    assert!(noisy_ratio >= 1);

    let quiet: Vec<Op> = (0..quiet_ops as u64)
        .map(|i| Op { tenant: QUIET, arrival_ns: i * QUIET_GAP_NS, bytes: QUIET_BYTES })
        .collect();
    let noisy_total = quiet_ops as u64 * noisy_ratio;
    let horizon = quiet_ops as u64 * QUIET_GAP_NS;
    let bursts = noisy_total.div_ceil(BURST);
    let burst_gap = horizon / bursts.max(1);
    let noisy: Vec<Op> = (0..noisy_total)
        .map(|i| Op {
            tenant: NOISY,
            // Whole bursts land at one instant — the worst case for
            // whoever queues behind them.
            arrival_ns: (i / BURST) * burst_gap,
            bytes: NOISY_BYTES,
        })
        .collect();

    // Run 1: quiet tenant alone, FIFO (trivially) — its intrinsic p99.
    let solo = run_fifo(&quiet);
    let solo_p99 = p99_ms(&solo, QUIET);

    // Run 2: shared FIFO — arrival order, no admission control.
    let mut shared: Vec<Op> = quiet.iter().chain(&noisy).copied().collect();
    shared.sort_by_key(|op| (op.arrival_ns, op.tenant));
    let fifo = run_fifo(&shared);
    let fifo_p99 = p99_ms(&fifo, QUIET);

    // Run 3: shared QoS — the noisy tenant's bucket spreads its bursts
    // to its sustained rate (with a quarter-burst of slack), and the
    // server drains a DRR queue so whatever noisy backlog *is*
    // admitted still cannot monopolise the drain order.
    let noisy_rate = NOISY_BYTES * noisy_total / (horizon / 1_000_000_000).max(1);
    let bucket = TokenBucket::new(noisy_rate, NOISY_BYTES * BURST / 4);
    let mut throttled = 0u64;
    let mut ready: Vec<(u64, Op)> = Vec::with_capacity(shared.len());
    let mut noisy_free = 0u64; // admissions are FIFO per tenant
    for op in &shared {
        if op.tenant == QUIET {
            ready.push((op.arrival_ns, *op));
            continue;
        }
        let mut now = op.arrival_ns.max(noisy_free);
        let mut delayed = false;
        loop {
            match bucket.try_acquire_at(now, op.bytes) {
                Ok(()) => break,
                Err(hint) => {
                    delayed = true;
                    now += hint.max(1);
                }
            }
        }
        throttled += u64::from(delayed);
        noisy_free = now;
        ready.push((now, *op));
    }
    let (qos, end) = run_drr(&mut ready);
    let qos_p99 = p99_ms(&qos, QUIET);

    QosIsolationSummary {
        noisy_ratio,
        quiet_ops,
        quiet_solo_p99_ms: solo_p99,
        quiet_fifo_p99_ms: fifo_p99,
        quiet_qos_p99_ms: qos_p99,
        fifo_ratio: fifo_p99 / solo_p99,
        isolation_ratio: qos_p99 / solo_p99,
        noisy_throttled: throttled,
        seconds: end as f64 / 1e9,
    }
}

/// Single server, arrival order. Returns `(tenant, latency_ns)` per op.
fn run_fifo(ops: &[Op]) -> Vec<(u64, u64)> {
    let mut server_free = 0u64;
    ops.iter()
        .map(|op| {
            let start = op.arrival_ns.max(server_free);
            server_free = start + service(op.bytes);
            (op.tenant, server_free - op.arrival_ns)
        })
        .collect()
}

/// Single server draining a deficit-weighted [`FairQueue`]: ops enter
/// their tenant's lane at their ready instant, the server picks by
/// DRR whenever it frees up. Returns per-op latencies (measured from
/// *submission*, so admission delay counts against the noisy tenant)
/// and the drain instant.
fn run_drr(ready: &mut [(u64, Op)]) -> (Vec<(u64, u64)>, u64) {
    ready.sort_by_key(|&(at, op)| (at, op.tenant));
    let queue: FairQueue<Op> = FairQueue::new(NOISY_BYTES);
    let mut out = Vec::with_capacity(ready.len());
    let mut now = 0u64;
    let mut next = 0usize;
    while out.len() < ready.len() {
        // Admit everything that became ready by `now`.
        while next < ready.len() && ready[next].0 <= now {
            let op = ready[next].1;
            let weight = if op.tenant == QUIET { QUIET_WEIGHT } else { 1 };
            queue.push(op.tenant, weight, op.bytes, op);
            next += 1;
        }
        match queue.pop() {
            Some(op) => {
                now += service(op.bytes);
                out.push((op.tenant, now - op.arrival_ns));
            }
            // Idle: jump to the next arrival.
            None => now = ready[next].0,
        }
    }
    (out, now)
}

/// p99 latency of `tenant`'s ops, milliseconds (nearest-rank).
fn p99_ms(latencies: &[(u64, u64)], tenant: u64) -> f64 {
    let mut own: Vec<u64> =
        latencies.iter().filter(|(t, _)| *t == tenant).map(|&(_, l)| l).collect();
    assert!(!own.is_empty());
    own.sort_unstable();
    let rank = (own.len() as f64 * 0.99).ceil() as usize;
    own[rank.min(own.len()) - 1] as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_to_one_noisy_neighbour_is_contained() {
        // The PR 8 acceptance scenario: 10:1 noisy/quiet.
        let s = qos_isolation_experiment(500, 10);
        assert!(s.noisy_throttled > 0, "the bursts must actually hit the bucket: {s:#?}");
        assert!(
            s.fifo_ratio > 2.0,
            "without QoS the quiet tenant must suffer, else the scenario proves nothing: {s:#?}"
        );
        assert!(s.isolation_ratio <= 2.0, "QoS must hold quiet p99 within 2x of solo: {s:#?}");
        assert!(s.quiet_qos_p99_ms < s.quiet_fifo_p99_ms);
    }

    #[test]
    fn no_noise_means_no_tax() {
        // noisy_ratio 1 with the same burst shape still degrades FIFO
        // some, but QoS must never be *worse* than FIFO for the quiet
        // tenant.
        let s = qos_isolation_experiment(300, 1);
        assert!(s.isolation_ratio <= s.fifo_ratio + 1e-9, "{s:#?}");
    }

    #[test]
    fn deterministic() {
        let a = qos_isolation_experiment(200, 5);
        let b = qos_isolation_experiment(200, 5);
        assert_eq!(a.quiet_qos_p99_ms.to_bits(), b.quiet_qos_p99_ms.to_bits());
        assert_eq!(a.noisy_throttled, b.noisy_throttled);
    }
}
