//! Property and accuracy tests of the h2 histogram.
//!
//! The contract under test: percentile readouts carry a relative error
//! of at most `2^-p` (the grouping power bound), counts are exact under
//! full concurrency, and window rotation never touches the all-time
//! histogram.

use std::sync::Arc;
use std::time::Duration;

use blobseer_metrics::{AtomicHistogram, WindowedHistogram, DEFAULT_GROUPING_POWER};
use proptest::prelude::*;

/// Exact percentile of a sorted sample using the same nearest-rank
/// definition the histogram implements.
fn exact_percentile(sorted: &[u64], pct: f64) -> u64 {
    let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_within_bound(value: u64, exact: u64, pct: f64) {
    let bound = 1.0 / (1u64 << DEFAULT_GROUPING_POWER) as f64;
    assert!(value >= exact, "p{pct}: histogram {value} below exact {exact}");
    let err = (value - exact) as f64 / exact.max(1) as f64;
    assert!(err <= bound, "p{pct}: histogram {value} vs exact {exact}, err {err} > {bound}");
}

#[test]
fn percentiles_of_a_uniform_distribution() {
    let h = AtomicHistogram::new();
    let mut values: Vec<u64> = (1..=10_000u64).map(|i| i * 37).collect();
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();
    let snap = h.snapshot();
    assert_eq!(snap.count(), values.len() as u64);
    for pct in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
        assert_within_bound(snap.percentile(pct).unwrap(), exact_percentile(&values, pct), pct);
    }
}

#[test]
fn percentiles_of_a_bimodal_distribution() {
    // 99% fast ops around 20µs, 1% slow ops around 8ms: the shape the
    // tail metrics exist to expose.
    let h = AtomicHistogram::new();
    let mut values = Vec::new();
    for i in 0..9_900u64 {
        values.push(20_000 + (i % 997) * 3);
    }
    for i in 0..100u64 {
        values.push(8_000_000 + i * 10_007);
    }
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();
    let snap = h.snapshot();
    let p50 = snap.percentile(50.0).unwrap();
    let p999 = snap.percentile(99.9).unwrap();
    assert_within_bound(p50, exact_percentile(&values, 50.0), 50.0);
    assert_within_bound(p999, exact_percentile(&values, 99.9), 99.9);
    assert!(p50 < 30_000, "median must sit in the fast mode, got {p50}");
    assert!(p999 > 8_000_000, "p999 must sit in the slow mode, got {p999}");
}

#[test]
fn concurrent_recording_loses_nothing() {
    let h = Arc::new(AtomicHistogram::new());
    let threads = 8;
    let per_thread = 50_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..per_thread {
                    h.record(t * 1_000_003 + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), threads * per_thread);
    let expected_sum: u64 = (0..threads)
        .map(|t| per_thread * (t * 1_000_003) + per_thread * (per_thread - 1) / 2)
        .sum();
    assert_eq!(snap.sum(), expected_sum);
}

#[test]
fn concurrent_windowed_recording_keeps_all_time_exact() {
    // Threads record with skewed timestamps so rotations race with
    // records. The window is allowed bounded slop at slice boundaries;
    // the all-time histogram must stay exact.
    let h = Arc::new(WindowedHistogram::with_config(7, Duration::from_micros(50), 4));
    let threads = 8u64;
    let per_thread = 20_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..per_thread {
                    h.record_at(i * 1_000 + t * 137, i + 1);
                }
            });
        }
    });
    assert_eq!(h.snapshot().count(), threads * per_thread);
}

proptest! {
    #[test]
    fn percentile_error_is_bounded_on_arbitrary_samples(
        mut values in proptest::collection::vec(1u64..1_000_000_000_000, 1..500),
        pct_milli in 0u64..100_000,
    ) {
        let pct = pct_milli as f64 / 1_000.0;
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        let exact = exact_percentile(&values, pct);
        let got = snap.percentile(pct).unwrap();
        let bound = 1.0 / (1u64 << DEFAULT_GROUPING_POWER) as f64;
        prop_assert!(got >= exact);
        prop_assert!((got - exact) as f64 / exact.max(1) as f64 <= bound,
            "p{}: {} vs exact {}", pct, got, exact);
    }

    #[test]
    fn merge_equals_recording_into_one(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        // Recording the union into the all-time histogram must equal
        // recording the halves into window slices and merging — the
        // window snapshot is a merge over slices internally.
        let combined = AtomicHistogram::new();
        for &v in a.iter().chain(b.iter()) {
            combined.record(v);
        }
        let windowed = WindowedHistogram::with_config(7, Duration::from_secs(1), 2);
        // Same period for both halves: nothing rotates out.
        for &v in a.iter().chain(b.iter()) {
            windowed.record_at(0, v);
        }
        let lhs = combined.snapshot();
        let rhs = windowed.window_snapshot_at(0);
        prop_assert_eq!(lhs.count(), rhs.count());
        prop_assert_eq!(lhs.sum(), rhs.sum());
        for pct in [50.0, 90.0, 99.0, 99.9] {
            prop_assert_eq!(lhs.percentile(pct), rhs.percentile(pct));
        }
    }
}
