//! Lock-free scalar metrics: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter. All operations are relaxed
/// atomics — safe (and cheap) to bump from any hot path.
///
/// # Examples
///
/// ```
/// use blobseer_metrics::Counter;
///
/// let c = Counter::new();
/// c.increment();
/// c.add(2);
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Add one.
    #[inline]
    pub fn increment(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight operations).
///
/// # Examples
///
/// ```
/// use blobseer_metrics::Gauge;
///
/// let g = Gauge::new();
/// g.add(5);
/// g.sub(2);
/// assert_eq!(g.value(), 3);
/// g.set(-1);
/// assert_eq!(g.value(), -1);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge { value: AtomicI64::new(0) }
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.increment();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.value(), 7);
        g.set(0);
        assert_eq!(g.value(), 0);
    }
}
