//! Named metric registration and Prometheus-style text exposition.
//!
//! A [`Registry`] owns a list of named metrics and renders them in the
//! Prometheus text format, **in registration order** — deterministic
//! output, so the format is golden-testable. Histograms are exposed as
//! `summary` metrics (pre-computed quantiles), with latency quantiles
//! converted from recorded nanoseconds to seconds per Prometheus base
//! units.
//!
//! Registries are per-instance, not process-global: a test spinning up
//! ten stores in one process gets ten independent registries.

use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSnapshot, WindowedHistogram};
use crate::metric::{Counter, Gauge};

enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<WindowedHistogram>),
}

struct Registered {
    name: String,
    help: String,
    entry: Entry,
}

/// A named collection of metrics with a Prometheus-style text
/// exposition.
///
/// Registration takes a short lock; recording into the returned `Arc`s
/// never does.
///
/// # Examples
///
/// ```
/// use blobseer_metrics::Registry;
///
/// let registry = Registry::new();
/// let ops = registry.counter("app_ops_total", "operations served");
/// ops.add(3);
/// assert!(registry.render().contains("app_ops_total 3"));
/// ```
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, entry: Entry) {
        self.entries.lock().expect("metrics registry poisoned").push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            entry,
        });
    }

    /// Create and register a [`Counter`].
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = blobseer_metrics::Registry::new();
    /// let c = registry.counter("jobs_total", "jobs run");
    /// c.increment();
    /// assert_eq!(c.value(), 1);
    /// ```
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, help, Entry::Counter(Arc::clone(&c)));
        c
    }

    /// Create and register a [`Gauge`].
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = blobseer_metrics::Registry::new();
    /// let g = registry.gauge("queue_depth", "jobs waiting");
    /// g.set(4);
    /// assert!(registry.render().contains("queue_depth 4"));
    /// ```
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, help, Entry::Gauge(Arc::clone(&g)));
        g
    }

    /// Create and register a default-configured [`WindowedHistogram`]
    /// whose recorded values are **nanoseconds**; the exposition
    /// renders its quantiles in seconds (hence the conventional
    /// `_seconds` name suffix).
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = blobseer_metrics::Registry::new();
    /// let h = registry.histogram_seconds("op_latency_seconds", "op latency");
    /// h.record_at(0, 250); // 250ns
    /// let text = registry.render();
    /// assert!(text.contains(r#"op_latency_seconds{quantile="0.99"} 0.000000250"#));
    /// assert!(text.contains("op_latency_seconds_count 1"));
    /// ```
    pub fn histogram_seconds(&self, name: &str, help: &str) -> Arc<WindowedHistogram> {
        let h = Arc::new(WindowedHistogram::new());
        self.register(name, help, Entry::Histogram(Arc::clone(&h)));
        h
    }

    /// Register an existing histogram (one owned by another component,
    /// e.g. the DHT's wait-latency histogram) under this registry's
    /// exposition. Recorded values are nanoseconds, rendered as
    /// seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use blobseer_metrics::{Registry, WindowedHistogram};
    ///
    /// let shared = Arc::new(WindowedHistogram::new());
    /// let registry = Registry::new();
    /// registry.register_histogram_seconds("wait_seconds", "wait time", Arc::clone(&shared));
    /// shared.record_at(0, 100);
    /// assert!(registry.render().contains("wait_seconds_count 1"));
    /// ```
    pub fn register_histogram_seconds(&self, name: &str, help: &str, hist: Arc<WindowedHistogram>) {
        self.register(name, help, Entry::Histogram(hist));
    }

    /// Render every registered metric in the Prometheus text format,
    /// in registration order.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = blobseer_metrics::Registry::new();
    /// registry.counter("a_total", "first").increment();
    /// registry.gauge("b_level", "second").set(-2);
    /// let text = registry.render();
    /// assert!(text.starts_with("# HELP a_total first\n# TYPE a_total counter\na_total 1\n"));
    /// assert!(text.contains("# TYPE b_level gauge\nb_level -2\n"));
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.entries.lock().expect("metrics registry poisoned").iter() {
            match &r.entry {
                Entry::Counter(c) => write_counter(&mut out, &r.name, &r.help, c.value()),
                Entry::Gauge(g) => write_gauge(&mut out, &r.name, &r.help, g.value()),
                Entry::Histogram(h) => {
                    write_summary_seconds(&mut out, &r.name, &r.help, &h.snapshot())
                }
            }
        }
        out
    }
}

/// Append one counter in Prometheus text format.
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// blobseer_metrics::write_counter(&mut out, "x_total", "an x", 7);
/// assert_eq!(out, "# HELP x_total an x\n# TYPE x_total counter\nx_total 7\n");
/// ```
pub fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}");
}

/// Append one gauge in Prometheus text format.
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// blobseer_metrics::write_gauge(&mut out, "depth", "queue depth", -3);
/// assert_eq!(out, "# HELP depth queue depth\n# TYPE depth gauge\ndepth -3\n");
/// ```
pub fn write_gauge(out: &mut String, name: &str, help: &str, value: i64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}");
}

/// Append one latency histogram as a Prometheus `summary`: quantiles
/// 0.5/0.9/0.99/0.999 plus `_sum` and `_count`. Recorded values are
/// interpreted as nanoseconds and rendered in seconds with nanosecond
/// precision. Quantile lines are omitted while the histogram is empty
/// (a quantile of an empty distribution has no value), but `_sum` and
/// `_count` always render.
///
/// # Examples
///
/// ```
/// use blobseer_metrics::AtomicHistogram;
///
/// let h = AtomicHistogram::new();
/// h.record(200); // 200ns; values < 256 land in exact buckets
/// let mut out = String::new();
/// blobseer_metrics::write_summary_seconds(&mut out, "op_seconds", "op latency", &h.snapshot());
/// assert!(out.contains(r#"op_seconds{quantile="0.5"} 0.000000200"#));
/// assert!(out.contains("op_seconds_sum 0.000000200"));
/// assert!(out.contains("op_seconds_count 1"));
/// ```
pub fn write_summary_seconds(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} summary");
    let count = snap.count();
    if count > 0 {
        for (label, pct) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0), ("0.999", 99.9)] {
            let ns = snap.percentile(pct).unwrap_or(0);
            let _ =
                writeln!(out, "{name}{{quantile=\"{label}\"}} {:.9}", ns as f64 / 1_000_000_000.0);
        }
    }
    let _ = writeln!(out, "{name}_sum {:.9}", snap.sum() as f64 / 1_000_000_000.0);
    let _ = writeln!(out, "{name}_count {count}");
}

/// Append one latency histogram as **labeled** Prometheus `summary`
/// series: quantile lines carry `{labels,quantile="..."}` and the
/// `_sum`/`_count` lines carry `{labels}`. Writes no `# HELP`/`# TYPE`
/// header — emit that once per metric name, then call this per label
/// set (per tenant, per provider, ...). `labels` is the pre-rendered
/// label list without braces, e.g. `tenant="7"`.
///
/// # Examples
///
/// ```
/// use blobseer_metrics::AtomicHistogram;
///
/// let h = AtomicHistogram::new();
/// h.record(200);
/// let mut out = String::new();
/// blobseer_metrics::write_summary_seconds_labeled(
///     &mut out,
///     "op_seconds",
///     "provider=\"3\"",
///     &h.snapshot(),
/// );
/// assert!(out.contains(r#"op_seconds{provider="3",quantile="0.5"} 0.000000200"#));
/// assert!(out.contains(r#"op_seconds_sum{provider="3"} 0.000000200"#));
/// assert!(out.contains(r#"op_seconds_count{provider="3"} 1"#));
/// ```
pub fn write_summary_seconds_labeled(
    out: &mut String,
    name: &str,
    labels: &str,
    snap: &HistogramSnapshot,
) {
    use std::fmt::Write;
    let count = snap.count();
    if count > 0 {
        for (label, pct) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0), ("0.999", 99.9)] {
            let ns = snap.percentile(pct).unwrap_or(0);
            let _ = writeln!(
                out,
                "{name}{{{labels},quantile=\"{label}\"}} {:.9}",
                ns as f64 / 1_000_000_000.0
            );
        }
    }
    let _ = writeln!(out, "{name}_sum{{{labels}}} {:.9}", snap.sum() as f64 / 1_000_000_000.0);
    let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_exposition() {
        // All recorded values sit in the exact bucket region (< 256),
        // so the rendered quantiles are byte-for-byte deterministic.
        let registry = Registry::new();
        let ops = registry.counter("blobseer_append_ops_total", "appends completed");
        let depth = registry.gauge("blobseer_io_queue_depth", "queued I/O jobs");
        let lat = registry.histogram_seconds("blobseer_append_latency_seconds", "append latency");
        ops.add(2);
        depth.set(1);
        lat.record_at(0, 100);
        lat.record_at(0, 200);

        let expected = "\
# HELP blobseer_append_ops_total appends completed
# TYPE blobseer_append_ops_total counter
blobseer_append_ops_total 2
# HELP blobseer_io_queue_depth queued I/O jobs
# TYPE blobseer_io_queue_depth gauge
blobseer_io_queue_depth 1
# HELP blobseer_append_latency_seconds append latency
# TYPE blobseer_append_latency_seconds summary
blobseer_append_latency_seconds{quantile=\"0.5\"} 0.000000100
blobseer_append_latency_seconds{quantile=\"0.9\"} 0.000000200
blobseer_append_latency_seconds{quantile=\"0.99\"} 0.000000200
blobseer_append_latency_seconds{quantile=\"0.999\"} 0.000000200
blobseer_append_latency_seconds_sum 0.000000300
blobseer_append_latency_seconds_count 2
";
        assert_eq!(registry.render(), expected);
    }

    #[test]
    fn empty_histogram_renders_without_quantiles() {
        let registry = Registry::new();
        registry.histogram_seconds("quiet_seconds", "never recorded");
        let text = registry.render();
        assert!(!text.contains("quantile"));
        assert!(text.contains("quiet_seconds_sum 0.000000000"));
        assert!(text.contains("quiet_seconds_count 0"));
    }

    #[test]
    fn shared_histogram_renders() {
        let shared = Arc::new(WindowedHistogram::new());
        let registry = Registry::new();
        registry.register_histogram_seconds("shared_seconds", "shared", Arc::clone(&shared));
        shared.record_at(0, 50);
        assert!(registry.render().contains("shared_seconds_count 1"));
    }
}
