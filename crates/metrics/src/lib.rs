//! Tail-latency observability primitives for BlobSeer.
//!
//! The paper's evaluation (§5) reasons in aggregate throughput; a
//! deployment serving heavy traffic is judged on **tail latency**. This
//! crate provides the measurement layer, in the spirit of pelikan-io's
//! rustcommon stack (metriken-style registered metrics, clocksource's
//! coarse cached clock, base-2 sub-bucketed histograms):
//!
//! * [`Counter`] / [`Gauge`] — lock-free relaxed atomics, safe to bump
//!   from any hot path;
//! * [`AtomicHistogram`] — a base-2-bucketed atomic histogram whose
//!   relative error is bounded by the *grouping power* (default 7 →
//!   ≤ 1/128 ≈ 0.8%), recording in O(1) with a single `fetch_add`;
//! * [`WindowedHistogram`] — an all-time histogram plus a ring of
//!   interval slices, so snapshots can report both lifetime and
//!   recent-window percentiles (p50/p90/p99/p999);
//! * [`clock`] — a coarse cached clock ([`clock::coarse_now`]): one
//!   relaxed atomic load where `Instant::now()` would be a syscall-ish
//!   vDSO call, refreshed for free by every [`Timer`] stop;
//! * [`Registry`] — named metric registration and a Prometheus-style
//!   text exposition ([`Registry::render`]).
//!
//! Everything is safe under full concurrency; recording never takes a
//! lock. Snapshots taken while writers are recording are approximate in
//! the usual relaxed-atomics sense (a snapshot may split a concurrent
//! record between `_sum` and its bucket) — fine for observability,
//! documented so nobody builds an invariant on it.
//!
//! # Examples
//!
//! ```
//! use blobseer_metrics::{Registry, Timer};
//!
//! let registry = Registry::new();
//! let ops = registry.counter("myapp_ops_total", "operations served");
//! let latency =
//!     registry.histogram_seconds("myapp_op_latency_seconds", "operation latency");
//!
//! let timer = Timer::start();
//! ops.increment();
//! timer.stop(&latency); // records elapsed nanoseconds
//!
//! let text = registry.render();
//! assert!(text.contains("# TYPE myapp_ops_total counter"));
//! assert!(text.contains("# TYPE myapp_op_latency_seconds summary"));
//! ```

pub mod clock;
mod histogram;
mod metric;
mod registry;

pub use clock::Timer;
pub use histogram::{
    AtomicHistogram, HistogramSnapshot, WindowedHistogram, DEFAULT_GROUPING_POWER,
};
pub use metric::{Counter, Gauge};
pub use registry::{
    write_counter, write_gauge, write_summary_seconds, write_summary_seconds_labeled, Registry,
};
