//! The coarse cached clock and the precise [`Timer`].
//!
//! Hot paths want *a* recent timestamp (to place a sample in the right
//! sliding-window slice) far more often than they want a *precise* one
//! (to measure a duration). The split here mirrors clocksource's
//! `AtomicInstant` recipe:
//!
//! * durations are measured with a precise `Instant` pair
//!   ([`Timer::start`] / [`Timer::stop`]) — the two real clock reads an
//!   operation was going to pay anyway;
//! * the coarse clock is a process-wide atomic holding "nanoseconds
//!   since process epoch", refreshed as a **side effect** of every
//!   `Timer::stop` (which just read the real clock) and readable with
//!   one relaxed load ([`coarse_now`]) everywhere else.
//!
//! Consumers that only need bucketing granularity — sliding-window
//! rotation, the lease ticker's wall-clock→tick mapping — read the
//! coarse clock; nothing in a hot path ever takes a lock for time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process epoch: all clock readings are nanoseconds since the
/// first use of this module.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The cached coarse reading (ns since [`epoch`]).
static COARSE: AtomicU64 = AtomicU64::new(0);

/// Precise nanoseconds since the process epoch (a real clock read).
///
/// # Examples
///
/// ```
/// let a = blobseer_metrics::clock::precise_now();
/// let b = blobseer_metrics::clock::precise_now();
/// assert!(b >= a);
/// ```
pub fn precise_now() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The cached coarse reading: one relaxed atomic load, no clock read.
/// Advances only when something calls [`refresh`] (every
/// [`Timer::stop`] does), so it can lag the real clock by however long
/// the process went without measuring anything — by design: its
/// consumers need bucketing granularity, not precision.
///
/// # Examples
///
/// ```
/// let refreshed = blobseer_metrics::clock::refresh();
/// assert!(blobseer_metrics::clock::coarse_now() >= refreshed);
/// ```
pub fn coarse_now() -> u64 {
    COARSE.load(Ordering::Relaxed)
}

/// Read the real clock and publish it as the new coarse reading.
/// Returns the fresh reading. Monotone: a concurrent refresh that read
/// a later instant wins (`fetch_max`), so [`coarse_now`] never goes
/// backwards.
///
/// # Examples
///
/// ```
/// let now = blobseer_metrics::clock::refresh();
/// assert!(blobseer_metrics::clock::coarse_now() >= now);
/// ```
pub fn refresh() -> u64 {
    let now = precise_now();
    COARSE.fetch_max(now, Ordering::Relaxed);
    now
}

/// A precise duration measurement that feeds a [`WindowedHistogram`]
/// and refreshes the coarse clock for free on the way out.
///
/// [`WindowedHistogram`]: crate::WindowedHistogram
///
/// # Examples
///
/// ```
/// use blobseer_metrics::{Timer, WindowedHistogram};
///
/// let hist = WindowedHistogram::new();
/// let timer = Timer::start();
/// let elapsed_ns = timer.stop(&hist);
/// let snap = hist.snapshot();
/// assert_eq!(snap.count(), 1);
/// assert!(snap.sum() >= elapsed_ns.min(1));
/// ```
#[derive(Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start timing (a precise clock read).
    pub fn start() -> Timer {
        Timer { start: Instant::now() }
    }

    /// Stop timing: record the elapsed nanoseconds into `hist` (stamped
    /// with a freshly refreshed coarse reading, so the sample lands in
    /// the current window slice) and return them.
    pub fn stop(self, hist: &crate::WindowedHistogram) -> u64 {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let now = refresh();
        hist.record_at(now, elapsed);
        elapsed
    }

    /// Elapsed nanoseconds so far, without consuming the timer.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_clock_is_monotone_and_tracks_refresh() {
        let a = refresh();
        let cached = coarse_now();
        assert!(cached >= a);
        let b = refresh();
        assert!(b >= a);
        assert!(coarse_now() >= cached);
    }

    #[test]
    fn precise_now_is_monotone() {
        let a = precise_now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(precise_now() > a);
    }

    #[test]
    fn timer_records_plausible_duration() {
        let hist = crate::WindowedHistogram::new();
        let t = Timer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ns = t.stop(&hist);
        assert!(ns >= 2_000_000, "slept 2ms but measured {ns}ns");
        assert_eq!(hist.snapshot().count(), 1);
    }
}
