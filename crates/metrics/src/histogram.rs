//! Base-2 sub-bucketed atomic histograms with sliding windows.
//!
//! The bucket layout is the classic "h2" scheme (as used by pelikan's
//! rustcommon and hdrhistogram-family designs), parameterised by a
//! **grouping power** `p`:
//!
//! * values below `2^(p+1)` get one bucket each (exact);
//! * every power-of-two range `[2^h, 2^(h+1))` above that is split into
//!   `2^p` equal sub-buckets of width `2^(h-p)`.
//!
//! A bucket's width is therefore never more than `2^-p` of the values
//! it holds, so any percentile read off the bucket edges carries a
//! bounded **relative error ≤ 2^-p** (default `p = 7`: ≤ 1/128 ≈
//! 0.8%). Recording is one index computation plus one relaxed
//! `fetch_add` — no locks, no floating point.
//!
//! [`WindowedHistogram`] layers a sliding window on top: an all-time
//! histogram plus a ring of interval slices rotated by the coarse
//! clock. Lifetime percentiles come from the all-time histogram
//! ([`WindowedHistogram::snapshot`]); recent-traffic percentiles merge
//! the live slices ([`WindowedHistogram::window_snapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::clock;

/// Default grouping power: 128 sub-buckets per power of two, bounding
/// relative error at 1/128 (≈ 0.8%).
pub const DEFAULT_GROUPING_POWER: u32 = 7;

/// Buckets needed for grouping power `p` over the full `u64` range.
fn bucket_count(p: u32) -> usize {
    (1usize << (p + 1)) + (63 - p as usize) * (1usize << p)
}

/// The bucket index of `value` under grouping power `p`.
#[inline]
fn index_of(p: u32, value: u64) -> usize {
    let h = 63 - (value | 1).leading_zeros();
    if h <= p {
        value as usize
    } else {
        let g = h - p; // sub-bucket width within [2^h, 2^(h+1)) is 2^g
        (1usize << (p + 1)) + ((g as usize - 1) << p) + ((value >> g) as usize - (1usize << p))
    }
}

/// The largest value mapping to bucket `i` under grouping power `p`.
fn bucket_high(p: u32, i: usize) -> u64 {
    let exact = 1usize << (p + 1);
    if i < exact {
        i as u64
    } else {
        let rel = i - exact;
        let g = (rel >> p) as u32 + 1;
        let b = (rel & ((1usize << p) - 1)) as u64;
        let low = (1u64 << (p + g)) + (b << g);
        low + ((1u64 << g) - 1)
    }
}

/// A lock-free histogram over the full `u64` value range.
///
/// See the [crate docs](crate) for the bucket scheme and error bound.
/// All recording is relaxed atomics; snapshots taken while writers are
/// recording are approximate (a concurrent record may be split between
/// `sum` and its bucket).
///
/// # Examples
///
/// ```
/// use blobseer_metrics::AtomicHistogram;
///
/// let h = AtomicHistogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 100);
/// // Values below 2^(p+1) = 256 sit in exact buckets.
/// assert_eq!(snap.percentile(50.0), Some(50));
/// assert_eq!(snap.percentile(99.0), Some(99));
/// ```
#[derive(Debug)]
pub struct AtomicHistogram {
    grouping_power: u32,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl AtomicHistogram {
    /// A histogram with the default grouping power
    /// ([`DEFAULT_GROUPING_POWER`]).
    pub fn new() -> AtomicHistogram {
        Self::with_grouping_power(DEFAULT_GROUPING_POWER)
    }

    /// A histogram with `2^p` sub-buckets per power of two (relative
    /// error ≤ `2^-p`). Panics unless `1 ≤ p ≤ 15`.
    pub fn with_grouping_power(p: u32) -> AtomicHistogram {
        assert!((1..=15).contains(&p), "grouping power {p} outside 1..=15");
        let buckets = (0..bucket_count(p)).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram { grouping_power: p, buckets, sum: AtomicU64::new(0) }
    }

    /// The configured grouping power.
    pub fn grouping_power(&self) -> u32 {
        self.grouping_power
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[index_of(self.grouping_power, value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Zero every bucket (used by window rotation). Not atomic as a
    /// whole: concurrent records may land before or after individual
    /// bucket clears — bounded slop at slice boundaries, by design.
    fn reset(&self) {
        self.sum.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            grouping_power: self.grouping_power,
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Accumulate this histogram's counts into `snap` (same grouping
    /// power required).
    fn merge_into(&self, snap: &mut HistogramSnapshot) {
        assert_eq!(self.grouping_power, snap.grouping_power, "grouping powers must match");
        snap.sum = snap.sum.wrapping_add(self.sum.load(Ordering::Relaxed));
        for (dst, src) in snap.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst += src.load(Ordering::Relaxed);
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A non-atomic copy of a histogram's state, with percentile readout.
///
/// Percentiles are read off bucket **upper edges**: the reported value
/// is ≥ the true percentile and within one bucket width of it, i.e.
/// within a relative error of `2^-p` for values above the exact region
/// (and exact below it).
///
/// # Examples
///
/// ```
/// use blobseer_metrics::AtomicHistogram;
///
/// let h = AtomicHistogram::new();
/// for _ in 0..99 {
///     h.record(1_000);
/// }
/// h.record(1_000_000); // one slow outlier
/// let snap = h.snapshot();
/// let p50 = snap.percentile(50.0).unwrap();
/// let p999 = snap.percentile(99.9).unwrap();
/// assert!((p50 as f64 - 1_000.0).abs() / 1_000.0 < 0.01);
/// assert!((p999 as f64 - 1_000_000.0).abs() / 1_000_000.0 < 0.01);
/// assert_eq!(snap.count(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    grouping_power: u32,
    sum: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (used for histograms that never recorded).
    pub(crate) fn empty(grouping_power: u32) -> HistogramSnapshot {
        HistogramSnapshot { grouping_power, sum: 0, buckets: vec![0; bucket_count(grouping_power)] }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The value at percentile `pct` (0–100), or `None` when empty.
    /// Reported as the upper edge of the bucket holding that rank; see
    /// the type docs for the error bound.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 || !pct.is_finite() {
            return None;
        }
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_high(self.grouping_power, i));
            }
        }
        None // unreachable: ranks are clamped to the total
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0).unwrap_or(0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0).unwrap_or(0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0).unwrap_or(0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9).unwrap_or(0)
    }

    /// Upper edge of the highest occupied bucket (≈ the maximum
    /// recorded value, within the bucket error bound); 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| bucket_high(self.grouping_power, i))
    }
}

/// An all-time histogram plus a sliding window of interval slices.
///
/// Recording goes to both the lifetime histogram and the slice for the
/// sample's time period; slices are recycled in a ring, so
/// [`WindowedHistogram::window_snapshot`] always covers roughly the
/// last `slices × slice_duration` of traffic. Rotation is driven by
/// the timestamps recorders pass in (normally the [coarse
/// clock](crate::clock)) — there is no background thread.
///
/// The window is approximate at slice boundaries: a recorder holding a
/// stale timestamp may record into a slice that a concurrent rotation
/// is clearing. The all-time histogram is never rotated and never
/// loses a sample.
///
/// Bucket storage is **lazily allocated** on first record: registering
/// many windowed histograms costs nothing until a hot path actually
/// records into one.
///
/// # Examples
///
/// ```
/// use blobseer_metrics::WindowedHistogram;
///
/// // 4 slices of 1 ms: a ~4 ms sliding window.
/// let h = WindowedHistogram::with_config(7, std::time::Duration::from_millis(1), 4);
/// h.record_at(0, 100);
/// // 10 ms later the old slice has rotated out of the window...
/// h.record_at(10_000_000, 900);
/// assert_eq!(h.window_snapshot_at(10_000_000).count(), 1);
/// // ...but the all-time histogram keeps everything.
/// assert_eq!(h.snapshot().count(), 2);
/// ```
#[derive(Debug)]
pub struct WindowedHistogram {
    grouping_power: u32,
    slice_ns: u64,
    num_slices: usize,
    inner: OnceLock<Windows>,
}

#[derive(Debug)]
struct Windows {
    live: AtomicHistogram,
    slices: Vec<AtomicHistogram>,
    /// The slice period the ring has been rotated up to.
    period: AtomicU64,
}

impl WindowedHistogram {
    /// Default configuration: grouping power 7, four 1-second slices
    /// (a ~4 s sliding window).
    pub fn new() -> WindowedHistogram {
        Self::with_config(DEFAULT_GROUPING_POWER, Duration::from_secs(1), 4)
    }

    /// A window of `num_slices` slices of `slice` each, at the given
    /// grouping power. Panics when `slice` is zero, `num_slices < 2`,
    /// or the grouping power is outside `1..=15`.
    pub fn with_config(
        grouping_power: u32,
        slice: Duration,
        num_slices: usize,
    ) -> WindowedHistogram {
        let slice_ns = slice.as_nanos() as u64;
        assert!(slice_ns > 0, "slice duration must be non-zero");
        assert!(num_slices >= 2, "a window needs at least 2 slices");
        assert!((1..=15).contains(&grouping_power), "grouping power outside 1..=15");
        WindowedHistogram { grouping_power, slice_ns, num_slices, inner: OnceLock::new() }
    }

    /// The configured grouping power.
    pub fn grouping_power(&self) -> u32 {
        self.grouping_power
    }

    /// The total window span (`slices × slice_duration`).
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slice_ns.saturating_mul(self.num_slices as u64))
    }

    fn windows(&self) -> &Windows {
        self.inner.get_or_init(|| Windows {
            live: AtomicHistogram::with_grouping_power(self.grouping_power),
            slices: (0..self.num_slices)
                .map(|_| AtomicHistogram::with_grouping_power(self.grouping_power))
                .collect(),
            period: AtomicU64::new(0),
        })
    }

    /// Advance the ring to `now`, clearing every slice whose period
    /// expired. Exactly one racing recorder wins the CAS and clears.
    fn rotate(&self, w: &Windows, now_ns: u64) {
        let period = now_ns / self.slice_ns;
        let cur = w.period.load(Ordering::Acquire);
        if period > cur
            && w.period.compare_exchange(cur, period, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            let first = (cur + 1).max(period.saturating_sub(self.num_slices as u64 - 1));
            for q in first..=period {
                w.slices[(q % self.num_slices as u64) as usize].reset();
            }
        }
    }

    /// Record `value` stamped with the current [coarse
    /// clock](crate::clock::coarse_now) reading.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(clock::coarse_now(), value);
    }

    /// Record `value` stamped with an explicit timestamp (nanoseconds
    /// since the process epoch). Tests drive this directly to make
    /// window rotation deterministic.
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let w = self.windows();
        self.rotate(w, now_ns);
        w.live.record(value);
        w.slices[((now_ns / self.slice_ns) % self.num_slices as u64) as usize].record(value);
    }

    /// All-time snapshot: every sample ever recorded.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match self.inner.get() {
            Some(w) => w.live.snapshot(),
            None => HistogramSnapshot::empty(self.grouping_power),
        }
    }

    /// Sliding-window snapshot as of the coarse clock: roughly the
    /// last [`WindowedHistogram::window`] of traffic.
    pub fn window_snapshot(&self) -> HistogramSnapshot {
        self.window_snapshot_at(clock::coarse_now())
    }

    /// [`WindowedHistogram::window_snapshot`] with an explicit
    /// timestamp (nanoseconds since the process epoch).
    pub fn window_snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        let Some(w) = self.inner.get() else {
            return HistogramSnapshot::empty(self.grouping_power);
        };
        self.rotate(w, now_ns);
        let mut snap = HistogramSnapshot::empty(self.grouping_power);
        for slice in &w.slices {
            slice.merge_into(&mut snap);
        }
        snap
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let p = DEFAULT_GROUPING_POWER;
        for v in 0..(1u64 << (p + 1)) {
            let i = index_of(p, v);
            assert_eq!(bucket_high(p, i), v, "value {v} must map to its own bucket");
        }
    }

    #[test]
    fn indexes_are_monotone_and_dense() {
        // Walking the bucket high edges must visit every bucket once,
        // in order, ending at u64::MAX.
        let p = 3;
        let n = bucket_count(p);
        let mut prev = None;
        for i in 0..n {
            let high = bucket_high(p, i);
            assert_eq!(index_of(p, high), i, "high edge of bucket {i} must map back");
            if let Some(prev) = prev {
                assert!(high > prev);
                assert_eq!(index_of(p, prev + 1), i, "buckets must tile without gaps");
            }
            prev = Some(high);
        }
        assert_eq!(prev, Some(u64::MAX));
    }

    #[test]
    fn relative_error_is_bounded() {
        let p = DEFAULT_GROUPING_POWER;
        let bound = 1.0 / (1u64 << p) as f64;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let high = bucket_high(p, index_of(p, v));
            assert!(high >= v);
            let err = (high - v) as f64 / v as f64;
            assert!(err <= bound, "value {v}: bucket edge {high} errs by {err}");
            v = v.wrapping_mul(3).wrapping_add(7);
        }
    }

    #[test]
    fn extremes_record() {
        let h = AtomicHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.percentile(0.0), Some(0));
        assert_eq!(snap.max(), u64::MAX);
    }

    #[test]
    fn empty_snapshot_has_no_percentiles() {
        let snap = AtomicHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.percentile(50.0), None);
        assert_eq!(snap.mean(), 0);
        assert_eq!(snap.max(), 0);
    }

    #[test]
    fn window_rotation_expires_old_slices() {
        let ms = 1_000_000u64;
        let h = WindowedHistogram::with_config(7, Duration::from_millis(1), 4);
        h.record_at(0, 10);
        h.record_at(2 * ms, 20);
        // Both still inside the 4 ms window (periods 0..=2).
        assert_eq!(h.window_snapshot_at(2 * ms).count(), 2);
        // 5 ms: the window covers periods 2..=5, so the slice holding
        // `10` (period 0) has been recycled and `20` (period 2) kept.
        let snap = h.window_snapshot_at(5 * ms);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.percentile(50.0), Some(20));
        // Far future: everything expired, all-time unaffected.
        assert_eq!(h.window_snapshot_at(100 * ms).count(), 0);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn window_handles_large_time_jumps() {
        let h = WindowedHistogram::with_config(7, Duration::from_millis(1), 4);
        h.record_at(0, 1);
        // A jump of many periods must clear at most num_slices slices
        // (and not wrap or panic).
        h.record_at(u64::MAX / 2, 2);
        assert_eq!(h.window_snapshot_at(u64::MAX / 2).count(), 1);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn lazy_allocation_defers_buckets() {
        let h = WindowedHistogram::new();
        assert!(h.inner.get().is_none(), "no record yet: no buckets");
        assert_eq!(h.snapshot().count(), 0);
        h.record_at(0, 5);
        assert!(h.inner.get().is_some());
    }
}
