//! E4 — §4.1 ablation: metadata *weaving* vs. rebuilding a full tree
//! per snapshot ("rebuilding a full tree for subsequent updates would
//! be space- and time-inefficient").
//!
//! Part 1 uses the real planner to count the tree nodes each scheme
//! materializes as a blob grows through appends. Part 2 prices the
//! difference in simulated time: the same append sweep with the cold
//! border descent (no client cache) vs. the cached one.

use blobseer_meta::plan::{full_tree_node_count, update_plan};
use blobseer_sim::{append_experiment, SimParams};
use blobseer_types::{NodePos, PageRange};

fn main() {
    println!("# E4 — weaving vs full-rebuild metadata cost");

    // ---- Part 1: node counts (pure planner arithmetic). ----
    let append_pages = 16u64;
    let appends = 64u64;
    let mut woven_total = 0u64;
    let mut rebuild_total = 0u64;
    println!("\n{:>8} {:>16} {:>16} {:>10}", "pages", "woven nodes", "rebuilt nodes", "ratio");
    for k in 1..=appends {
        let total = k * append_pages;
        let plan = update_plan(
            PageRange::new(total - append_pages, append_pages),
            NodePos::root_for(total),
        );
        woven_total += plan.node_count();
        rebuild_total += full_tree_node_count(total);
        if k % 8 == 0 {
            println!(
                "{total:>8} {woven_total:>16} {rebuild_total:>16} {:>9.1}x",
                rebuild_total as f64 / woven_total as f64
            );
        }
    }
    assert!(
        rebuild_total > 10 * woven_total,
        "rebuilding must be an order of magnitude worse: {rebuild_total} vs {woven_total}"
    );

    // ---- Part 2: priced in simulated append bandwidth. ----
    let cached = append_experiment(SimParams::default(), 50, 64 * 1024, 1 << 20, 512);
    let cold = append_experiment(
        SimParams { cached_border_descent: false, ..SimParams::default() },
        50,
        64 * 1024,
        1 << 20,
        512,
    );
    let avg = |pts: &[blobseer_sim::AppendPoint]| {
        pts.iter().map(|p| p.mbps).sum::<f64>() / pts.len() as f64
    };
    println!("\nappend bandwidth, cached border resolution: {:>6.1} MB/s", avg(&cached));
    println!("append bandwidth, cold tree descent:        {:>6.1} MB/s", avg(&cold));
    assert!(avg(&cold) < avg(&cached));
    println!(
        "# OK: weaving creates {:.1}x fewer nodes than rebuilding; cold descent costs {:.1}%",
        rebuild_total as f64 / woven_total as f64,
        (1.0 - avg(&cold) / avg(&cached)) * 100.0
    );
}
