//! E2 — Figure 2(b): read throughput under reader concurrency.
//!
//! Paper setup (§5): a 64 GiB blob (64 KiB pages → 2^20 pages) served
//! by 173 co-deployed data+metadata providers; N concurrent readers
//! each read a distinct 64 MiB chunk; readers run *on* provider nodes.
//! Paper result: 60 MB/s for one reader declining mildly to 49 MB/s at
//! 175 readers (−18%).

use blobseer_sim::{read_experiment, SimParams};

fn main() {
    println!("# Figure 2(b) — read throughput vs concurrent readers");
    println!("# 64 GiB blob, 64 KiB pages, 173 co-deployed providers, 64 MiB chunks");
    println!(
        "\n{:>8} {:>12} {:>12} {:>12} {:>14}",
        "readers", "avg MB/s", "min MB/s", "max MB/s", "paper MB/s"
    );

    let paper = |readers: usize| match readers {
        1 => "60",
        100 => "~55",
        175 => "49",
        _ => "-",
    };

    let mut one = 0.0f64;
    let mut at175 = 0.0f64;
    for readers in [1usize, 25, 50, 75, 100, 125, 150, 175] {
        let s = read_experiment(
            SimParams::default(),
            173,
            readers,
            1 << 20,
            64 * 1024,
            1024, // 64 MiB chunks
        );
        println!(
            "{readers:>8} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            s.avg_mbps,
            s.min_mbps,
            s.max_mbps,
            paper(readers)
        );
        if readers == 1 {
            one = s.avg_mbps;
        }
        if readers == 175 {
            at175 = s.avg_mbps;
        }
    }

    let drop = (1.0 - at175 / one) * 100.0;
    println!(
        "\n# single-reader {one:.1} MB/s (paper 60), 175-reader {at175:.1} MB/s (paper 49), \
         drop {drop:.1}% (paper 18.3%)"
    );
    // Shape assertions: the paper's claim is *good scalability* — a
    // mild, monotonic-ish degradation, not a collapse.
    assert!((one - 60.0).abs() < 6.0, "single-reader point drifted: {one:.1}");
    assert!(at175 < one, "concurrency must cost something");
    assert!(
        (5.0..35.0).contains(&drop),
        "degradation {drop:.1}% outside the plausible band around the paper's 18%"
    );
    println!("# OK: shape matches (mild degradation under 175-way concurrency)");
}
