//! Replication ablation (extension beyond the paper, cf. §3.2): what
//! do extra page copies cost on the write path, and what do they buy
//! on the read path under provider failures — measured on the real
//! engine.

use std::time::Instant;

use blobseer::{BlobSeer, ProviderId, Version};

const PSIZE: u64 = 16 * 1024;
const PAGES: usize = 512;

fn store(replication: usize) -> (BlobSeer, blobseer::BlobId, Version, f64) {
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(12)
        .metadata_providers(8)
        .io_threads(8)
        .replication(replication)
        .build()
        .unwrap();
    let data = vec![7u8; PAGES * PSIZE as usize];
    // Warm up pools/allocator on a throwaway blob, then time the real
    // ingest — the measurement must not include deployment setup.
    let warmup = s.create().id();
    let wv = s.append(warmup, &data).unwrap();
    s.sync(warmup, wv).unwrap();
    let b = s.create().id();
    let t0 = Instant::now();
    let v = s.append(b, &data).unwrap();
    s.sync(b, v).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    (s, b, v, secs)
}

fn main() {
    println!("# replication ablation (real engine, {PAGES} x {PSIZE} B pages)");
    println!(
        "\n{:>5} {:>16} {:>16} {:>16} {:>14}",
        "r", "write MB/s", "read MB/s", "degraded MB/s", "phys pages"
    );
    let bytes = (PAGES as u64 * PSIZE) as f64 / 1e6;
    let mut write_r1 = 0.0;
    let mut write_r3 = 0.0;
    for replication in [1usize, 2, 3] {
        // Write cost: best of 3 timed ingests (fresh deployment each).
        let mut write_secs = f64::INFINITY;
        let (mut s, mut b, mut v);
        let (s0, b0, v0, secs) = store(replication);
        write_secs = write_secs.min(secs);
        (s, b, v) = (s0, b0, v0);
        for _ in 0..2 {
            let (s1, b1, v1, secs) = store(replication);
            if secs < write_secs {
                write_secs = secs;
                (s, b, v) = (s1, b1, v1);
            }
        }
        let write_mbps = bytes / write_secs;

        // Read with all providers healthy (warm, best of 3).
        let mut read_secs = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let healthy = s.read(b, v, 0, PAGES as u64 * PSIZE).unwrap();
            read_secs = read_secs.min(t0.elapsed().as_secs_f64());
            assert_eq!(healthy.len(), PAGES * PSIZE as usize);
        }
        let read_mbps = bytes / read_secs;

        // Read with one provider down (fallback path for r > 1).
        s.fail_provider(ProviderId(0)).unwrap();
        let degraded_mbps = if replication > 1 {
            let t0 = Instant::now();
            s.read(b, v, 0, PAGES as u64 * PSIZE).unwrap();
            bytes / t0.elapsed().as_secs_f64()
        } else {
            assert!(s.read(b, v, 0, PAGES as u64 * PSIZE).is_err());
            f64::NAN
        };
        println!(
            "{replication:>5} {write_mbps:>16.0} {read_mbps:>16.0} {degraded_mbps:>16.0} {:>14}",
            s.stats().physical_pages
        );
        if replication == 1 {
            write_r1 = write_mbps;
        }
        if replication == 3 {
            write_r3 = write_mbps;
        }
        assert_eq!(s.stats().physical_pages, 2 * PAGES * replication, "warmup + timed blob");
    }
    println!(
        "\n# write r=3 vs r=1: {:.2}x — NOTE: in-process stores clone `Bytes`",
        write_r1 / write_r3
    );
    println!("# (refcounted, zero-copy), so the r-fold *network* cost of replication");
    println!("# does not appear here; only the bookkeeping does. In a distributed");
    println!("# deployment the write path pays r x the transfer bytes.");
    println!("# OK: r>1 serves full reads through one provider failure; r=1 fails cleanly");
}
