//! E1 — Figure 2(a): append throughput as a blob dynamically grows.
//!
//! Paper setup (§5): version manager + provider manager on dedicated
//! nodes; data + metadata providers co-deployed on the rest (50 and 175
//! of them); a single client appends 64 MB of data; page sizes 64 KiB
//! and 256 KiB; x-axis: blob size in pages (up to ~1200); y-axis:
//! append bandwidth (MB/s, observed band ≈ 55..105).
//!
//! The paper does not state the per-append unit; we use 1 MiB appends
//! so every series spans the figure's 0..1200-page x-range (see
//! EXPERIMENTS.md). Expected shape: sustained high bandwidth, small
//! permanent step-downs where the page count crosses a power of two
//! (a new metadata tree level), larger pages ≥ smaller pages.

use blobseer_sim::{append_experiment, AppendPoint, SimParams};

const MIB: u64 = 1 << 20;

fn main() {
    println!("# Figure 2(a) — append throughput as the blob grows");
    println!("# single client, 1 MiB appends, Grid'5000 constants (117.5 MB/s, 0.1 ms)");
    let series = [(64 * 1024u64, 175usize), (256 * 1024, 175), (64 * 1024, 50), (256 * 1024, 50)];
    let mut results: Vec<(String, Vec<AppendPoint>)> = Vec::new();
    for (psize, providers) in series {
        let total_pages = 1280 * 64 * 1024 / psize; // ≈ 80 MiB of data
        let pts = append_experiment(SimParams::default(), providers, psize, MIB, total_pages);
        results.push((format!("{}K/{}prov", psize / 1024, providers), pts));
    }

    println!(
        "\n{:>12} {:>14} {:>14} {:>14} {:>14}   (MB/s)",
        "64K-pages", results[0].0, results[1].0, results[2].0, results[3].0
    );
    // Shared x-grid over the fraction of the sweep (page counts differ
    // per page size at equal bytes).
    let steps = 20;
    for step in 1..=steps {
        let frac = step as f64 / steps as f64;
        let mut row = String::new();
        let mut pages_64k = 0;
        for (i, (_, pts)) in results.iter().enumerate() {
            let idx = ((pts.len() as f64 * frac) as usize).clamp(1, pts.len()) - 1;
            let p = pts[idx];
            if i == 0 {
                pages_64k = p.pages_after;
            }
            row.push_str(&format!(" {:>14.1}", p.mbps));
        }
        println!("{pages_64k:>12} {row}");
    }

    for (name, pts) in &results {
        let first = pts.first().unwrap().mbps;
        let last = pts.last().unwrap().mbps;
        let min = pts.iter().map(|p| p.mbps).fold(f64::INFINITY, f64::min);
        let max = pts.iter().map(|p| p.mbps).fold(0.0, f64::max);
        println!(
            "# {name}: first {first:.1} last {last:.1} min {min:.1} max {max:.1} MB/s \
             (decline {:.1}%)",
            (1.0 - last / first) * 100.0
        );
    }

    // Highlight the power-of-two steps on the 64K/175 series.
    let pts = &results[0].1;
    println!("# power-of-two step-downs (64K, 175 providers):");
    for window in pts.windows(2) {
        let (a, b) = (window[0], window[1]);
        let crossed = a.pages_after.next_power_of_two() < b.pages_after.next_power_of_two();
        if crossed && b.mbps < a.mbps {
            println!(
                "#   {:>5} -> {:>5} pages: {:.2} -> {:.2} MB/s (new tree level)",
                a.pages_after, b.pages_after, a.mbps, b.mbps
            );
        }
    }

    // Shape assertions — fail loudly if the reproduction drifts.
    for (name, pts) in &results {
        for p in pts {
            assert!(
                p.mbps > 55.0 && p.mbps < 117.5,
                "{name}: {:.1} MB/s at {} pages outside the paper's band",
                p.mbps,
                p.pages_after
            );
        }
    }
    println!("# OK: all series within the paper's 55..117.5 MB/s band");
}
