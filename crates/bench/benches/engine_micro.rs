//! E6 + engine micro-benchmarks (criterion, real engine).
//!
//! E6 quantifies §4.3's claim that version-manager serialization "is
//! however negligible when compared to the full operation": we measure
//! the VM's assign+complete path against the full APPEND pipeline.
//! The criterion groups then track the latency of each public
//! primitive.

use std::time::{Duration, Instant};

use blobseer::{BlobSeer, Version};
use blobseer_version::{ConcurrencyMode, UpdateKind, VersionManager};
use criterion::{black_box, Criterion};

const PSIZE: u64 = 16 * 1024;

fn store() -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(8)
        .metadata_providers(8)
        .io_threads(4)
        .build()
        .unwrap()
}

/// E6: the version manager's share of an append's critical path.
fn e6_report() {
    println!("# E6 — version-manager overhead within a full APPEND (real engine)");
    let iters = 2000;

    // VM-only: assign + complete on a bare version manager.
    let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5));
    let blob = vm.create();
    let t0 = Instant::now();
    for _ in 0..iters {
        let a = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
        vm.complete(blob, a.vw).unwrap();
    }
    let vm_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Full pipeline: data + metadata + VM.
    let s = store();
    let b = s.create().id();
    let payload = vec![1u8; PSIZE as usize];
    let t0 = Instant::now();
    for _ in 0..iters {
        s.append(b, &payload).unwrap();
    }
    let full_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let share = vm_ns / full_ns * 100.0;
    println!("vm assign+publish: {:>10.0} ns", vm_ns);
    println!("full append:       {:>10.0} ns", full_ns);
    println!("vm share:          {share:>9.1}%");
    assert!(share < 50.0, "VM must not dominate the append path");
    println!("# OK: VM serialization is a minor share of the full operation\n");
}

fn bench_appends(c: &mut Criterion) {
    let mut g = c.benchmark_group("append");
    for pages in [1usize, 4, 16] {
        let s = store();
        let b = s.create().id();
        let payload = vec![7u8; pages * PSIZE as usize];
        g.throughput(criterion::Throughput::Bytes(payload.len() as u64));
        g.bench_function(format!("{pages}p_aligned"), |bench| {
            bench.iter(|| s.append(b, black_box(&payload)).unwrap())
        });
    }
    // Unaligned appends exercise the boundary-merge path.
    let s = store();
    let b = s.create().id();
    let payload = vec![7u8; PSIZE as usize + 777];
    g.bench_function("1p_unaligned", |bench| {
        bench.iter(|| s.append(b, black_box(&payload)).unwrap())
    });
    g.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("write");
    let s = store();
    let b = s.create().id();
    let v = s.append(b, &vec![0u8; 64 * PSIZE as usize]).unwrap();
    s.sync(b, v).unwrap();
    let page = vec![1u8; PSIZE as usize];
    g.bench_function("overwrite_1p_aligned", |bench| {
        bench.iter(|| s.write(b, black_box(&page), 8 * PSIZE).unwrap())
    });
    let small = vec![2u8; 100];
    g.bench_function("overwrite_100b_unaligned", |bench| {
        bench.iter(|| s.write(b, black_box(&small), 3 * PSIZE + 57).unwrap())
    });
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("read");
    // Blob sizes spanning several tree depths. The loops reuse one
    // buffer (`read_into`) so the measurement excludes per-call
    // allocation; the `snap_` variants additionally pin the version,
    // excluding the per-call VM resolution.
    for pages in [16u64, 256, 2048] {
        let s = store();
        let b = s.create().id();
        let mut last = Version(0);
        let chunk = vec![3u8; 128 * PSIZE as usize];
        let mut written = 0;
        while written < pages {
            let n = (pages - written).min(128);
            last = s.append(b, &chunk[..(n * PSIZE) as usize]).unwrap();
            written += n;
        }
        s.sync(b, last).unwrap();
        let mut buf = vec![0u8; 4 * PSIZE as usize];
        g.throughput(criterion::Throughput::Bytes(4 * PSIZE));
        g.bench_function(format!("4p_of_{pages}p_blob"), |bench| {
            bench.iter(|| s.read_into(b, last, black_box(5 * PSIZE), &mut buf).unwrap())
        });
        let snap = s.snapshot(b, last).unwrap();
        g.bench_function(format!("snap_4p_of_{pages}p_blob"), |bench| {
            bench.iter(|| snap.read_into(black_box(5 * PSIZE), &mut buf).unwrap())
        });
        g.bench_function(format!("snap_scatter_4p_of_{pages}p_blob"), |bench| {
            bench.iter(|| {
                snap.read_scatter(blobseer::ByteRange::new(black_box(5 * PSIZE), 4 * PSIZE))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_version_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    let s = store();
    let b = s.create().id();
    let v = s.append(b, &vec![0u8; PSIZE as usize]).unwrap();
    s.sync(b, v).unwrap();
    g.bench_function("get_recent", |bench| bench.iter(|| s.get_recent(black_box(b)).unwrap()));
    g.bench_function("get_size", |bench| bench.iter(|| s.get_size(black_box(b), v).unwrap()));
    g.bench_function("branch", |bench| bench.iter(|| s.branch(black_box(b), v).unwrap()));
    g.finish();
}

fn main() {
    e6_report();
    let mut c = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args();
    bench_appends(&mut c);
    bench_writes(&mut c);
    bench_reads(&mut c);
    bench_version_ops(&mut c);
    c.final_summary();
}
