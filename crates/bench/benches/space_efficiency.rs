//! E3 — §4.3 "Efficient use of storage space", measured on the *real*
//! engine: "new storage space is necessary for newly written pages
//! only: for any WRITE or APPEND, the pages that are NOT updated are
//! physically shared by the newly generated snapshot version with the
//! previously published version."
//!
//! Workload: grow a blob to 4 MiB (256 × 16 KiB pages), then run 200
//! small random overwrites. Compare the physical footprint (pages +
//! metadata nodes) against the naive copy-per-version baseline.

use blobseer::{BlobSeer, Version};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PSIZE: u64 = 16 * 1024;
const BASE_PAGES: u64 = 256;
const OVERWRITES: usize = 200;

fn main() {
    println!("# E3 — storage-space efficiency across versions (real engine)");
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(16)
        .metadata_providers(16)
        .build()
        .unwrap();
    let blob = store.create().id();

    let base = vec![7u8; (BASE_PAGES * PSIZE) as usize];
    let v1 = store.append(blob, &base).unwrap();
    store.sync(blob, v1).unwrap();
    let after_base = store.stats();

    let mut rng = StdRng::seed_from_u64(3);
    let mut last = v1;
    let mut pages_written = 0u64;
    for i in 0..OVERWRITES {
        // 1-3 page overwrite at a random page-aligned offset.
        let pages = rng.gen_range(1..=3u64);
        let first = rng.gen_range(0..BASE_PAGES - pages);
        let data = vec![i as u8; (pages * PSIZE) as usize];
        last = store.write(blob, &data, first * PSIZE).unwrap();
        pages_written += pages;
    }
    store.sync(blob, last).unwrap();
    let stats = store.stats();

    let versions = last.raw();
    let logical_bytes: u64 =
        (1..=versions).map(|v| store.get_size(blob, Version(v)).unwrap()).sum();
    let copy_baseline_pages = BASE_PAGES * versions;

    println!("versions published:        {versions}");
    println!("logical bytes (all vers):  {logical_bytes}");
    println!(
        "physical pages:            {} ({} base + {} overwritten)",
        stats.physical_pages, BASE_PAGES, pages_written
    );
    println!("copy-per-version baseline: {copy_baseline_pages} pages");
    let saving = 1.0 - stats.physical_pages as f64 / copy_baseline_pages as f64;
    println!("space saved vs baseline:   {:.1}%", saving * 100.0);
    println!(
        "metadata nodes:            {} (base tree {})",
        stats.metadata_nodes, after_base.metadata_nodes
    );
    let nodes_per_update =
        (stats.metadata_nodes - after_base.metadata_nodes) as f64 / OVERWRITES as f64;
    println!("metadata nodes per update: {nodes_per_update:.1}");

    // The paper's claim, quantified: physical pages = base + exactly the
    // updated pages; every snapshot remains readable.
    assert_eq!(stats.physical_pages as u64, BASE_PAGES + pages_written);
    assert!(saving > 0.95, "sharing must beat copying by >95% here");
    for v in [1, versions / 2, versions] {
        assert_eq!(store.get_size(blob, Version(v)).unwrap(), BASE_PAGES * PSIZE);
    }
    println!("# OK: only updated pages consume new space; all versions readable");
}
