//! E8 — metadata decentralization ablation (the paper's §1 thesis).
//!
//! Related work "centralized [metadata management] and mainly optimized
//! for data reading and appending. In contrast, we rely on metadata
//! decentralization." This bench reruns the Figure 2(b) workload with
//! every tree node pinned to a single metadata server: the centralized
//! server's queue becomes the bottleneck as reader concurrency grows,
//! while the DHT-distributed layout degrades only mildly — the paper's
//! architectural argument, quantified.

use blobseer_sim::{read_experiment, SimParams};

fn main() {
    println!("# E8 — DHT-distributed vs centralized metadata under reader concurrency");
    println!("# Figure 2(b) workload: 64 GiB blob, 64 KiB pages, 173 providers");
    println!(
        "\n{:>8} {:>18} {:>18} {:>8}",
        "readers", "distributed MB/s", "centralized MB/s", "ratio"
    );
    let decentralized = SimParams::default();
    let centralized = SimParams { centralized_metadata: true, ..SimParams::default() };
    let mut ratio_at_max = 0.0;
    for readers in [1usize, 50, 100, 175] {
        let d = read_experiment(decentralized, 173, readers, 1 << 20, 64 * 1024, 1024);
        let c = read_experiment(centralized, 173, readers, 1 << 20, 64 * 1024, 1024);
        let ratio = d.avg_mbps / c.avg_mbps;
        println!("{readers:>8} {:>18.1} {:>18.1} {ratio:>7.2}x", d.avg_mbps, c.avg_mbps);
        if readers == 175 {
            ratio_at_max = ratio;
        }
    }
    assert!(
        ratio_at_max > 1.2,
        "decentralized metadata must clearly win at 175 readers (got {ratio_at_max:.2}x)"
    );
    println!(
        "\n# OK: metadata decentralization is worth {ratio_at_max:.2}x at 175 readers — \
         the centralized server's request queue dominates"
    );
}
