//! E5 — §4.2 ablation on the *real* engine: concurrent metadata builds
//! (the paper's partial-border-set protocol) vs. the serialized
//! baseline where writer `k` waits for writer `k−1` to publish before
//! building its tree.
//!
//! N threads append concurrently; we report aggregate ingest throughput
//! per mode. The concurrent mode should win, increasingly so with more
//! writers — that is the paper's core systems claim.

use std::time::Instant;

use blobseer::{BlobSeer, ConcurrencyMode};
use blobseer_workloads::AppendStream;

const PSIZE: u64 = 16 * 1024;
const APPENDS_PER_WRITER: usize = 120;

fn run(mode: ConcurrencyMode, writers: usize) -> f64 {
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(16)
        .metadata_providers(16)
        .io_threads(8)
        .concurrency_mode(mode)
        .build()
        .unwrap();
    let blob = store.create().id();
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for w in 0..writers {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            let mut stream = AppendStream::new(w as u64, 8 * 1024, 24 * 1024);
            let mut total = 0u64;
            let mut last = blobseer::Version(0);
            for _ in 0..APPENDS_PER_WRITER {
                let chunk = stream.next_chunk();
                total += chunk.len() as u64;
                last = store.append(blob, &chunk).unwrap();
            }
            store.sync(blob, last).unwrap();
            total
        }));
    }
    let bytes: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let secs = t0.elapsed().as_secs_f64();
    // Correctness guard: nothing got lost.
    let v = store.get_recent(blob).unwrap();
    assert_eq!(store.get_size(blob, v).unwrap(), bytes);
    bytes as f64 / 1e6 / secs
}

fn main() {
    println!("# E5 — concurrent vs serialized metadata builds (real engine)");
    println!(
        "\n{:>8} {:>18} {:>18} {:>10}",
        "writers", "concurrent MB/s", "serialized MB/s", "speedup"
    );
    let mut speedup_at_max = 0.0;
    for writers in [1usize, 2, 4, 8, 16] {
        // Take the best of 3 runs per cell to tame scheduler noise.
        let best = |mode| (0..3).map(|_| run(mode, writers)).fold(0.0, f64::max);
        let conc = best(ConcurrencyMode::Concurrent);
        let ser = best(ConcurrencyMode::SerializedMetadata);
        let speedup = conc / ser;
        println!("{writers:>8} {conc:>18.1} {ser:>18.1} {speedup:>9.2}x");
        if writers == 16 {
            speedup_at_max = speedup;
        }
    }
    assert!(speedup_at_max > 1.0, "the border-set protocol must beat serialization at 16 writers");
    println!("# OK: partial border sets let writers overlap ({speedup_at_max:.2}x at 16 writers)");
}
