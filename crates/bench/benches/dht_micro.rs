//! DHT micro-benchmarks: the metadata-provider substrate on its own.
//!
//! Tracks the cost of the static-distribution hash, puts/gets under
//! various bucket counts, and the blocking-get wakeup latency that the
//! §4.2 writer-dependency protocol relies on.

use std::sync::Arc;
use std::time::Duration;

use blobseer_dht::{static_bucket, Dht};
use criterion::{black_box, Criterion};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.bench_function("static_bucket_173", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(static_bucket(&(k, k ^ 7), 173))
        })
    });
    g.finish();
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht");
    for buckets in [1usize, 16, 173] {
        let dht: Dht<(u64, u64), u64> = Dht::new(buckets);
        let mut k = 0u64;
        g.bench_function(format!("put_{buckets}b"), |b| {
            b.iter(|| {
                k = k.wrapping_add(1);
                dht.put(black_box((k, k)), k);
            })
        });
        for i in 0..10_000u64 {
            dht.put((i, i), i);
        }
        let mut q = 0u64;
        g.bench_function(format!("get_hit_{buckets}b"), |b| {
            b.iter(|| {
                q = (q + 1) % 10_000;
                black_box(dht.get(&(q, q)))
            })
        });
        g.bench_function(format!("get_miss_{buckets}b"), |b| {
            b.iter(|| black_box(dht.get(&(u64::MAX, q))))
        });
    }
    g.finish();
}

fn bench_concurrent_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht_concurrent");
    g.sample_size(10);
    g.bench_function("8thr_mixed_16b", |b| {
        b.iter(|| {
            let dht: Arc<Dht<(u64, u64), u64>> = Arc::new(Dht::new(16));
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let d = Arc::clone(&dht);
                    std::thread::spawn(move || {
                        for i in 0..500 {
                            d.put((t, i), i);
                            black_box(d.get(&(t, i / 2)));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();
}

fn bench_get_wait_wakeup(c: &mut Criterion) {
    // How quickly a blocked reader observes a concurrent writer's put —
    // the §4.2 dependency handoff.
    let mut g = c.benchmark_group("dht_wait");
    g.sample_size(20);
    g.bench_function("wakeup_handoff", |b| {
        b.iter(|| {
            let dht: Arc<Dht<u64, u64>> = Arc::new(Dht::new(4));
            let d = Arc::clone(&dht);
            let waiter =
                std::thread::spawn(move || d.get_wait(&1, Duration::from_secs(5)).unwrap());
            dht.put(1, 42);
            black_box(waiter.join().unwrap())
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args();
    bench_hash(&mut c);
    bench_put_get(&mut c);
    bench_concurrent_access(&mut c);
    bench_get_wait_wakeup(&mut c);
    c.final_summary();
}
