//! Metadata micro-benchmarks: planners, BUILD_META and READ_META.
//!
//! The planners are on every operation's critical path (and the version
//! manager runs `creates_position` over all in-flight updates per
//! border position), so their costs matter at high op rates.

use std::time::Duration;

use blobseer_meta::plan::{border_positions, read_plan, update_plan};
use blobseer_meta::{
    build_meta, read_meta, Lineage, MetaStore, RootRef, TreeReader, UpdateContext,
};
use blobseer_types::{
    BlobId, ByteRange, NodePos, PageDescriptor, PageId, PageRange, ProviderId, Version,
};
use criterion::{black_box, Criterion};

fn bench_planners(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    // A 1024-page update in a 2^20-page tree (the Fig 2(b) geometry).
    let range = PageRange::new(123 * 1024, 1024);
    let root = NodePos::root_for(1 << 20);
    g.bench_function("update_plan_1024p", |b| {
        b.iter(|| black_box(update_plan(black_box(range), root)))
    });
    g.bench_function("border_positions_1024p", |b| {
        b.iter(|| black_box(border_positions(black_box(range), root)))
    });
    g.bench_function("read_plan_1024p", |b| {
        b.iter(|| black_box(read_plan(black_box(range), root)))
    });
    g.finish();
}

fn pd(page_index: u64) -> PageDescriptor {
    PageDescriptor {
        pid: PageId(page_index as u128 + 1),
        page_index,
        provider: ProviderId((page_index % 7) as u32),
        valid_len: 4096,
    }
}

/// Build (and commit) version 1 covering `pages` pages.
fn seeded_store(pages: u64) -> (MetaStore, Lineage, RootRef) {
    let store = MetaStore::new(16, Duration::from_secs(1));
    let lineage = Lineage::root(BlobId(1));
    let ctx = UpdateContext {
        vw: Version(1),
        range: PageRange::new(0, pages),
        new_root: NodePos::root_for(pages),
        overrides: vec![],
        ref_root: None,
    };
    let leaves: Vec<PageDescriptor> = (0..pages).map(pd).collect();
    let reader = TreeReader::new(&store, &lineage);
    for (k, n) in build_meta(&reader, &ctx, &leaves).unwrap() {
        store.put(k, n);
    }
    let root = RootRef { version: Version(1), pos: NodePos::root_for(pages) };
    (store, lineage, root)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_meta");
    for pages in [1u64, 16, 256] {
        let (store, lineage, root) = seeded_store(1024);
        let ctx = UpdateContext {
            vw: Version(2),
            range: PageRange::new(100, pages),
            new_root: root.pos,
            overrides: vec![],
            ref_root: Some(root),
        };
        let leaves: Vec<PageDescriptor> = (100..100 + pages).map(pd).collect();
        g.bench_function(format!("weave_{pages}p_into_1024p"), |b| {
            let reader = TreeReader::new(&store, &lineage);
            b.iter(|| black_box(build_meta(&reader, &ctx, black_box(&leaves)).unwrap()))
        });
    }
    g.finish();
}

fn bench_read_meta(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_meta");
    for (blob_pages, read_pages) in [(256u64, 16u64), (4096, 16), (4096, 1024)] {
        let (store, lineage, root) = seeded_store(blob_pages);
        let request = ByteRange::new(13 * 4096, read_pages * 4096);
        g.bench_function(format!("{read_pages}p_of_{blob_pages}p"), |b| {
            let reader = TreeReader::new(&store, &lineage);
            b.iter(|| black_box(read_meta(&reader, root, black_box(request), 4096).unwrap()))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args();
    bench_planners(&mut c);
    bench_build(&mut c);
    bench_read_meta(&mut c);
    c.final_summary();
}
