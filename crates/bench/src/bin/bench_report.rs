//! Emit a bench trajectory file.
//!
//! ```text
//! bench_report [--full] [--pr N] [--out PATH]
//! ```
//!
//! Runs the Figure 2(a) append bench and the DHT read micro-bench in
//! baseline and optimized configuration (see `blobseer_bench::report`)
//! and writes `BENCH_PR<N>.json` (`--pr` sets both the filename and
//! the JSON `"pr"` field in one place; `--out` overrides the path).
//! `--fast` (the default, kept as an explicit flag for CI readability)
//! finishes in seconds; `--full` uses larger sizes for manual runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use blobseer_bench::report::{
    degraded_read, dht_micro, elastic_rebalance, fig2a_append, hot_blob_snapshot, json_latency,
    json_pair, latency_percentiles, metrics_overhead_append, multi_tenant_isolation, orphan_scrub,
    pipeline_unit_label, pipelined_append, qos_overhead_append, repair_replicas_cost,
    snapshot_pinned_read, writer_crash_recovery, DhtCase, ReportParams, CRASH_EVERY,
};

/// Counts every heap allocation in the process, so the report can state
/// allocs-per-append for the baseline (per-page copies) vs the
/// zero-copy path. Relaxed: exactness across threads is not required.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let mut pr: u32 = 10;
    let mut out: Option<String> = None;
    let mut params = ReportParams::fast();
    let mut mode = "fast";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => {}
            "--full" => {
                params = ReportParams::full();
                mode = "full";
            }
            "--pr" => pr = args.next().expect("--pr needs a number").parse().expect("--pr number"),
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => {
                panic!("unknown argument {other:?} (expected --fast|--full|--pr N|--out PATH)")
            }
        }
    }
    let out = out.unwrap_or_else(|| format!("BENCH_PR{pr}.json"));
    let count_allocs = || ALLOCS.load(Ordering::Relaxed);

    eprintln!("# bench_report: fig2a append (baseline)...");
    let append_base = fig2a_append(&params, false, Some(&count_allocs));
    eprintln!("# bench_report: fig2a append (optimized)...");
    let append_opt = fig2a_append(&params, true, Some(&count_allocs));
    eprintln!("# bench_report: dht read-heavy (baseline)...");
    let read_base = dht_micro(&params, false, DhtCase::ReadHeavy);
    eprintln!("# bench_report: dht read-heavy (optimized)...");
    let read_opt = dht_micro(&params, true, DhtCase::ReadHeavy);
    eprintln!("# bench_report: dht read-mostly (baseline)...");
    let mostly_base = dht_micro(&params, false, DhtCase::ReadMostly);
    eprintln!("# bench_report: dht read-mostly (optimized)...");
    let mostly_opt = dht_micro(&params, true, DhtCase::ReadMostly);
    eprintln!("# bench_report: dht hot-root (baseline)...");
    let hot_base = dht_micro(&params, false, DhtCase::HotRoot);
    eprintln!("# bench_report: dht hot-root (optimized)...");
    let hot_opt = dht_micro(&params, true, DhtCase::HotRoot);
    eprintln!("# bench_report: snapshot-pinned read (baseline: flat facade)...");
    let pinned_base = snapshot_pinned_read(&params, false);
    eprintln!("# bench_report: snapshot-pinned read (optimized: Snapshot)...");
    let pinned_opt = snapshot_pinned_read(&params, true);
    eprintln!("# bench_report: hot-blob snapshot open (baseline: locked publication)...");
    let hot_snap_base = hot_blob_snapshot(&params, false);
    eprintln!("# bench_report: hot-blob snapshot open (optimized: seqlock cell)...");
    let hot_snap_opt = hot_blob_snapshot(&params, true);
    eprintln!("# bench_report: pipelined append (baseline: blocking)...");
    let pipe_base = pipelined_append(&params, false);
    eprintln!("# bench_report: pipelined append (optimized: depth-4 PendingWrite)...");
    let pipe_opt = pipelined_append(&params, true);
    eprintln!(
        "# bench_report: writer crash recovery (measured: 1-in-{CRASH_EVERY} writers die)..."
    );
    let crash_opt = writer_crash_recovery(&params);
    eprintln!("# bench_report: orphan scrub (crash-ingest, then mark-and-sweep)...");
    let (scrub_ingest, scrub) = orphan_scrub(&params);
    eprintln!("# bench_report: degraded read (baseline: healthy deployment)...");
    let degraded_base = degraded_read(&params, false);
    eprintln!("# bench_report: degraded read (measured: one provider dead)...");
    let degraded_meas = degraded_read(&params, true);
    eprintln!("# bench_report: repair_replicas (degraded ingest, then re-replication)...");
    let repair = repair_replicas_cost(&params);
    eprintln!("# bench_report: elastic rebalance (ingest under joins + concurrent drain)...");
    let elastic = elastic_rebalance(&params);
    eprintln!("# bench_report: metrics overhead (baseline: latency metrics off)...");
    let metrics_base = metrics_overhead_append(&params, false);
    eprintln!("# bench_report: metrics overhead (optimized: latency metrics on)...");
    let metrics_inst = metrics_overhead_append(&params, true);
    eprintln!("# bench_report: qos overhead (baseline: qos subsystem off)...");
    let qos_off = qos_overhead_append(&params, false);
    eprintln!("# bench_report: qos overhead (optimized: qos on, unlimited quotas)...");
    let qos_on = qos_overhead_append(&params, true);
    eprintln!("# bench_report: multi-tenant isolation (solo / shared / shared+qos)...");
    let isolation = multi_tenant_isolation(&params);
    eprintln!("# bench_report: latency percentiles (mixed instrumented workload)...");
    let tails = latency_percentiles(&params);

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    let methodology = format!(
        "Best-of-{reps} wall time per case, fixed sizes and LCG op streams. fig2a_append: \
         single client, {unit_mib} MiB appends to {total_mib} MiB at 64 KiB pages, 16 in-memory \
         providers, 4 io threads; baseline = per-page payload copies + one boxed pool job per \
         page (seed write path), optimized = refcounted Bytes::slice carving + chunked range \
         dispatch; both via append_bytes on a prebuilt buffer; allocs counted by a \
         process-global counting allocator around the winning rep's timed section (store \
         construction excluded). dht_micro: {threads} threads x {iters} ops on a \
         16-bucket DHT over 4096 keys (read_heavy: 80% get / 20% put; read_mostly: 97% get / \
         3% put; hot_root: all threads get one key); baseline = seed Mutex+Condvar bucket, \
         optimized = RwLock read path with per-key waiter-gated notify. On a single-core host \
         the DHT gain comes from uncontended puts skipping the condvar; multi-core hosts \
         additionally overlap readers on the shared guard. snapshot_pinned_read: {threads} \
         reader threads x {reads} total {read_kib} KiB sub-page reads (LCG offsets) of one \
         hot published {total_mib} MiB snapshot into reusable buffers; baseline = flat \
         read_into (per call, per thread: blob-registry read lock + blob-state mutex + \
         lineage clone), optimized = version-pinned Snapshot (VM consulted once at \
         construction, readers share the cached view). hot_blob_snapshot: {threads} threads \
         x {reads} total Blob::latest() opens of one hot published blob; baseline = the store \
         built with lockfree_publication(false), so every open resolves (version, size, root) \
         under the blob-registry read lock + blob-state mutex; optimized = the seqlock cell \
         (three atomic words, acquire/release fences, reader retry loop) — the optimized run \
         asserts VmStats::lockfree_reads covered every open, so the measured path provably \
         never touched the mutex. On a single-CPU container the opens time-slice instead of \
         contending, so the ratio prices only the lock's fixed per-op cost; multi-core hosts \
         additionally remove cross-core mutex/cacheline contention. pipelined_append: \
         {total_mib} MiB in {pipe_kib} KiB appends; baseline = blocking append_bytes, \
         optimized = append_pipelined with a depth-{depth} in-flight window (single-core \
         hosts understate the overlap: caller and completion stages time-slice one core). \
         writer_crash_recovery: the same depth-{depth} pipelined ingest, but the 'optimized' \
         side kills every {crash_every}th writer right after version assignment and recovers \
         through the production path (lease expiry + sweep aborts the hole, later versions \
         publish over it); baseline = the pipelined_append optimized run (the identical \
         failure-free ingest, measured once, not re-run); ops/bytes count \
         survivors only, so the ratio prices a 1-in-{crash_every} writer-death rate per byte \
         of useful published data (expected slightly below 1.0 - recovery overhead, not a \
         speedup). orphan_scrub: the same crashy ingest via the CrashyIngest driver \
         ({total_mib} MiB in {pipe_kib} KiB chunks, depth {depth}, every {crash_every}th \
         writer dies at a rotating CrashPoint and is lease-swept), then one scrub_orphans \
         pass; reported as absolute leak/reclaim numbers plus timings, not a ratio — the \
         claims measured are completeness (leaked_bytes_after_scrub must be 0; the run \
         asserts it and verifies content byte-for-byte) and cost (scrub_elapsed_s vs \
         ingest_elapsed_s: the background-maintenance tax of reclaiming a \
         1-in-{crash_every} death rate's garbage). degraded_read: {deg_reads} single-threaded \
         {read_kib} KiB sub-page reads (LCG offsets) of one hot {total_mib} MiB snapshot on a \
         16-provider replication-2 deployment; baseline = healthy, measured = one provider \
         offline, so every read of a page it was primary for pays one failed fetch before the \
         deterministic chain fallback serves it from the replica. On in-memory providers the \
         detour is an immediate typed error, so the ratio sits at ~1.0 (the case exists to \
         keep it there); a networked deployment pays a connect timeout in the same spot, \
         which is what blobseer_sim's degraded_read_experiment prices. \
         repair_replicas: the fig2a volume appended with one of 16 providers dead the whole \
         run (write-path failover re-places its copies; every append succeeds), provider \
         recovered, then one repair_replicas pass; reported as absolute numbers plus timings — \
         the claims measured are convergence (a second pass must be a no-op; the run asserts \
         it) and cost (repair_to_ingest, plus the re-replication rate in MB/s). \
         elastic_rebalance: {total_mib} MiB streamed in {pipe_kib} KiB depth-{depth} \
         pipelined appends onto a 16-provider replication-2 deployment while the membership \
         churns — two providers join at one third of the run and provider 0 starts draining \
         at two thirds, concurrent with the live writers; the run self-verifies (content \
         byte-identical, victim retired and physically empty, one rebalance pass converges \
         and a second is a no-op — all asserted) and reports absolute numbers plus timings: \
         drain_to_ingest (drain seconds vs. the overlapped ingest) and the migration rate \
         in MB/s. metrics_overhead_append: the fig2a \
         optimized append workload with latency histograms off (baseline) vs on (optimized — \
         the shipping default; two Instant::now calls, one coarse-clock fetch_max and one \
         relaxed histogram increment per op); the ratio prices the observability tax and \
         should sit at ~1.0. qos_overhead_append: the same workload without the QoS \
         subsystem (baseline) vs with Builder::qos on all-unlimited quotas (optimized - a \
         shared deployment throttling nobody: one registry lookup, one counter bump and the \
         dispatch-ticket indirection per update); the ratio prices the admission tax and must \
         stay >= 0.95. multi_tenant_isolation: quiet tenant appends {iso_ops} x \
         {iso_kib} KiB blocking, each timed individually, while a noisy tenant floods \
         depth-4 pipelined {pipe_kib} KiB appends from a second thread (capped at 512 ops): \
         solo, shared with QoS off, and shared with QoS capping the noisy tenant at \
         50 MB/s sustained (refusals back off 1 ms and retry); reported as quiet \
         p50/p99 per scenario plus p99-vs-solo ratios. On a single-core host the flood also \
         taxes the quiet thread through CPU time-slicing, which no admission control can \
         remove; the deterministic 2x isolation bound is asserted by blobseer_sim's \
         qos_isolation_experiment, and this case records what a real host shows. \
         percentiles: lifetime tail digests from stats_snapshot() after \
         a mixed instrumented workload ({total_mib} MiB appended half blocking / half \
         depth-{depth} pipelined in {pipe_kib} KiB chunks, then {pct_reads} pinned \
         {read_kib} KiB reads and 64 scatter reads); values are nanosecond bucket edges of \
         a base-2 log-linear histogram (relative error <= 1/128) — compare shapes across \
         runs, not absolute values across hosts. Ratios are the comparable quantity \
         across hosts.",
        pct_reads = params.pinned_reads / 10,
        deg_reads = params.pinned_reads / 20,
        reps = params.reps,
        unit_mib = params.append_unit >> 20,
        total_mib = params.append_total >> 20,
        threads = params.dht_threads,
        iters = params.dht_iters_per_thread,
        reads = params.pinned_reads,
        read_kib = params.pinned_read_bytes >> 10,
        pipe_kib = params.pipeline_unit >> 10,
        depth = params.pipeline_depth,
        crash_every = CRASH_EVERY,
        iso_ops = isolation.quiet_ops,
        iso_kib = isolation.quiet_unit >> 10,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {cpus}, \"os\": \"{}\" }},\n",
        std::env::consts::OS
    ));
    json.push_str(&format!("  \"methodology\": \"{methodology}\",\n"));
    json.push_str(&format!(
        "  \"fig2a_append_64k\": {{\n{}\n  }},\n",
        json_pair("    ", "append of 1 MiB", &append_base, &append_opt)
    ));
    json.push_str(&format!(
        "  \"dht_micro_read_heavy\": {{\n{}\n  }},\n",
        json_pair("    ", "kv op", &read_base, &read_opt)
    ));
    json.push_str(&format!(
        "  \"dht_micro_read_mostly\": {{\n{}\n  }},\n",
        json_pair("    ", "kv op", &mostly_base, &mostly_opt)
    ));
    json.push_str(&format!(
        "  \"dht_micro_hot_root\": {{\n{}\n  }},\n",
        json_pair("    ", "kv op", &hot_base, &hot_opt)
    ));
    json.push_str(&format!(
        "  \"snapshot_pinned_read\": {{\n{}\n  }},\n",
        json_pair(
            "    ",
            &format!("{} KiB sub-page read", params.pinned_read_bytes >> 10),
            &pinned_base,
            &pinned_opt
        )
    ));
    json.push_str(&format!(
        "  \"hot_blob_snapshot\": {{\n{}\n  }},\n",
        json_pair("    ", "latest() open", &hot_snap_base, &hot_snap_opt)
    ));
    json.push_str(&format!(
        "  \"pipelined_append\": {{\n{}\n  }},\n",
        json_pair("    ", &pipeline_unit_label(&params), &pipe_base, &pipe_opt)
    ));
    json.push_str(&format!(
        "  \"writer_crash_recovery\": {{\n{}\n  }},\n",
        // Baseline: the pipelined_append optimized run — byte-identical
        // failure-free ingest, measured once above.
        json_pair("    ", &pipeline_unit_label(&params), &pipe_opt, &crash_opt)
    ));
    json.push_str(&format!(
        "  \"orphan_scrub\": {{\n    \
           \"unit\": \"{unit}\",\n    \
           \"ingest\": {{ \"appends\": {appends}, \"crashed_writers\": {crashed}, \
             \"surviving_bytes\": {survived}, \"elapsed_s\": {ingest_s:.4} }},\n    \
           \"leak\": {{ \"stored_bytes_before_scrub\": {before}, \"leaked_pages\": {lpages}, \
             \"leaked_bytes\": {lbytes}, \"stored_bytes_after_scrub\": {after}, \
             \"leaked_bytes_after_scrub\": {lafter} }},\n    \
           \"scrub\": {{ \"elapsed_s\": {scrub_s:.4}, \"pages_marked\": {marked}, \
             \"pages_scanned\": {scanned}, \"reclaim_mb_per_s\": {reclaim_rate:.1}, \
             \"scrub_to_ingest\": {tax:.4} }}\n  }},\n",
        unit = pipeline_unit_label(&params),
        appends = scrub_ingest.appends,
        crashed = scrub_ingest.crashed,
        survived = scrub_ingest.bytes,
        ingest_s = scrub.ingest_elapsed.as_secs_f64(),
        before = scrub.stored_bytes_before,
        lpages = scrub.leaked_pages_before,
        lbytes = scrub.leaked_bytes_before,
        after = scrub.stored_bytes_after,
        lafter = scrub.leaked_bytes_after,
        scrub_s = scrub.scrub_elapsed.as_secs_f64(),
        marked = scrub.pages_marked,
        scanned = scrub.pages_scanned,
        reclaim_rate =
            scrub.leaked_bytes_before as f64 / 1e6 / scrub.scrub_elapsed.as_secs_f64().max(1e-9),
        tax = scrub.scrub_elapsed.as_secs_f64() / scrub.ingest_elapsed.as_secs_f64().max(1e-9),
    ));
    json.push_str(&format!(
        "  \"degraded_read\": {{\n{}\n  }},\n",
        // "optimized" = the degraded deployment: the ratio prices the
        // read-side cost of one dead provider (expected <= 1.0).
        json_pair(
            "    ",
            &format!("{} KiB sub-page read", params.pinned_read_bytes >> 10),
            &degraded_base,
            &degraded_meas
        )
    ));
    json.push_str(&format!(
        "  \"repair_replicas\": {{\n    \
           \"unit\": \"append of {unit_mib} MiB, one of 16 providers dead\",\n    \
           \"degraded_ingest\": {{ \"appends\": {appends}, \"bytes\": {ibytes}, \
             \"failovers\": {failovers}, \"elapsed_s\": {ingest_s:.4} }},\n    \
           \"repair\": {{ \"elapsed_s\": {repair_s:.4}, \"pages_examined\": {examined}, \
             \"copies_verified\": {verified}, \"copies_repaired\": {repaired}, \
             \"bytes_copied\": {rbytes}, \"strays_trimmed\": {strays}, \
             \"rereplication_mb_per_s\": {rate:.1}, \"repair_to_ingest\": {tax:.4} }}\n  }},\n",
        unit_mib = params.append_unit >> 20,
        appends = repair.appends,
        ibytes = repair.ingest_bytes,
        failovers = repair.failovers,
        ingest_s = repair.ingest_elapsed.as_secs_f64(),
        repair_s = repair.repair_elapsed.as_secs_f64(),
        examined = repair.report.pages_examined,
        verified = repair.report.copies_verified,
        repaired = repair.report.copies_repaired,
        rbytes = repair.report.bytes_copied,
        strays = repair.report.strays_trimmed,
        rate =
            repair.report.bytes_copied as f64 / 1e6 / repair.repair_elapsed.as_secs_f64().max(1e-9),
        tax = repair.repair_elapsed.as_secs_f64() / repair.ingest_elapsed.as_secs_f64().max(1e-9),
    ));
    json.push_str(&format!(
        "  \"elastic_rebalance\": {{\n    \
           \"unit\": \"{unit}, two joins + one concurrent drain\",\n    \
           \"ingest\": {{ \"appends\": {appends}, \"bytes\": {ibytes}, \
             \"joined\": {joined}, \"elapsed_s\": {ingest_s:.4} }},\n    \
           \"drain\": {{ \"elapsed_s\": {drain_s:.4}, \"pages_evacuated\": {evac}, \
             \"bytes_evacuated\": {ebytes}, \"copies_filled\": {filled}, \
             \"bytes_copied\": {cbytes}, \"rounds\": {rounds}, \
             \"migration_mb_per_s\": {rate:.1}, \"drain_to_ingest\": {tax:.4} }},\n    \
           \"rebalance\": {{ \"elapsed_s\": {reb_s:.4}, \"copies_moved\": {reb_copies} }}\n  }},\n",
        unit = pipeline_unit_label(&params),
        appends = elastic.appends,
        ibytes = elastic.ingest_bytes,
        joined = elastic.joined,
        ingest_s = elastic.ingest_elapsed.as_secs_f64(),
        drain_s = elastic.drain_elapsed.as_secs_f64(),
        evac = elastic.drain.pages_evacuated,
        ebytes = elastic.drain.bytes_evacuated,
        filled = elastic.drain.copies_filled,
        cbytes = elastic.drain.bytes_copied,
        rounds = elastic.drain.rounds,
        rate = elastic.drain.bytes_evacuated as f64
            / 1e6
            / elastic.drain_elapsed.as_secs_f64().max(1e-9),
        tax = elastic.drain_elapsed.as_secs_f64() / elastic.ingest_elapsed.as_secs_f64().max(1e-9),
        reb_s = elastic.rebalance_elapsed.as_secs_f64(),
        reb_copies = elastic.rebalance_copies,
    ));
    json.push_str(&format!(
        "  \"metrics_overhead_append\": {{\n{}\n  }},\n",
        // "optimized" = instrumented (the shipping default): the ratio
        // prices the observability tax and should sit at ~1.0.
        json_pair("    ", "append of 1 MiB", &metrics_base, &metrics_inst)
    ));
    json.push_str(&format!(
        "  \"qos_overhead_append\": {{\n{}\n  }},\n",
        // "optimized" = QoS enabled on unlimited quotas (the shared-
        // deployment shape): the ratio prices the admission tax and
        // must stay >= 0.95.
        json_pair("    ", "append of 1 MiB", &qos_off, &qos_on)
    ));
    json.push_str(&format!(
        "  \"multi_tenant_isolation\": {{\n    \
           \"unit\": \"{iso_kib} KiB quiet append, noisy flood of {pipe_kib} KiB pipelined appends\",\n    \
           \"quiet_ops\": {ops},\n    \
           \"solo\": {{ \"p50_us\": {solo_p50:.1}, \"p99_us\": {solo_p99:.1} }},\n    \
           \"shared_qos_off\": {{ \"p50_us\": {fifo_p50:.1}, \"p99_us\": {fifo_p99:.1}, \
             \"noisy_appends\": {fifo_noisy} }},\n    \
           \"shared_qos_on\": {{ \"p50_us\": {qos_p50:.1}, \"p99_us\": {qos_p99:.1}, \
             \"noisy_appends\": {qos_noisy}, \"noisy_throttled\": {throttled} }},\n    \
           \"quiet_p99_vs_solo\": {{ \"qos_off\": {fifo_ratio:.3}, \"qos_on\": {qos_ratio:.3} }}\n  }},\n",
        iso_kib = isolation.quiet_unit >> 10,
        pipe_kib = params.pipeline_unit >> 10,
        ops = isolation.quiet_ops,
        solo_p50 = isolation.solo_p50.as_secs_f64() * 1e6,
        solo_p99 = isolation.solo_p99.as_secs_f64() * 1e6,
        fifo_p50 = isolation.fifo_p50.as_secs_f64() * 1e6,
        fifo_p99 = isolation.fifo_p99.as_secs_f64() * 1e6,
        fifo_noisy = isolation.fifo_noisy_appends,
        qos_p50 = isolation.qos_p50.as_secs_f64() * 1e6,
        qos_p99 = isolation.qos_p99.as_secs_f64() * 1e6,
        qos_noisy = isolation.qos_noisy_appends,
        throttled = isolation.qos_noisy_throttled,
        fifo_ratio = isolation.fifo_p99.as_secs_f64() / isolation.solo_p99.as_secs_f64().max(1e-12),
        qos_ratio = isolation.qos_p99.as_secs_f64() / isolation.solo_p99.as_secs_f64().max(1e-12),
    ));
    json.push_str(&format!(
        "  \"percentiles\": {{\n    \
           \"unit\": \"nanoseconds, lifetime nearest-rank bucket edges (error <= 1/128)\",\n    \
           {},\n    {},\n    {},\n    {},\n    {}\n  }}\n}}\n",
        json_latency("append", &tails.append),
        json_latency("read", &tails.read),
        json_latency("read_scatter", &tails.read_scatter),
        json_latency("write_prepare", &tails.write_prepare),
        json_latency("dht_get_wait", &tails.dht_get_wait),
    ));

    std::fs::write(&out, &json).expect("write report");
    print!("{json}");
    eprintln!("# wrote {out}");
}
