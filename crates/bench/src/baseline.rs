//! Frozen pre-PR2 reference implementations, kept so the trajectory
//! harness can measure optimized code against the seed design on the
//! same hardware in the same process.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use blobseer_dht::static_bucket;
use parking_lot::{Condvar, Mutex};

struct Bucket<K, V> {
    map: Mutex<HashMap<K, V>>,
    cv: Condvar,
    // The seed recorded per-bucket stats as relaxed atomics (unpadded,
    // adjacent to the lock). Kept so the A/B pays identical
    // bookkeeping costs on both sides and isolates the locking change.
    gets: AtomicU64,
    puts: AtomicU64,
    waits: AtomicU64,
}

/// The seed's DHT bucket design: every operation — including the hot
/// read path — serializes on the bucket `Mutex`, and every `put` calls
/// `notify_all` whether or not anyone is waiting. This is the baseline
/// that `blobseer_dht::Dht`'s read-optimized buckets are measured
/// against in `BENCH_PR2.json`.
pub struct MutexDht<K, V> {
    buckets: Vec<Bucket<K, V>>,
}

impl<K, V> MutexDht<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    /// Create a DHT spread over `buckets` metadata providers.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0);
        MutexDht {
            buckets: (0..buckets)
                .map(|_| Bucket {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                    gets: AtomicU64::new(0),
                    puts: AtomicU64::new(0),
                    waits: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn bucket(&self, key: &K) -> &Bucket<K, V> {
        &self.buckets[static_bucket(key, self.buckets.len())]
    }

    /// Seed `put`: exclusive lock + unconditional wakeup.
    pub fn put(&self, key: K, value: V) {
        let b = self.bucket(&key);
        b.puts.fetch_add(1, Ordering::Relaxed);
        let mut map = b.map.lock();
        map.insert(key, value);
        b.cv.notify_all();
    }

    /// Seed `get`: serializes on the bucket mutex.
    pub fn get(&self, key: &K) -> Option<V> {
        let b = self.bucket(key);
        b.gets.fetch_add(1, Ordering::Relaxed);
        b.map.lock().get(key).cloned()
    }

    /// Seed `get_wait`: mutex + condvar loop (one recorded wait per
    /// wakeup — the miscount PR 2 fixes in the real implementation).
    pub fn get_wait(&self, key: &K, timeout: Duration) -> Option<V> {
        let b = self.bucket(key);
        b.gets.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + timeout;
        let mut map = b.map.lock();
        loop {
            if let Some(v) = map.get(key) {
                return Some(v.clone());
            }
            b.waits.fetch_add(1, Ordering::Relaxed);
            if b.cv.wait_until(&mut map, deadline).timed_out() {
                return map.get(key).cloned();
            }
        }
    }
}
