//! The trajectory harness: fast, deterministic measurements of the
//! paper-critical hot paths, each as a baseline-vs-optimized pair.
//!
//! * **fig2a_append** — Figure 2(a)'s workload on the *real engine*: a
//!   single client appends fixed-size units to a growing blob at 64 KiB
//!   pages. Baseline = the seed write path (per-page payload copies,
//!   one boxed pool job per page); optimized = zero-copy `Bytes::slice`
//!   carving + chunked range dispatch. Both modes drive
//!   `append_bytes` with the same prebuilt buffer, so the A/B isolates
//!   exactly the PR-2 changes.
//! * **dht_micro** — Figure 2(b)'s metadata hotspot in isolation:
//!   read-dominated key/value traffic against one DHT (see [`DhtCase`]
//!   for the three shapes). Baseline = the seed's Mutex bucket (frozen
//!   in [`crate::baseline`]); optimized = `blobseer_dht::Dht`'s RwLock
//!   read path with waiter-gated notify. On a single-core host the
//!   measured gain is dominated by uncontended puts skipping the
//!   condvar; multi-core hosts additionally overlap readers on the
//!   shared guard.
//! * **snapshot_pinned_read** — the PR-3 handle API's read hot path:
//!   repeated single-page reads of one published snapshot through a
//!   reusable buffer. Baseline = the flat facade (`read_into`), which
//!   resolves the version-manager view — blob lock, size/root lookup,
//!   lineage clone — on *every* call; optimized = a pinned
//!   [`blobseer::Snapshot`], which resolved it once at construction.
//! * **hot_blob_snapshot** — the PR-10 wait-free publication A/B:
//!   `dht_threads` threads opening `Blob::latest()` on one hot blob.
//!   Baseline = the store built with `lockfree_publication(false)`, so
//!   every open takes the blob-registry read lock and the blob-state
//!   mutex; optimized = the seqlock cell (three atomic words, no lock).
//!   The optimized side additionally asserts `VmStats::lockfree_reads`
//!   covered every open — the bench cannot silently fall back to the
//!   locked path. Single-core hosts understate the win (there is no
//!   cross-core mutex contention to remove, only the lock's fixed cost).
//! * **pipelined_append** — blocking `append_bytes` vs depth-4
//!   `append_pipelined` on the same prebuilt buffer: the caller thread
//!   overlaps the next append's page stores with the engine pool's
//!   metadata work for lower versions. Single-core hosts understate
//!   the overlap (stages time-slice instead of running concurrently).
//!
//! Runs are deterministic: fixed sizes, fixed thread counts, fixed LCG
//! key streams, best-of-N timing. Numbers are still hardware-dependent
//! — trajectory files record ratios, not absolute SLOs.

use std::time::{Duration, Instant};

use blobseer::{BlobSeer, Bytes};
use blobseer_dht::Dht;

use crate::baseline::MutexDht;

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Logical operations completed (appends, or kv ops).
    pub ops: u64,
    /// Payload bytes moved (0 when not meaningful).
    pub bytes: u64,
    /// Best-of-N wall time.
    pub elapsed: Duration,
    /// Boxed pool jobs dispatched (engine runs only).
    pub io_jobs: Option<u64>,
    /// Heap allocations during the run (filled in by `bench_report`'s
    /// counting allocator; `None` when not measured).
    pub allocs: Option<u64>,
}

impl RunStats {
    /// Operations per second.
    pub fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    /// Payload megabytes (1e6) per second.
    pub fn mbps(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Mean allocations per operation, when measured.
    pub fn allocs_per_op(&self) -> Option<f64> {
        self.allocs.map(|a| a as f64 / self.ops as f64)
    }
}

/// Workload sizes; `fast()` is the CI smoke mode.
#[derive(Clone, Copy, Debug)]
pub struct ReportParams {
    /// Page size for the append bench.
    pub page_size: u64,
    /// Bytes per append call.
    pub append_unit: usize,
    /// Total bytes appended per timed run.
    pub append_total: usize,
    /// Timed repetitions (best-of).
    pub reps: usize,
    /// Threads for the DHT cases.
    pub dht_threads: usize,
    /// Ops per thread for the DHT cases.
    pub dht_iters_per_thread: u64,
    /// Reads per timed run of the snapshot-pinned case.
    pub pinned_reads: u64,
    /// Bytes per read of the snapshot-pinned case (sub-page: the
    /// small-object serving shape, where per-call control-plane cost
    /// is a real share of the op).
    pub pinned_read_bytes: u64,
    /// In-flight window of the pipelined append case.
    pub pipeline_depth: usize,
    /// Bytes per append of the pipelined case.
    pub pipeline_unit: usize,
}

impl ReportParams {
    /// Fast deterministic mode: finishes in a few seconds on CI-class
    /// hardware while keeping each timed section well above timer noise.
    pub fn fast() -> Self {
        ReportParams {
            page_size: 64 * 1024,
            append_unit: 1 << 20,
            append_total: 48 << 20,
            reps: 3,
            dht_threads: 8,
            dht_iters_per_thread: 200_000,
            pinned_reads: 200_000,
            pinned_read_bytes: 4096,
            pipeline_depth: 4,
            pipeline_unit: 256 * 1024,
        }
    }

    /// Larger sizes for manual runs.
    pub fn full() -> Self {
        ReportParams {
            append_total: 256 << 20,
            reps: 5,
            dht_iters_per_thread: 1_000_000,
            pinned_reads: 1_000_000,
            ..Self::fast()
        }
    }
}

fn build_store(p: &ReportParams, optimized: bool) -> BlobSeer {
    BlobSeer::builder()
        .page_size(p.page_size)
        .data_providers(16)
        .metadata_providers(16)
        .io_threads(4)
        .zero_copy_pages(optimized)
        .io_chunks_per_thread(usize::from(optimized))
        .build()
        .expect("valid bench config")
}

/// Figure 2(a) workload on the real engine; see module docs.
///
/// `alloc_count`, when given, is sampled immediately around each rep's
/// timed section (store construction excluded) and the count of the
/// *winning* rep is reported — so `allocs_per_op` is a true per-append
/// figure, independent of `reps`.
pub fn fig2a_append(
    p: &ReportParams,
    optimized: bool,
    alloc_count: Option<&dyn Fn() -> u64>,
) -> RunStats {
    let unit: Bytes = Bytes::from((0..p.append_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.append_unit) as u64;

    let mut best = Duration::MAX;
    let mut io_jobs = 0u64;
    let mut allocs = None;
    for _ in 0..p.reps {
        let store = build_store(p, optimized);
        let blob = store.create();
        let jobs_before = store.stats().io_jobs_dispatched;
        let allocs_before = alloc_count.map(|f| f());
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..appends {
            last = Some(blob.append_bytes(unit.clone()).expect("append"));
        }
        blob.sync(last.expect("at least one append")).expect("sync");
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
            io_jobs = store.stats().io_jobs_dispatched - jobs_before;
            allocs = alloc_count.zip(allocs_before).map(|(f, before)| f() - before);
        }
    }
    RunStats {
        ops: appends,
        bytes: p.append_total as u64,
        elapsed: best,
        io_jobs: Some(io_jobs),
        allocs,
    }
}

/// The PR-3 snapshot-pinned read case; see module docs. The paper's
/// hot-snapshot regime: `dht_threads` reader threads hammer one
/// published snapshot with sub-page reads into reusable buffers. Both
/// sides run the identical loop — the A/B isolates the per-call
/// version-manager resolution (blob-registry read lock, blob-state
/// mutex, lineage clone) that every flat read pays *per call, per
/// thread* and that a pinned `Snapshot` resolved once.
pub fn snapshot_pinned_read(p: &ReportParams, optimized: bool) -> RunStats {
    let store = build_store(p, true);
    let blob = store.create();
    let unit: Bytes = Bytes::from(vec![0xA5u8; p.append_unit]);
    let mut last = None;
    for _ in 0..(p.append_total / p.append_unit) {
        last = Some(blob.append_bytes(unit.clone()).expect("append"));
    }
    let v = last.expect("at least one append");
    blob.sync(v).expect("sync");
    let slots = p.append_total as u64 / p.pinned_read_bytes;
    let snap = blob.snapshot(v).expect("published");
    let id = blob.id();

    let per_thread = p.pinned_reads / p.dht_threads as u64;
    let mut best = Duration::MAX;
    for _ in 0..p.reps {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..p.dht_threads as u64 {
                let (store, snap) = (store.clone(), snap.clone());
                s.spawn(move || {
                    let mut buf = vec![0u8; p.pinned_read_bytes as usize];
                    let mut x = 0x2545F4914F6CDD1Du64.wrapping_mul(t + 1);
                    for _ in 0..per_thread {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let offset = ((x >> 33) % slots) * p.pinned_read_bytes;
                        if optimized {
                            snap.read_into(offset, &mut buf).expect("read");
                        } else {
                            store.read_into(id, v, offset, &mut buf).expect("read");
                        }
                    }
                    std::hint::black_box(&buf);
                });
            }
        });
        best = best.min(t0.elapsed());
    }
    RunStats {
        ops: per_thread * p.dht_threads as u64,
        bytes: per_thread * p.dht_threads as u64 * p.pinned_read_bytes,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// The PR-10 hot-blob snapshot-open case; see module docs. Both sides
/// run the identical `Blob::latest()` loop; the knob flips only the
/// version-manager read path, so the A/B isolates the seqlock against
/// the registry-lock + blob-mutex resolution it replaces.
pub fn hot_blob_snapshot(p: &ReportParams, lockfree: bool) -> RunStats {
    let store = BlobSeer::builder()
        .page_size(p.page_size)
        .data_providers(16)
        .metadata_providers(16)
        .io_threads(4)
        .zero_copy_pages(true)
        .io_chunks_per_thread(1)
        .lockfree_publication(lockfree)
        .build()
        .expect("valid bench config");
    let blob = store.create();
    let unit: Bytes = Bytes::from(vec![0x5Au8; p.append_unit]);
    let mut last = None;
    for _ in 0..8 {
        last = Some(blob.append_bytes(unit.clone()).expect("append"));
    }
    let v = last.expect("at least one append");
    blob.sync(v).expect("sync");

    let per_thread = p.pinned_reads / p.dht_threads as u64;
    let served_before = store.stats().vm.lockfree_reads;
    let mut best = Duration::MAX;
    for _ in 0..p.reps {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..p.dht_threads {
                let blob = &blob;
                s.spawn(move || {
                    for _ in 0..per_thread {
                        let snap = blob.latest().expect("latest");
                        debug_assert_eq!(snap.version(), v);
                        std::hint::black_box(snap.len());
                    }
                });
            }
        });
        best = best.min(t0.elapsed());
    }
    let total_opens = per_thread * p.dht_threads as u64 * p.reps as u64;
    if lockfree {
        let served = store.stats().vm.lockfree_reads - served_before;
        assert!(
            served >= total_opens,
            "hot path fell back to the mutex: {served} lock-free reads for {total_opens} opens"
        );
    }
    RunStats {
        ops: per_thread * p.dht_threads as u64,
        bytes: 0,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// The PR-3 pipelined append case; see module docs. Baseline = blocking
/// `append_bytes`; optimized = `append_pipelined` with a depth-bounded
/// in-flight window. Same prebuilt buffer and total volume as
/// [`fig2a_append`]'s optimized side.
pub fn pipelined_append(p: &ReportParams, optimized: bool) -> RunStats {
    use std::collections::VecDeque;

    let unit: Bytes =
        Bytes::from((0..p.pipeline_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.pipeline_unit) as u64;

    let mut best = Duration::MAX;
    for _ in 0..p.reps {
        let store = build_store(p, true);
        let blob = store.create();
        let t0 = Instant::now();
        let mut last = blobseer::Version(0);
        if optimized {
            let mut inflight = VecDeque::with_capacity(p.pipeline_depth);
            for _ in 0..appends {
                inflight.push_back(blob.append_pipelined(unit.clone()).expect("append"));
                if inflight.len() == p.pipeline_depth {
                    let oldest: blobseer::PendingWrite = inflight.pop_front().expect("non-empty");
                    last = last.max(oldest.wait().expect("complete"));
                }
            }
            for pending in inflight {
                last = last.max(pending.wait().expect("complete"));
            }
        } else {
            for _ in 0..appends {
                last = blob.append_bytes(unit.clone()).expect("append");
            }
        }
        blob.sync(last).expect("sync");
        best = best.min(t0.elapsed());
    }
    RunStats {
        ops: appends,
        bytes: p.append_total as u64,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// Unit of [`pipelined_append`]'s work, for report labels.
pub fn pipeline_unit_label(p: &ReportParams) -> String {
    format!("append of {} KiB", p.pipeline_unit >> 10)
}

/// Appends between injected writer deaths in [`writer_crash_recovery`].
pub const CRASH_EVERY: u64 = 8;

/// The PR-4 writer-fault-tolerance case: the same depth-bounded
/// pipelined ingest as [`pipelined_append`]'s optimized side, but
/// every [`CRASH_EVERY`]-th writer dies right after version assignment
/// and the deployment recovers through the production path — lease
/// expiry plus a sweep that aborts the hole — before ingest continues.
/// The report pairs this against `pipelined_append(p, true)` (the
/// identical failure-free ingest) rather than re-running it.
/// `ops`/`bytes` count **survivors only**, so the ratio prices what a
/// 12.5% writer-death rate costs per byte of *useful* published data
/// (abort repair, sweep scans, and the lost appends' fixed overhead).
pub fn writer_crash_recovery(p: &ReportParams) -> RunStats {
    use std::collections::VecDeque;

    let unit: Bytes =
        Bytes::from((0..p.pipeline_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.pipeline_unit) as u64;

    let mut best = Duration::MAX;
    let mut survivors = 0u64;
    for _ in 0..p.reps {
        let store = build_store(p, true);
        let blob = store.create();
        let ttl = store.config().lease_ttl_ticks;
        let t0 = Instant::now();
        let mut last = blobseer::Version(0);
        let mut inflight = VecDeque::with_capacity(p.pipeline_depth);
        let mut ok = 0u64;
        for i in 1..=appends {
            if i.is_multiple_of(CRASH_EVERY) {
                // Failure epoch: quiesce, die mid-update, recover via
                // lease expiry + sweep.
                for pending in inflight.drain(..) {
                    let pending: blobseer::PendingWrite = pending;
                    last = last.max(pending.wait().expect("complete"));
                }
                blob.crash_append(unit.clone(), blobseer::CrashPoint::AfterPrepare)
                    .expect("crash injection");
                store.advance_lease_clock(ttl + 1);
                store.sweep_expired_leases();
            } else {
                inflight.push_back(blob.append_pipelined(unit.clone()).expect("append"));
                ok += 1;
                if inflight.len() == p.pipeline_depth {
                    let oldest: blobseer::PendingWrite = inflight.pop_front().expect("non-empty");
                    last = last.max(oldest.wait().expect("complete"));
                }
            }
        }
        for pending in inflight {
            last = last.max(pending.wait().expect("complete"));
        }
        if last > blobseer::Version(0) {
            blob.sync(last).expect("sync");
        }
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
            survivors = ok;
        }
    }
    RunStats {
        ops: survivors,
        bytes: survivors * p.pipeline_unit as u64,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// The PR-5 orphan-scrub trajectory: a crash-injected pipelined ingest
/// (every [`CRASH_EVERY`]-th writer dies at a rotating `CrashPoint`,
/// recovered through lease expiry + sweep — the exact
/// [`blobseer_workloads::CrashyIngest`] driver), then a full
/// [`blobseer::BlobSeer::scrub_orphans`] pass. Reported as absolute
/// leak/reclaim numbers plus timings rather than a baseline/optimized
/// ratio: the interesting quantities are *leaked bytes before vs.
/// after* (completeness — after must be 0) and *scrub seconds vs.
/// ingest seconds* (the maintenance tax).
pub fn orphan_scrub(
    p: &ReportParams,
) -> (blobseer_workloads::CrashReport, blobseer_workloads::ScrubTrajectory) {
    let store = build_store(p, true);
    let blob = store.create();
    // Fixed-size chunks (the pipelined unit) keep the run deterministic
    // and the per-crash leak a constant number of pages.
    let mut stream =
        blobseer_workloads::AppendStream::new(0x5eed_b10b, p.pipeline_unit, p.pipeline_unit);
    let appends = (p.append_total / p.pipeline_unit) as u64;
    let ingest = blobseer_workloads::CrashyIngest::new(p.pipeline_depth, CRASH_EVERY);
    let (report, trajectory) =
        ingest.run_then_scrub(&store, &blob, &mut stream, appends).expect("crashy ingest + scrub");
    // The run self-verifies: content intact, leak fully reclaimed.
    let snap = blob.snapshot(report.last).expect("published snapshot");
    blobseer_workloads::CrashyIngest::verify(&snap, 0x5eed_b10b, &report).expect("content intact");
    assert_eq!(trajectory.leaked_bytes_after, 0, "scrub must reclaim the whole leak");
    (report, trajectory)
}

/// A replicated deployment behind caller-held [`blobseer::FaultPlan`]s
/// for the PR-7 fault-tolerance cases: 16 in-memory providers,
/// replication 2, the optimized write path.
fn build_faulty_store(p: &ReportParams) -> (BlobSeer, Vec<std::sync::Arc<blobseer::FaultPlan>>) {
    use std::sync::Arc;

    use blobseer::{FaultPlan, MemoryPageStore, PageStore};

    let plans: Vec<Arc<FaultPlan>> = (0..16)
        .map(|i| Arc::new(FaultPlan::with_seed(Arc::new(MemoryPageStore::new()), i as u64)))
        .collect();
    let store = BlobSeer::builder()
        .page_size(p.page_size)
        .metadata_providers(16)
        .io_threads(4)
        .replication(2)
        .zero_copy_pages(true)
        .io_chunks_per_thread(1)
        .page_stores(plans.iter().map(|pl| Arc::clone(pl) as Arc<dyn PageStore>).collect())
        .build()
        .expect("valid bench config");
    (store, plans)
}

/// The PR-7 degraded-read case: sub-page reads of one hot snapshot on
/// a replication-2 deployment, healthy (baseline) vs with one data
/// provider dead (measured). A dead primary costs the reader one
/// failed fetch before the deterministic chain fallback serves the
/// page from the replica — the ratio prices exactly that detour. On
/// in-memory providers the detour is an immediate typed error, so the
/// ratio sits at ~1.0 (this case exists to keep it there); a networked
/// deployment would pay a connect timeout in the same spot, which is
/// what `blobseer_sim::degraded_read_experiment` prices.
pub fn degraded_read(p: &ReportParams, degraded: bool) -> RunStats {
    let (store, plans) = build_faulty_store(p);
    let blob = store.create();
    let unit: Bytes = Bytes::from(vec![0x5Au8; p.append_unit]);
    let mut last = None;
    for _ in 0..(p.append_total / p.append_unit) {
        last = Some(blob.append_bytes(unit.clone()).expect("append"));
    }
    let v = last.expect("at least one append");
    blob.sync(v).expect("sync");
    if degraded {
        plans[0].set_offline(true);
    }
    let snap = blob.snapshot(v).expect("published");
    let slots = p.append_total as u64 / p.pinned_read_bytes;
    // Single-threaded and page-fetch-bound (~100 µs/read): a modest
    // count keeps the case seconds-scale while staying far above timer
    // noise.
    let reads = p.pinned_reads / 20;

    let mut best = Duration::MAX;
    for _ in 0..p.reps {
        let mut buf = vec![0u8; p.pinned_read_bytes as usize];
        let mut x = 0x2545F4914F6CDD1Du64;
        let t0 = Instant::now();
        for _ in 0..reads {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let offset = ((x >> 33) % slots) * p.pinned_read_bytes;
            snap.read_into(offset, &mut buf).expect("read");
        }
        std::hint::black_box(&buf);
        best = best.min(t0.elapsed());
    }
    RunStats {
        ops: reads,
        bytes: reads * p.pinned_read_bytes,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// One measured [`blobseer::BlobSeer::repair_replicas`] trajectory.
#[derive(Clone, Copy, Debug)]
pub struct RepairTrajectory {
    /// Appends issued while one provider was dead (all succeeded).
    pub appends: u64,
    /// Payload bytes of that degraded ingest.
    pub ingest_bytes: u64,
    /// Write-path failovers the dead provider forced.
    pub failovers: u64,
    /// Wall time of the degraded ingest.
    pub ingest_elapsed: Duration,
    /// What the (first) repair pass found and fixed.
    pub report: blobseer::RepairReport,
    /// Wall time of that pass (mark + scan + diff/copy + trim).
    pub repair_elapsed: Duration,
}

/// The PR-7 repair-cost case: ingest the [`fig2a_append`] volume with
/// one of 16 providers dead the whole run (every chain through it
/// fails over — updates keep succeeding), recover the provider, then
/// run one [`blobseer::BlobSeer::repair_replicas`] pass. Reported as
/// absolute numbers plus timings, like [`orphan_scrub`]: the claims
/// measured are convergence (a second pass must be a no-op; the run
/// asserts it) and cost (repair seconds vs. the ingest it mops up
/// after, and the re-replication rate in MB/s).
pub fn repair_replicas_cost(p: &ReportParams) -> RepairTrajectory {
    let (store, plans) = build_faulty_store(p);
    let blob = store.create();
    let unit: Bytes = Bytes::from((0..p.append_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.append_unit) as u64;

    plans[0].set_offline(true);
    let t0 = Instant::now();
    let mut last = None;
    for _ in 0..appends {
        last = Some(blob.append_bytes(unit.clone()).expect("append survives the dead provider"));
    }
    blob.sync(last.expect("at least one append")).expect("sync");
    let ingest_elapsed = t0.elapsed();
    let failovers = store.stats_snapshot().failovers_total;
    assert!(failovers > 0, "a dead chain member must force failovers");

    plans[0].set_offline(false);
    let t1 = Instant::now();
    let report = store.repair_replicas().expect("repair");
    let repair_elapsed = t1.elapsed();
    assert_eq!(report.pages_unrepairable, 0, "single-fault ingest must stay repairable");

    // The run self-verifies: a second pass finds nothing to do.
    let second = store.repair_replicas().expect("second repair");
    assert_eq!(second.copies_repaired, 0, "repair must converge");
    assert_eq!(second.strays_trimmed, 0, "repair must converge");

    RepairTrajectory {
        appends,
        ingest_bytes: p.append_total as u64,
        failovers,
        ingest_elapsed,
        report,
        repair_elapsed,
    }
}

/// One measured elastic-membership trajectory
/// ([`blobseer_workloads::ElasticIngest`]).
#[derive(Clone, Debug)]
pub struct ElasticTrajectory {
    /// Pipelined appends issued across the membership churn.
    pub appends: u64,
    /// Payload bytes of that ingest.
    pub ingest_bytes: u64,
    /// Providers joined mid-ingest.
    pub joined: usize,
    /// Wall time of the whole ingest (the drain overlaps it).
    pub ingest_elapsed: Duration,
    /// What the concurrent drain migrated off the victim.
    pub drain: blobseer::DrainReport,
    /// Wall time of the drain, measured on its own thread.
    pub drain_elapsed: Duration,
    /// Copies the post-churn rebalance pass moved onto the newcomers.
    pub rebalance_copies: u64,
    /// Wall time of that rebalance pass.
    pub rebalance_elapsed: Duration,
}

/// The PR-9 elastic-membership case: the [`pipelined_append`] volume
/// streamed onto a replication-2 deployment of 16 in-memory providers
/// while the provider set changes underneath it — two providers join
/// at one third of the run, and provider 0 starts draining at two
/// thirds, concurrent with the live writers. The driver
/// ([`blobseer_workloads::ElasticIngest`]) self-verifies content,
/// retirement and rebalance convergence; this case additionally proves
/// the victim's store is physically empty and reports the costs: drain
/// seconds vs. the ingest it overlapped, and the migration rate in
/// MB/s.
pub fn elastic_rebalance(p: &ReportParams) -> ElasticTrajectory {
    use std::sync::Arc;

    use blobseer::{MemoryPageStore, PageStore, ProviderId};

    let handles: Vec<Arc<MemoryPageStore>> =
        (0..16).map(|_| Arc::new(MemoryPageStore::new())).collect();
    let store = BlobSeer::builder()
        .page_size(p.page_size)
        .metadata_providers(16)
        .io_threads(4)
        .replication(2)
        .zero_copy_pages(true)
        .io_chunks_per_thread(1)
        .page_stores(handles.iter().map(|h| Arc::clone(h) as Arc<dyn PageStore>).collect())
        .build()
        .expect("valid bench config");

    let appends = (p.append_total / p.pipeline_unit) as u64;
    let mut stream =
        blobseer_workloads::AppendStream::new(0x0e1a_57ec, p.pipeline_unit, p.pipeline_unit);
    let report = blobseer_workloads::ElasticIngest::new(p.pipeline_depth, 2)
        .run(&store, &mut stream, appends, ProviderId(0))
        .expect("elastic ingest");

    // The driver proved the logical invariants; the bench holds the
    // physical stores too, so prove the victim is byte-empty.
    assert_eq!(handles[0].page_count(), 0, "drained provider must hold nothing");
    assert_eq!(handles[0].stored_bytes(), 0, "drained provider must hold nothing");

    ElasticTrajectory {
        appends: report.appends,
        ingest_bytes: report.bytes,
        joined: report.joined.len(),
        ingest_elapsed: report.ingest_elapsed,
        drain: report.drain,
        drain_elapsed: report.drain_elapsed,
        rebalance_copies: report.rebalance_copies,
        rebalance_elapsed: report.rebalance_elapsed,
    }
}

/// The PR-6 observability-tax case: the exact [`fig2a_append`]
/// optimized workload, run with latency metrics off (baseline) vs on
/// (optimized — the shipping default). The instrumented side pays two
/// `Instant::now` calls, one coarse-clock `fetch_max` and one relaxed
/// histogram increment per operation; the ratio should be ~1.0 —
/// this case exists to *keep* it there.
pub fn metrics_overhead_append(p: &ReportParams, instrumented: bool) -> RunStats {
    let unit: Bytes = Bytes::from((0..p.append_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.append_unit) as u64;

    // The effect measured is nanoseconds per op against a ~50 µs op:
    // extra best-of reps, or the A/B ratio is timer noise, not tax.
    let mut best = Duration::MAX;
    for _ in 0..p.reps * 4 {
        let store = BlobSeer::builder()
            .page_size(p.page_size)
            .data_providers(16)
            .metadata_providers(16)
            .io_threads(4)
            .latency_metrics(instrumented)
            .build()
            .expect("valid bench config");
        let blob = store.create();
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..appends {
            last = Some(blob.append_bytes(unit.clone()).expect("append"));
        }
        blob.sync(last.expect("at least one append")).expect("sync");
        best = best.min(t0.elapsed());
    }
    RunStats {
        ops: appends,
        bytes: p.append_total as u64,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// The PR-8 admission-tax case: the exact [`metrics_overhead_append`]
/// workload, run without the QoS subsystem (baseline) vs with QoS
/// enabled on all-unlimited quotas (optimized — what a shared
/// deployment with no throttled tenants pays). The enabled side pays
/// one registry lookup, one atomic counter bump and the
/// dispatch-ticket indirection per update; the ratio should sit at
/// ~1.0 (the PR's bar is ≥ 0.95) — this case exists to *keep* it
/// there.
pub fn qos_overhead_append(p: &ReportParams, qos: bool) -> RunStats {
    let unit: Bytes = Bytes::from((0..p.append_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.append_unit) as u64;

    let mut best = Duration::MAX;
    for _ in 0..p.reps * 4 {
        let mut builder = BlobSeer::builder()
            .page_size(p.page_size)
            .data_providers(16)
            .metadata_providers(16)
            .io_threads(4);
        if qos {
            // Enabled but throttling nobody: the default quota is
            // unlimited, so this prices pure admission overhead.
            builder = builder.qos(blobseer::QosConfig::default());
        }
        let store = builder.build().expect("valid bench config");
        let blob = store.create();
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..appends {
            last = Some(blob.append_bytes(unit.clone()).expect("append"));
        }
        blob.sync(last.expect("at least one append")).expect("sync");
        best = best.min(t0.elapsed());
    }
    RunStats {
        ops: appends,
        bytes: p.append_total as u64,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// What [`multi_tenant_isolation`] measured: the quiet tenant's append
/// latency distribution alone, next to an unthrottled noisy flood, and
/// next to the same flood with QoS capping the noisy tenant.
#[derive(Clone, Copy, Debug)]
pub struct QosIsolationTrajectory {
    /// Quiet appends timed per scenario.
    pub quiet_ops: u64,
    /// Bytes per quiet append.
    pub quiet_unit: u64,
    /// Quiet append p50, alone on the store.
    pub solo_p50: Duration,
    /// Quiet append p99, alone on the store.
    pub solo_p99: Duration,
    /// Quiet p50 sharing the store with the unthrottled flood.
    pub fifo_p50: Duration,
    /// Quiet p99 sharing the store with the unthrottled flood.
    pub fifo_p99: Duration,
    /// Noisy appends the unthrottled flood landed meanwhile.
    pub fifo_noisy_appends: u64,
    /// Quiet p50 with QoS throttling the flood.
    pub qos_p50: Duration,
    /// Quiet p99 with QoS throttling the flood.
    pub qos_p99: Duration,
    /// Noisy appends the throttled flood landed meanwhile.
    pub qos_noisy_appends: u64,
    /// Non-blocking refusals the engine issued to the throttled flood.
    pub qos_noisy_throttled: u64,
}

/// The noisy tenant's id in [`multi_tenant_isolation`] (quiet = 0).
const NOISY_TENANT: u32 = 1;
/// Sustained byte budget the QoS run grants the noisy tenant — far
/// below what an in-memory flood can push, so throttling engages on
/// any host.
const NOISY_BYTES_PER_SEC: u64 = 50_000_000;
/// Flood size cap per scenario (bounds provider memory).
const NOISY_CAP: u64 = 512;

/// The PR-8 isolation trajectory: one quiet tenant's blocking appends
/// timed individually while a noisy tenant floods pipelined appends
/// from another thread — solo, shared with QoS off, and shared with
/// QoS capping the noisy tenant at 50 MB/s sustained (refused
/// submissions back off and retry). The quantity of interest is
/// quiet p99 vs solo; the deterministic 2x acceptance bound lives in
/// `blobseer_sim::qos_isolation_experiment` — this case records what a
/// real host shows, where single-core CPU time-slicing also taxes the
/// quiet thread.
pub fn multi_tenant_isolation(p: &ReportParams) -> QosIsolationTrajectory {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let quiet_unit_len = (p.pinned_read_bytes * 4) as usize;
    let quiet_ops = p.pinned_reads / 200;
    let quiet_unit: Bytes =
        Bytes::from((0..quiet_unit_len).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let noisy_unit: Bytes =
        Bytes::from((0..p.pipeline_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());

    let build = |qos: bool| {
        let mut builder = BlobSeer::builder()
            .page_size(p.page_size)
            .data_providers(16)
            .metadata_providers(16)
            .io_threads(4);
        if qos {
            builder = builder.qos(blobseer::QosConfig::default().with_tenant(
                NOISY_TENANT,
                blobseer::TenantQuota {
                    bytes_per_sec: NOISY_BYTES_PER_SEC,
                    burst_bytes: NOISY_BYTES_PER_SEC / 10,
                    ..blobseer::TenantQuota::unlimited()
                },
            ));
        }
        builder.build().expect("valid bench config")
    };

    let time_quiet = |store: &BlobSeer| -> Vec<Duration> {
        let blob = store.create();
        let mut lat = Vec::with_capacity(quiet_ops as usize);
        let mut last = None;
        for _ in 0..quiet_ops {
            let t0 = Instant::now();
            last = Some(blob.append_bytes(quiet_unit.clone()).expect("quiet append"));
            lat.push(t0.elapsed());
        }
        blob.sync(last.expect("at least one append")).expect("sync");
        lat
    };

    // Noisy flood: depth-bounded pipelined appends until told to stop
    // (or the memory cap); a QuotaExceeded refusal backs off briefly
    // and retries — the compliant reaction to non-blocking throttling.
    let flood = |store: BlobSeer, stop: Arc<AtomicBool>| {
        let noisy_unit = noisy_unit.clone();
        std::thread::spawn(move || -> u64 {
            use std::collections::VecDeque;
            let blob = store.create().for_tenant(blobseer::TenantId(NOISY_TENANT));
            let mut inflight = VecDeque::with_capacity(4);
            let mut appends = 0u64;
            let mut last = blobseer::Version(0);
            while !stop.load(Ordering::Relaxed) && appends < NOISY_CAP {
                match blob.append_pipelined(noisy_unit.clone()) {
                    Ok(pending) => {
                        inflight.push_back(pending);
                        appends += 1;
                        if inflight.len() == 4 {
                            let oldest: blobseer::PendingWrite =
                                inflight.pop_front().expect("non-empty");
                            last = last.max(oldest.wait().expect("noisy append"));
                        }
                    }
                    Err(blobseer::BlobError::QuotaExceeded { .. }) => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("noisy append: {e}"),
                }
            }
            for pending in inflight {
                last = last.max(pending.wait().expect("noisy append"));
            }
            if appends > 0 {
                blob.sync(last).expect("noisy sync");
            }
            appends
        })
    };

    let pctl = |lat: &mut Vec<Duration>, q: f64| -> Duration {
        lat.sort_unstable();
        let rank = ((lat.len() as f64 * q).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    };

    // Scenario 1: solo.
    let store = build(false);
    let mut solo = time_quiet(&store);
    drop(store);

    // Scenario 2: shared, QoS off.
    let store = build(false);
    let stop = Arc::new(AtomicBool::new(false));
    let noisy = flood(store.clone(), stop.clone());
    let mut fifo = time_quiet(&store);
    stop.store(true, Ordering::Relaxed);
    let fifo_noisy = noisy.join().expect("noisy thread");
    drop(store);

    // Scenario 3: shared, QoS on.
    let store = build(true);
    let stop = Arc::new(AtomicBool::new(false));
    let noisy = flood(store.clone(), stop.clone());
    let mut qos = time_quiet(&store);
    stop.store(true, Ordering::Relaxed);
    let qos_noisy = noisy.join().expect("noisy thread");
    let throttled =
        store.tenant_qos_stats(blobseer::TenantId(NOISY_TENANT)).expect("qos enabled").throttled;

    QosIsolationTrajectory {
        quiet_ops,
        quiet_unit: quiet_unit_len as u64,
        solo_p50: pctl(&mut solo, 0.50),
        solo_p99: pctl(&mut solo, 0.99),
        fifo_p50: pctl(&mut fifo, 0.50),
        fifo_p99: pctl(&mut fifo, 0.99),
        fifo_noisy_appends: fifo_noisy,
        qos_p50: pctl(&mut qos, 0.50),
        qos_p99: pctl(&mut qos, 0.99),
        qos_noisy_appends: qos_noisy,
        qos_noisy_throttled: throttled,
    }
}

/// The PR-6 tail-latency trajectory: a mixed instrumented workload —
/// blocking appends, depth-bounded pipelined appends, pinned snapshot
/// reads and scatter reads — on one store, then the store's own
/// [`blobseer::BlobSeer::stats_snapshot`]. The *product under test* is
/// the measurement pipeline itself: the trajectory file records the
/// percentiles the registry reports, so a regression in either the
/// hot paths or the histogram math shows up as moved (or vanished)
/// tails.
pub fn latency_percentiles(p: &ReportParams) -> blobseer::StatsSnapshot {
    use std::collections::VecDeque;

    let store = build_store(p, true);
    let blob = store.create();
    let unit: Bytes =
        Bytes::from((0..p.pipeline_unit).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let appends = (p.append_total / p.pipeline_unit) as u64;

    // Half blocking, half pipelined: both update spans land in the
    // same append histogram.
    let mut last = blobseer::Version(0);
    for _ in 0..appends / 2 {
        last = blob.append_bytes(unit.clone()).expect("append");
    }
    let mut inflight = VecDeque::with_capacity(p.pipeline_depth);
    for _ in appends / 2..appends {
        inflight.push_back(blob.append_pipelined(unit.clone()).expect("append"));
        if inflight.len() == p.pipeline_depth {
            let oldest: blobseer::PendingWrite = inflight.pop_front().expect("non-empty");
            last = last.max(oldest.wait().expect("complete"));
        }
    }
    for pending in inflight {
        last = last.max(pending.wait().expect("complete"));
    }
    blob.sync(last).expect("sync");

    // Read side: pinned sub-page reads plus zero-copy scatter reads.
    let snap = blob.snapshot(last).expect("published");
    let slots = snap.len() / p.pinned_read_bytes;
    let mut buf = vec![0u8; p.pinned_read_bytes as usize];
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..p.pinned_reads / 10 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let offset = ((x >> 33) % slots) * p.pinned_read_bytes;
        snap.read_into(offset, &mut buf).expect("read");
    }
    for i in 0..64u64 {
        let offset = (i % slots) * p.pinned_read_bytes;
        snap.read_scatter(blobseer::ByteRange::new(offset, p.pinned_read_bytes)).expect("scatter");
    }
    std::hint::black_box(&buf);
    store.stats_snapshot()
}

/// Format one [`blobseer::OpLatency`] as a JSON object line.
pub fn json_latency(name: &str, lat: &blobseer::OpLatency) -> String {
    format!(
        "\"{name}\": {{ \"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {} }}",
        lat.count, lat.mean_ns, lat.p50_ns, lat.p90_ns, lat.p99_ns, lat.p999_ns, lat.max_ns
    )
}

/// Minimal shared-kv surface so one driver measures both DHT designs.
pub trait KvStore: Sync {
    /// Insert or overwrite.
    fn kv_put(&self, k: (u64, u64), v: u64);
    /// Non-blocking lookup.
    fn kv_get(&self, k: &(u64, u64)) -> Option<u64>;
}

impl KvStore for Dht<(u64, u64), u64> {
    fn kv_put(&self, k: (u64, u64), v: u64) {
        self.put(k, v);
    }
    fn kv_get(&self, k: &(u64, u64)) -> Option<u64> {
        self.get(k)
    }
}

impl KvStore for MutexDht<(u64, u64), u64> {
    fn kv_put(&self, k: (u64, u64), v: u64) {
        self.put(k, v);
    }
    fn kv_get(&self, k: &(u64, u64)) -> Option<u64> {
        self.get(k)
    }
}

const DHT_BUCKETS: usize = 16;
const DHT_KEYS: u64 = 4096;

/// Traffic shape for [`dht_micro`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtCase {
    /// 80% `get` / 20% `put` over uniform keys — reads dominate 4:1,
    /// writers (tree-node stores) are steady. Exercises both the shared
    /// read path and the waiter-gated notify on the put path.
    ReadHeavy,
    /// 97% `get` / 3% `put` — almost pure reads of published metadata.
    ReadMostly,
    /// Every thread `get`s one key — the Figure 2(b) "all readers fetch
    /// the same root node" hotspot.
    HotRoot,
}

impl DhtCase {
    fn get_pct(self) -> u64 {
        match self {
            DhtCase::ReadHeavy => 80,
            DhtCase::ReadMostly => 97,
            DhtCase::HotRoot => 100,
        }
    }
}

fn dht_run(kv: &(impl KvStore + ?Sized), p: &ReportParams, case: DhtCase) -> Duration {
    for k in 0..DHT_KEYS {
        kv.kv_put((k, k), k);
    }
    let iters = p.dht_iters_per_thread;
    let get_pct = case.get_pct();
    let hot_key = case == DhtCase::HotRoot;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..p.dht_threads as u64 {
            s.spawn(move || {
                // Per-thread LCG for a fixed, reproducible op stream.
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut sink = 0u64;
                for _ in 0..iters {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if hot_key {
                        sink ^= kv.kv_get(&(0, 0)).unwrap_or(0);
                    } else if x % 100 < get_pct {
                        let k = (x >> 32) % DHT_KEYS;
                        sink ^= kv.kv_get(&(k, k)).unwrap_or(0);
                    } else {
                        let k = (x >> 32) % DHT_KEYS;
                        kv.kv_put((k, k), sink ^ x);
                    }
                }
                std::hint::black_box(sink);
            });
        }
    });
    t0.elapsed()
}

/// DHT traffic in the given shape; best-of-`reps` over fresh stores.
pub fn dht_micro(p: &ReportParams, optimized: bool, case: DhtCase) -> RunStats {
    let mut best = Duration::MAX;
    for _ in 0..p.reps {
        let dt = if optimized {
            dht_run(&Dht::<(u64, u64), u64>::new(DHT_BUCKETS), p, case)
        } else {
            dht_run(&MutexDht::<(u64, u64), u64>::new(DHT_BUCKETS), p, case)
        };
        best = best.min(dt);
    }
    RunStats {
        ops: p.dht_threads as u64 * p.dht_iters_per_thread,
        bytes: 0,
        elapsed: best,
        io_jobs: None,
        allocs: None,
    }
}

/// Format one baseline/optimized pair as a JSON object (hand-rolled:
/// the serde shim has no JSON backend).
pub fn json_pair(indent: &str, unit: &str, baseline: &RunStats, optimized: &RunStats) -> String {
    let line = |s: &RunStats| {
        let mut fields = vec![
            format!("\"ops\": {}", s.ops),
            format!("\"elapsed_s\": {:.4}", s.elapsed.as_secs_f64()),
            format!("\"ops_per_s\": {:.1}", s.ops_per_s()),
        ];
        if s.bytes > 0 {
            fields.push(format!("\"mb_per_s\": {:.1}", s.mbps()));
        }
        if let Some(j) = s.io_jobs {
            fields.push(format!("\"io_jobs_dispatched\": {j}"));
        }
        if let Some(a) = s.allocs_per_op() {
            fields.push(format!("\"allocs_per_op\": {a:.1}"));
        }
        fields.join(", ")
    };
    let speedup = baseline.elapsed.as_secs_f64() / optimized.elapsed.as_secs_f64();
    format!(
        "{indent}\"unit\": \"{unit}\",\n\
         {indent}\"baseline\": {{ {} }},\n\
         {indent}\"optimized\": {{ {} }},\n\
         {indent}\"speedup\": {speedup:.2}",
        line(baseline),
        line(optimized),
    )
}
