//! Benchmark harness crate; all content lives in `benches/`.
