//! Benchmark harness crate.
//!
//! The `benches/` directory holds the criterion targets for the paper
//! figures and ablations. This library holds the **bench trajectory
//! harness**: deterministic, fast-mode measurements of the two
//! paper-critical hot paths (Figure 2(a) appends, Figure 2(b)-style
//! hot metadata reads) in baseline vs optimized configuration, emitted
//! as `BENCH_PR<n>.json` by the `bench_report` binary so every PR
//! leaves a comparable performance data point behind.

pub mod baseline;
pub mod report;
