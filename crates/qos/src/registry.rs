//! The runtime-adjustable tenant registry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::bucket::TokenBucket;

/// One tenant's quota in raw numbers (the crate-local mirror of the
/// engine's serde-facing `TenantQuota`; this crate stays
/// dependency-free, so it speaks plain integers and raw tenant ids).
/// `0` for a rate means unlimited on that axis — no bucket is built,
/// and admission on that axis is free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaSpec {
    /// Sustained bytes per second (`0` = unlimited).
    pub bytes_per_sec: u64,
    /// Sustained operations per second (`0` = unlimited).
    pub ops_per_sec: u64,
    /// Byte-bucket burst capacity (`0` = one second's refill).
    pub burst_bytes: u64,
    /// Op-bucket burst capacity (`0` = one second's refill).
    pub burst_ops: u64,
    /// Deficit-round-robin weight (≥ 1).
    pub weight: u32,
}

impl QuotaSpec {
    /// A spec that never throttles.
    pub fn unlimited() -> Self {
        QuotaSpec { bytes_per_sec: 0, ops_per_sec: 0, burst_bytes: 0, burst_ops: 0, weight: 1 }
    }
}

impl Default for QuotaSpec {
    fn default() -> Self {
        QuotaSpec::unlimited()
    }
}

/// A tenant's live admission state: its buckets (absent on unlimited
/// axes) and scheduling weight. Shared via `Arc` between the
/// admission path and the registry, so a quota *adjustment* swaps the
/// state atomically — in-flight admissions finish against the old
/// buckets, later ones see the new.
#[derive(Debug)]
pub struct TenantState {
    spec: QuotaSpec,
    bytes: Option<TokenBucket>,
    ops: Option<TokenBucket>,
}

impl TenantState {
    fn new(spec: QuotaSpec) -> Self {
        let mk = |rate: u64, burst: u64| {
            (rate > 0).then(|| TokenBucket::new(rate, if burst > 0 { burst } else { rate }))
        };
        TenantState {
            spec,
            bytes: mk(spec.bytes_per_sec, spec.burst_bytes),
            ops: mk(spec.ops_per_sec, spec.burst_ops),
        }
    }

    /// The spec this state was built from.
    pub fn spec(&self) -> QuotaSpec {
        self.spec
    }

    /// Scheduling weight (≥ 1).
    pub fn weight(&self) -> u32 {
        self.spec.weight.max(1)
    }

    /// Whether either axis is actually limited. Unlimited tenants can
    /// skip admission bookkeeping entirely.
    pub fn is_limited(&self) -> bool {
        self.bytes.is_some() || self.ops.is_some()
    }

    /// Try to admit one operation of `payload_bytes` at injected
    /// instant `now_ns`: one op token plus `payload_bytes` byte
    /// tokens, atomically — on a partial failure the op token is
    /// refunded, so a refused admission consumes nothing.
    /// `Err(hint_ns)` is the longest single-axis wait hint.
    pub fn try_admit_at(&self, now_ns: u64, payload_bytes: u64) -> Result<(), u64> {
        if let Some(ops) = &self.ops {
            ops.try_acquire_at(now_ns, 1)?;
        }
        if let Some(bytes) = &self.bytes {
            if let Err(hint) = bytes.try_acquire_at(now_ns, payload_bytes) {
                if let Some(ops) = &self.ops {
                    ops.refund(1);
                }
                return Err(hint);
            }
        }
        Ok(())
    }

    /// Gauge view: `(byte_tokens, op_tokens)` available at `now_ns`;
    /// `None` on an unlimited axis.
    pub fn tokens_at(&self, now_ns: u64) -> (Option<u64>, Option<u64>) {
        (
            self.bytes.as_ref().map(|b| b.available_at(now_ns)),
            self.ops.as_ref().map(|b| b.available_at(now_ns)),
        )
    }
}

/// Tenant id → quota, lazily populated and runtime-adjustable.
///
/// Tenants without an explicit quota share the **default spec**
/// (their states are still per-tenant — each gets its own buckets
/// built from it). [`TenantRegistry::set_quota`] replaces a tenant's
/// state wholesale: fresh buckets, starting full.
///
/// # Examples
///
/// ```
/// use blobseer_qos::{QuotaSpec, TenantRegistry};
///
/// let reg = TenantRegistry::new(QuotaSpec::unlimited());
/// reg.set_quota(7, QuotaSpec { ops_per_sec: 2, ..QuotaSpec::unlimited() });
/// let t7 = reg.state(7);
/// assert!(t7.is_limited());
/// assert!(t7.try_admit_at(0, 1024).is_ok());
/// assert!(t7.try_admit_at(0, 1024).is_ok());
/// assert!(t7.try_admit_at(0, 1024).is_err(), "burst of 2 spent");
/// assert!(!reg.state(8).is_limited(), "default is unlimited");
/// ```
#[derive(Debug)]
pub struct TenantRegistry {
    default_spec: Mutex<QuotaSpec>,
    tenants: Mutex<HashMap<u64, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// A registry whose unconfigured tenants get `default_spec`.
    pub fn new(default_spec: QuotaSpec) -> Self {
        TenantRegistry {
            default_spec: Mutex::new(default_spec),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The live state for `tenant`, creating it from the default spec
    /// on first sight.
    pub fn state(&self, tenant: u64) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock().expect("no poison");
        if let Some(state) = tenants.get(&tenant) {
            return Arc::clone(state);
        }
        let spec = *self.default_spec.lock().expect("no poison");
        let state = Arc::new(TenantState::new(spec));
        tenants.insert(tenant, Arc::clone(&state));
        state
    }

    /// Replace `tenant`'s quota with fresh, full buckets. In-flight
    /// admissions holding the old `Arc` finish against the old
    /// buckets; later calls see the new ones.
    pub fn set_quota(&self, tenant: u64, spec: QuotaSpec) {
        let state = Arc::new(TenantState::new(spec));
        self.tenants.lock().expect("no poison").insert(tenant, state);
    }

    /// The spec `tenant` currently runs under (the default spec if it
    /// was never seen).
    pub fn quota(&self, tenant: u64) -> QuotaSpec {
        if let Some(state) = self.tenants.lock().expect("no poison").get(&tenant) {
            return state.spec();
        }
        *self.default_spec.lock().expect("no poison")
    }

    /// Replace the spec future unconfigured tenants are built from.
    /// Existing tenant states are untouched.
    pub fn set_default_quota(&self, spec: QuotaSpec) {
        *self.default_spec.lock().expect("no poison") = spec;
    }

    /// Snapshot of all materialised tenants, sorted by id (for
    /// deterministic gauge exposition).
    pub fn all(&self) -> Vec<(u64, Arc<TenantState>)> {
        let tenants = self.tenants.lock().expect("no poison");
        let mut out: Vec<_> = tenants.iter().map(|(&t, s)| (t, Arc::clone(s))).collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn unlimited_tenants_admit_everything() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        let t = reg.state(1);
        assert!(!t.is_limited());
        for i in 0..10_000 {
            assert!(t.try_admit_at(0, i * 1_000_000).is_ok());
        }
    }

    #[test]
    fn byte_and_op_buckets_compose() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        reg.set_quota(
            1,
            QuotaSpec { bytes_per_sec: 1000, ops_per_sec: 2, ..QuotaSpec::unlimited() },
        );
        let t = reg.state(1);
        assert!(t.try_admit_at(0, 600).is_ok());
        // Bytes exhausted (600 of 1000 spent, 500 requested): the op
        // token taken for this attempt must be refunded...
        assert!(t.try_admit_at(0, 500).is_err());
        // ...so a smaller op still has an op token to use.
        assert!(t.try_admit_at(0, 400).is_ok());
        // Now ops are exhausted (2/s burst spent) even though bytes remain.
        assert!(t.try_admit_at(0, 0).is_err());
        // A second of refill restores both.
        assert!(t.try_admit_at(SEC, 1000).is_ok());
    }

    #[test]
    fn set_quota_swaps_live_state() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        assert!(!reg.state(3).is_limited());
        reg.set_quota(3, QuotaSpec { ops_per_sec: 1, ..QuotaSpec::unlimited() });
        assert!(reg.state(3).is_limited());
        assert_eq!(reg.quota(3).ops_per_sec, 1);
        // Back to unlimited at runtime.
        reg.set_quota(3, QuotaSpec::unlimited());
        assert!(!reg.state(3).is_limited());
    }

    #[test]
    fn default_spec_applies_to_new_tenants_only() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        let before = reg.state(1);
        reg.set_default_quota(QuotaSpec { ops_per_sec: 5, ..QuotaSpec::unlimited() });
        assert!(!before.is_limited(), "existing states keep their buckets");
        assert!(!reg.state(1).is_limited(), "materialised tenants are not rebuilt");
        assert!(reg.state(2).is_limited(), "new tenants see the new default");
    }

    #[test]
    fn all_is_sorted_and_complete() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        for t in [5u64, 1, 9, 3] {
            reg.state(t);
        }
        let ids: Vec<u64> = reg.all().into_iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn gauge_view_reports_both_axes() {
        let reg = TenantRegistry::new(QuotaSpec::unlimited());
        reg.set_quota(
            1,
            QuotaSpec { bytes_per_sec: 100, ops_per_sec: 4, ..QuotaSpec::unlimited() },
        );
        let t = reg.state(1);
        assert_eq!(t.tokens_at(0), (Some(100), Some(4)));
        t.try_admit_at(0, 30).unwrap();
        assert_eq!(t.tokens_at(0), (Some(70), Some(3)));
        assert_eq!(reg.state(2).tokens_at(0), (None, None));
    }
}
