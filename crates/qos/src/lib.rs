//! Multi-tenant QoS primitives for the BlobSeer reproduction (PR 8).
//!
//! The paper's regime is *heavy access concurrency* — many clients
//! hammering one deployment — and without admission control one hot
//! client starves everyone: ingest is unbounded and the shared pools
//! drain FIFO. This crate provides the three mechanisms the engine
//! composes into per-tenant isolation:
//!
//! * [`TokenBucket`] — a lock-free rate limiter (atomic token count
//!   plus an atomic refill clock, CAS-advanced) used for per-tenant
//!   bytes/s and ops/s quotas with burst capacity;
//! * [`FairQueue`] — a deficit-weighted round-robin queue: per-tenant
//!   FIFO sub-queues drained by byte-cost deficit counters, so a
//!   weight-3 tenant gets ~3x the drain bandwidth of a weight-1
//!   tenant under contention, and no tenant is starved;
//! * [`TenantRegistry`] — tenant id → live [`TenantState`] (buckets +
//!   weight), lazily populated from a default quota and
//!   runtime-adjustable.
//!
//! **Time is always injected.** Nothing in this crate reads a clock:
//! every method takes `now_ns`, a monotonic nanosecond timestamp. The
//! engine passes the `blobseer_metrics` coarse clock; tests and the
//! simulator pass virtual time, which makes every throttling decision
//! deterministic. That is the same `_at` idiom the metrics crate uses
//! for its window snapshots.

mod bucket;
mod queue;
mod registry;

pub use bucket::TokenBucket;
pub use queue::FairQueue;
pub use registry::{QuotaSpec, TenantRegistry, TenantState};
