//! The lock-free token bucket.

use std::sync::atomic::{AtomicU64, Ordering};

const NANOS_PER_SEC: u128 = 1_000_000_000;

/// A lock-free token-bucket rate limiter.
///
/// State is two `AtomicU64`s: the current token count and the refill
/// clock (`last_ns`, the virtual instant up to which refill credit has
/// been minted). Refill is CAS-driven and **exact**: the winner
/// advances `last_ns` by precisely the nanoseconds its minted tokens
/// account for (`minted * 1e9 / rate`, rounded down), so fractional
/// remainders carry over to the next refill instead of being lost —
/// the bucket admits exactly `rate_per_sec` tokens per second of
/// injected time, with no drift, at any call cadence.
///
/// Time is injected (`now_ns` on every call), never read: the engine
/// passes the coarse metrics clock, tests pass virtual time.
///
/// # Examples
///
/// ```
/// use blobseer_qos::TokenBucket;
///
/// // 1000 tokens/s, burst of 10; starts full.
/// let b = TokenBucket::new(1000, 10);
/// assert!(b.try_acquire_at(0, 10).is_ok());
/// // Drained: the failure returns a wait hint in nanoseconds.
/// let hint = b.try_acquire_at(0, 1).unwrap_err();
/// assert_eq!(hint, 1_000_000); // one token takes 1 ms at 1000/s
/// // After that long, the token is there.
/// assert!(b.try_acquire_at(hint, 1).is_ok());
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    /// Sustained refill rate, tokens per second of injected time.
    rate_per_sec: u64,
    /// Burst capacity: the token count is clamped here, so at most
    /// this many tokens can be acquired back-to-back after idleness.
    capacity: u64,
    tokens: AtomicU64,
    /// The injected instant up to which refill credit was minted.
    last_ns: AtomicU64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` (≥ 1) with `capacity`
    /// burst tokens (≥ 1, clamped up). Starts full.
    pub fn new(rate_per_sec: u64, capacity: u64) -> Self {
        assert!(rate_per_sec >= 1, "a zero-rate bucket never admits; omit the bucket instead");
        let capacity = capacity.max(1);
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: AtomicU64::new(capacity),
            last_ns: AtomicU64::new(0),
        }
    }

    /// Sustained rate, tokens per second.
    pub fn rate_per_sec(&self) -> u64 {
        self.rate_per_sec
    }

    /// Burst capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Mint the refill credit accrued up to `now_ns`. Lock-free: one
    /// CAS claims the elapsed span, a second CAS loop deposits the
    /// tokens (clamped at capacity — an idle bucket overflows, it
    /// does not bank).
    fn refill(&self, now_ns: u64) {
        loop {
            let last = self.last_ns.load(Ordering::Acquire);
            let elapsed = now_ns.saturating_sub(last);
            let minted = elapsed as u128 * self.rate_per_sec as u128 / NANOS_PER_SEC;
            if minted == 0 {
                return;
            }
            // Advance the clock by exactly the span the minted tokens
            // pay for (≤ elapsed): the sub-token remainder stays
            // unclaimed for the next refill.
            let consumed_ns = (minted * NANOS_PER_SEC / self.rate_per_sec as u128) as u64;
            if self
                .last_ns
                .compare_exchange(last, last + consumed_ns, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Another thread claimed this span; re-observe.
                continue;
            }
            let add = u64::try_from(minted).unwrap_or(u64::MAX);
            let mut cur = self.tokens.load(Ordering::Acquire);
            loop {
                let next = cur.saturating_add(add).min(self.capacity);
                match self.tokens.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return,
                    Err(observed) => cur = observed,
                }
            }
        }
    }

    /// Acquire `n` tokens at injected instant `now_ns`, or learn how
    /// long to wait: `Err(hint_ns)` is the time until the bucket
    /// *could* have enough (other contenders may still win them). A
    /// request larger than the burst capacity is clamped to it —
    /// oversized operations drain the full bucket and proceed rather
    /// than deadlocking on tokens that can never accumulate.
    pub fn try_acquire_at(&self, now_ns: u64, n: u64) -> Result<(), u64> {
        let need = n.max(1).min(self.capacity);
        self.refill(now_ns);
        let mut cur = self.tokens.load(Ordering::Acquire);
        loop {
            if cur < need {
                let deficit = (need - cur) as u128;
                let hint = (deficit * NANOS_PER_SEC).div_ceil(self.rate_per_sec as u128);
                return Err(u64::try_from(hint).unwrap_or(u64::MAX).max(1));
            }
            match self.tokens.compare_exchange(cur, cur - need, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Return `n` tokens (clamped at capacity). Used to undo a
    /// partial multi-bucket admission: ops token taken, byte tokens
    /// refused — the op token goes back.
    pub fn refund(&self, n: u64) {
        let mut cur = self.tokens.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_add(n).min(self.capacity);
            match self.tokens.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Tokens available at `now_ns` (refills first). The gauge view.
    pub fn available_at(&self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        self.tokens.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const MS: u64 = 1_000_000;
    const SEC: u64 = 1_000_000_000;

    #[test]
    fn starts_full_and_clamps_at_capacity() {
        let b = TokenBucket::new(100, 50);
        assert_eq!(b.available_at(0), 50);
        // A decade of idleness still leaves exactly the burst.
        assert_eq!(b.available_at(10 * SEC), 50);
    }

    #[test]
    fn refills_at_the_configured_rate() {
        let b = TokenBucket::new(1000, 1000);
        assert!(b.try_acquire_at(0, 1000).is_ok());
        assert_eq!(b.available_at(0), 0);
        assert_eq!(b.available_at(250 * MS), 250);
        assert_eq!(b.available_at(SEC), 1000);
    }

    #[test]
    fn fractional_refill_carries_no_drift() {
        // 3 tokens/s polled every 100 ms: naive integer refill would
        // mint 0 every poll forever. The exact clock advance mints
        // one token per ceil(1e9/3) ns regardless of cadence.
        let b = TokenBucket::new(3, 3);
        assert!(b.try_acquire_at(0, 3).is_ok());
        let mut minted = 0u64;
        for step in 1..=100 {
            minted += b.try_acquire_at(step * 100 * MS, 1).is_ok() as u64;
        }
        // 10 seconds at 3/s = 30 tokens, exactly.
        assert_eq!(minted, 30);
    }

    #[test]
    fn wait_hint_is_honest() {
        let b = TokenBucket::new(100, 10);
        assert!(b.try_acquire_at(0, 10).is_ok());
        let hint = b.try_acquire_at(0, 5).unwrap_err();
        // 5 tokens at 100/s = 50 ms.
        assert_eq!(hint, 50 * MS);
        // One nanosecond early: still refused.
        assert!(b.try_acquire_at(hint - 1, 5).is_err());
        assert!(b.try_acquire_at(hint, 5).is_ok());
    }

    #[test]
    fn oversized_requests_clamp_to_the_burst() {
        let b = TokenBucket::new(10, 4);
        // 100 tokens can never accumulate in a 4-token bucket; the
        // request drains the burst and proceeds.
        assert!(b.try_acquire_at(0, 100).is_ok());
        assert_eq!(b.available_at(0), 0);
    }

    #[test]
    fn refund_returns_tokens_up_to_capacity() {
        let b = TokenBucket::new(10, 8);
        assert!(b.try_acquire_at(0, 8).is_ok());
        b.refund(3);
        assert_eq!(b.available_at(0), 3);
        b.refund(100);
        assert_eq!(b.available_at(0), 8);
    }

    #[test]
    fn concurrent_acquirers_never_overdraw() {
        // 8 threads fight over a fixed budget; the total admitted
        // must equal exactly what the bucket ever minted.
        let b = Arc::new(TokenBucket::new(1_000_000, 1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for _ in 0..10_000 {
                    // Frozen time: no refill beyond the initial burst.
                    got += b.try_acquire_at(0, 1).is_ok() as u64;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000, "admitted more than the burst ever contained");
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let b = TokenBucket::new(1000, 10);
        assert!(b.try_acquire_at(SEC, 10).is_ok());
        // An older timestamp mints nothing and breaks nothing.
        assert!(b.try_acquire_at(0, 1).is_err());
        assert!(b.try_acquire_at(SEC + 10 * MS, 10).is_ok());
    }
}
