//! The deficit-weighted round-robin fair queue.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// A weighted-fair queue: per-tenant FIFO sub-queues drained by
/// **deficit-weighted round-robin** (DRR). Each tenant holds a deficit
/// counter; a visit tops it up by `quantum × weight`, and the tenant's
/// head items are served while their summed cost fits the deficit.
/// Under contention each tenant therefore drains bandwidth
/// proportional to its weight, independent of how deep the others'
/// backlogs are — the property a shared FIFO pool lacks.
///
/// Items within one tenant stay strictly FIFO. Costs are in the same
/// unit as the quantum (the engine uses payload bytes and a page-size
/// quantum).
///
/// # Examples
///
/// ```
/// use blobseer_qos::FairQueue;
///
/// let q = FairQueue::new(100);
/// // Tenant 1 (weight 1) has a deep backlog; tenant 2 (weight 1)
/// // one item. Tenant 2 is served within one round, not after the
/// // whole backlog.
/// for i in 0..10 {
///     q.push(1, 1, 100, format!("noisy-{i}"));
/// }
/// q.push(2, 1, 100, "quiet".to_string());
/// let first_two = [q.pop().unwrap(), q.pop().unwrap()];
/// assert!(first_two.contains(&"quiet".to_string()));
/// ```
#[derive(Debug)]
pub struct FairQueue<T> {
    quantum: u64,
    inner: Mutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    tenants: HashMap<u64, TenantLane<T>>,
    /// Active tenants in round-robin visit order.
    ring: VecDeque<u64>,
    len: usize,
}

#[derive(Debug)]
struct TenantLane<T> {
    items: VecDeque<(u64, T)>,
    deficit: u64,
    weight: u32,
    /// Whether the current head-of-ring visit already received its
    /// `quantum × weight` top-up (a visit tops up at most once; the
    /// tenant then serves until its deficit runs short and rotates).
    topped_up: bool,
}

impl<T> FairQueue<T> {
    /// A queue with the given per-visit base quantum (≥ 1; the
    /// engine uses the page size so one visit covers roughly one
    /// page-sized item per weight unit).
    pub fn new(quantum: u64) -> Self {
        FairQueue {
            quantum: quantum.max(1),
            inner: Mutex::new(Inner { tenants: HashMap::new(), ring: VecDeque::new(), len: 0 }),
        }
    }

    /// Enqueue `item` for `tenant` at the given `cost` (same unit as
    /// the quantum). `weight` updates the tenant's scheduling weight
    /// (latest push wins, ≥ 1).
    pub fn push(&self, tenant: u64, weight: u32, cost: u64, item: T) {
        let mut inner = self.inner.lock().expect("no poison");
        let lane = inner.tenants.entry(tenant).or_insert_with(|| TenantLane {
            items: VecDeque::new(),
            deficit: 0,
            weight: 1,
            topped_up: false,
        });
        lane.weight = weight.max(1);
        let newly_active = lane.items.is_empty();
        lane.items.push_back((cost, item));
        if newly_active {
            inner.ring.push_back(tenant);
        }
        inner.len += 1;
    }

    /// Dequeue the next item by DRR, or `None` if empty. One visit
    /// per rotation tops the front tenant's deficit up by
    /// `quantum × weight`; the head item is served if its cost fits,
    /// otherwise the tenant rotates to the back keeping its deficit —
    /// so even a cost far above one quantum is eventually served
    /// (deficits accumulate), and no tenant is starved.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("no poison");
        loop {
            let tenant = *inner.ring.front()?;
            let quantum = self.quantum;
            let lane = inner.tenants.get_mut(&tenant).expect("ring tenants have lanes");
            let Some(&(cost, _)) = lane.items.front() else {
                // Drained on a previous pop: drop the idle lane (its
                // deficit resets — credit does not survive idleness).
                inner.tenants.remove(&tenant);
                inner.ring.pop_front();
                continue;
            };
            if lane.deficit < cost && !lane.topped_up {
                lane.deficit = lane.deficit.saturating_add(quantum * lane.weight as u64);
                lane.topped_up = true;
            }
            if lane.deficit < cost {
                // This visit's top-up (now spent) wasn't enough: the
                // deficit carries over, the tenant goes to the back.
                lane.topped_up = false;
                inner.ring.rotate_left(1);
                continue;
            }
            lane.deficit -= cost;
            let (_, item) = lane.items.pop_front().expect("head checked above");
            if lane.items.is_empty() {
                inner.tenants.remove(&tenant);
                inner.ring.pop_front();
            }
            inner.len -= 1;
            return Some(item);
        }
    }

    /// Items queued across all tenants.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no poison").len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain the queue, returning the tenant of each served item.
    fn drain_order(q: &FairQueue<u64>) -> Vec<u64> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn single_tenant_is_fifo() {
        let q = FairQueue::new(10);
        for i in 0..5 {
            q.push(1, 1, 100, i);
        }
        let out: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_weights_interleave() {
        let q = FairQueue::new(100);
        for _ in 0..4 {
            q.push(1, 1, 100, 1);
            q.push(2, 1, 100, 2);
        }
        let order = drain_order(&q);
        // Neither tenant is ever two whole rounds ahead.
        for window in order.windows(3) {
            assert!(
                window.contains(&1) && window.contains(&2),
                "a tenant was starved for a full round: {order:?}"
            );
        }
    }

    #[test]
    fn weights_split_bandwidth_proportionally() {
        let q = FairQueue::new(100);
        for _ in 0..30 {
            q.push(1, 3, 100, 1); // weight 3
            q.push(2, 1, 100, 2); // weight 1
        }
        // After 12 pops, tenant 1 should hold ~3/4 of the served slots.
        let mut served_1 = 0;
        for _ in 0..12 {
            served_1 += (q.pop().unwrap() == 1) as usize;
        }
        assert_eq!(served_1, 9, "weight 3 vs 1 must split 3:1");
    }

    #[test]
    fn oversized_costs_accumulate_deficit_and_serve() {
        let q = FairQueue::new(10);
        q.push(1, 1, 95, 1); // ~10 visits' worth of deficit needed
        q.push(2, 1, 10, 2);
        let order = drain_order(&q);
        // Tenant 2's cheap item is not stuck behind tenant 1's huge one.
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn empty_pop_and_len() {
        let q: FairQueue<u8> = FairQueue::new(10);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(0, 1, 1, 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(7));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pushes_during_drain_keep_tenant_fifo() {
        let q = FairQueue::new(100);
        q.push(1, 1, 100, 10);
        q.push(1, 1, 100, 11);
        assert_eq!(q.pop(), Some(10));
        q.push(1, 1, 100, 12);
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
    }
}
