//! Deterministic seqlock interleaving tests: a test-only pause hook
//! holds a publishing writer *between* its seqlock half-updates — the
//! genuinely torn intermediate — and proves the reader retry loop (a)
//! actually spins rather than returning it, and (b) returns the fully
//! published, consistent triple once the writer finishes, with at
//! least one forced retry on the counter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blobseer_version::{ConcurrencyMode, UpdateKind, VersionManager};

const PSIZE: u64 = 4;

fn vm() -> Arc<VersionManager> {
    Arc::new(VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5)))
}

/// Spin until `flag` is set, failing the test after a generous bound
/// instead of hanging CI forever.
fn await_flag(flag: &AtomicBool, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !flag.load(Ordering::Acquire) {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
        std::hint::spin_loop();
    }
}

#[test]
fn paused_publication_is_torn_and_readers_retry_past_it() {
    let vm = vm();
    let b = vm.create();
    // Publish v1: 4 bytes → 1 page → root span 1. Hot = [1, 4, 1].
    let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
    vm.complete(b, a1.vw).unwrap();
    assert_eq!(vm.debug_hot_read(b).unwrap(), ([1, 4, 1], 2, 0));

    // Arm the pause: the next publication blocks after storing only
    // the version word.
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    {
        let (entered, release) = (Arc::clone(&entered), Arc::clone(&release));
        vm.set_publish_pause(
            b,
            Some(Box::new(move || {
                entered.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })),
        )
        .unwrap();
    }

    // Writer: v2 (4 more bytes → size 8 → 2 pages → span 2); its
    // complete() republishes the hot triple and parks in the pause.
    let writer = {
        let vm = Arc::clone(&vm);
        std::thread::spawn(move || {
            let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
            vm.complete(b, a2.vw).unwrap();
        })
    };
    await_flag(&entered, "writer to reach the pause point");

    // The raw cell state really is torn: odd sequence, new version
    // word, stale size and span words.
    let (torn, seq) = vm.debug_peek_hot(b).unwrap();
    assert_eq!(seq, 3, "mid-publication sequence is odd");
    assert_eq!(torn, [2, 4, 1], "version updated, size/span not yet");

    // A protocol reader must NOT return that: it spins. Give it real
    // time to (wrongly) finish, then check it has not.
    let reader_done = Arc::new(AtomicBool::new(false));
    let reader = {
        let vm = Arc::clone(&vm);
        let done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            let got = vm.debug_hot_read(b).unwrap();
            done.store(true, Ordering::Release);
            got
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(!reader_done.load(Ordering::Acquire), "reader returned while the publication was torn");

    // Let the writer finish; the reader must come back with the fully
    // published triple and a non-zero retry count — the forced retry.
    release.store(true, Ordering::Release);
    writer.join().unwrap();
    let (words, seq, retries) = reader.join().unwrap();
    assert_eq!(words, [2, 8, 2], "only the complete new triple is returnable");
    assert_eq!(seq, 4, "publication bumped the sequence to the next even value");
    assert!(retries >= 1, "the retry loop demonstrably retried (got {retries})");

    // Hot reads served during the pause window never taint the typed
    // API either: once disarmed, everything agrees.
    vm.set_publish_pause(b, None).unwrap();
    let (v, view) = vm.latest_view(b).unwrap();
    assert_eq!(v.raw(), 2);
    assert_eq!(view.size, 8);
    assert_eq!(view.root.unwrap().version, v);
}

#[test]
fn reads_before_and_after_a_pause_window_stay_consistent() {
    let vm = vm();
    let b = vm.create();
    let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
    vm.complete(b, a1.vw).unwrap();

    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    {
        let (entered, release) = (Arc::clone(&entered), Arc::clone(&release));
        vm.set_publish_pause(
            b,
            Some(Box::new(move || {
                entered.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })),
        )
        .unwrap();
    }
    let writer = {
        let vm = Arc::clone(&vm);
        std::thread::spawn(move || {
            let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
            vm.complete(b, a2.vw).unwrap();
        })
    };
    await_flag(&entered, "writer to reach the pause point");

    // get_recent and snapshot_view(v1) cannot use the (torn) cell —
    // the seqlock read would spin — but the locked paths still work:
    // v1 is pinned, so its view resolves under the mutex... which the
    // paused writer holds. So the only safe concurrent check here is
    // that the raw cell is odd while the protocol has not returned.
    let (_, seq) = vm.debug_peek_hot(b).unwrap();
    assert_eq!(seq % 2, 1);

    release.store(true, Ordering::Release);
    writer.join().unwrap();
    vm.set_publish_pause(b, None).unwrap();

    // After the window closes, every read path agrees on v2.
    assert_eq!(vm.get_recent(b).unwrap().raw(), 2);
    let view = vm.snapshot_view(b, blobseer_types::Version(2)).unwrap();
    assert_eq!((view.size, view.root.unwrap().pos.size), (8, 2));
}
