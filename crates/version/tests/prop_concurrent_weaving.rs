//! Property test of the paper's core concurrency mechanism (§4.2):
//! for ANY set of updates assigned concurrently (all in flight at
//! once), building their metadata in ANY order — in particular with
//! later versions building *before* earlier ones, linking to
//! not-yet-stored nodes through the version manager's partial border
//! sets — must yield exactly the same snapshots as applying the updates
//! strictly one at a time.

use std::collections::BTreeMap;
use std::time::Duration;

use blobseer_meta::{build_meta, read_meta, MetaStore, TreeReader, UpdateContext};
use blobseer_types::{ByteRange, PageDescriptor, PageId, ProviderId, Version};
use blobseer_version::{AssignedUpdate, ConcurrencyMode, UpdateKind, VersionManager};
use proptest::prelude::*;

const PSIZE: u64 = 4;

/// An abstract update: append some pages, or overwrite a page range
/// scaled into the blob's current (assigned) size.
#[derive(Clone, Debug)]
enum Upd {
    Append { pages: u64 },
    Write { start_permille: u16, pages: u64 },
}

fn upd() -> impl Strategy<Value = Upd> {
    prop_oneof![
        (1u64..6).prop_map(|pages| Upd::Append { pages }),
        (0u16..1000, 1u64..6)
            .prop_map(|(start_permille, pages)| Upd::Write { start_permille, pages }),
    ]
}

/// Model: page index → marker of the update that last wrote it.
type PageModel = BTreeMap<u64, u128>;

fn pd(page_index: u64, marker: u128) -> PageDescriptor {
    PageDescriptor {
        pid: PageId(marker),
        page_index,
        provider: ProviderId(0),
        valid_len: PSIZE as u32,
    }
}

fn apply_assigned(
    vm: &VersionManager,
    meta: &MetaStore,
    blob: blobseer_types::BlobId,
    assigned: &AssignedUpdate,
    marker_base: u128,
) {
    let lineage = vm.lineage(blob).unwrap();
    let reader = TreeReader::new(meta, &lineage);
    let ctx = UpdateContext {
        vw: assigned.vw,
        range: assigned.range,
        new_root: assigned.new_root,
        overrides: assigned.overrides.clone(),
        ref_root: assigned.ref_root,
    };
    let leaves: Vec<PageDescriptor> =
        assigned.range.iter().map(|p| pd(p, marker_base + p as u128)).collect();
    for (k, n) in build_meta(&reader, &ctx, &leaves).unwrap() {
        meta.put(k, n);
    }
    vm.complete(blob, assigned.vw).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn any_build_order_equals_sequential_semantics(
        updates in proptest::collection::vec(upd(), 1..10),
        build_order_seed in any::<u64>(),
    ) {
        let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5));
        let meta = MetaStore::new(4, Duration::from_millis(200));
        let blob = vm.create();

        // Base snapshot v1: 4 pages, published.
        let base = vm.assign(blob, UpdateKind::Append { size: 4 * PSIZE }).unwrap();
        apply_assigned(&vm, &meta, blob, &base, 1_000_000);

        // Assign ALL updates first — everything in flight concurrently.
        let mut model: PageModel =
            (0..4).map(|p| (p, 1_000_000 + p as u128)).collect();
        let mut assigned = Vec::new();
        let mut cur_pages = 4u64;
        for (i, u) in updates.iter().enumerate() {
            let marker_base = (i as u128 + 2) * 1_000_000;
            let kind = match *u {
                Upd::Append { pages } => UpdateKind::Append { size: pages * PSIZE },
                Upd::Write { start_permille, pages } => {
                    let start = cur_pages * u64::from(start_permille) / 1000;
                    UpdateKind::Write { offset: start * PSIZE, size: pages * PSIZE }
                }
            };
            let a = vm.assign(blob, kind).unwrap();
            prop_assert_eq!(a.vw, Version(i as u64 + 2));
            // Sequential-semantics model: apply in version order.
            for p in a.range.iter() {
                model.insert(p, marker_base + p as u128);
            }
            cur_pages = cur_pages.max(a.range.end());
            assigned.push((a, marker_base));
        }

        // Build metadata in an ADVERSARIAL order (seeded shuffle):
        // later versions may build and complete before earlier ones.
        let mut order: Vec<usize> = (0..assigned.len()).collect();
        let mut state = build_order_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &i in &order {
            let (a, marker_base) = &assigned[i];
            apply_assigned(&vm, &meta, blob, a, *marker_base);
        }

        // Everything published; the final snapshot must match the
        // version-order model exactly, page by page.
        let newest = Version(assigned.len() as u64 + 1);
        prop_assert_eq!(vm.get_recent(blob).unwrap(), newest);
        let (size, root) = vm.read_view(blob, newest).unwrap();
        prop_assert_eq!(size, cur_pages * PSIZE);
        let lineage = vm.lineage(blob).unwrap();
        let reader = TreeReader::new(&meta, &lineage);
        let pds = read_meta(
            &reader,
            root.expect("non-empty"),
            ByteRange::new(0, size),
            PSIZE,
        ).unwrap();
        prop_assert_eq!(pds.len() as u64, cur_pages);
        for d in pds {
            let expected = model.get(&d.page_index).copied().expect("page modeled");
            prop_assert_eq!(
                d.pid.raw(), expected,
                "page {} owned by wrong update", d.page_index
            );
        }

        // Spot-check an intermediate snapshot too: version k must see
        // exactly updates 1..=k.
        if assigned.len() >= 2 {
            let mid = Version(assigned.len() as u64 / 2 + 1);
            let mut mid_model: PageModel =
                (0..4).map(|p| (p, 1_000_000 + p as u128)).collect();
            for (a, marker_base) in &assigned[..(mid.raw() - 1) as usize] {
                for p in a.range.iter() {
                    mid_model.insert(p, marker_base + p as u128);
                }
            }
            let (mid_size, mid_root) = vm.read_view(blob, mid).unwrap();
            let pds = read_meta(
                &reader,
                mid_root.expect("non-empty"),
                ByteRange::new(0, mid_size),
                PSIZE,
            ).unwrap();
            for d in pds {
                prop_assert_eq!(
                    d.pid.raw(),
                    mid_model.get(&d.page_index).copied().expect("modeled"),
                    "intermediate {} page {}", mid, d.page_index
                );
            }
        }
    }
}

/// Degenerate shapes worth pinning down outside the random sweep.
#[test]
fn all_writers_target_the_same_page() {
    let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5));
    let meta = MetaStore::new(2, Duration::from_millis(200));
    let blob = vm.create();
    let base = vm.assign(blob, UpdateKind::Append { size: 4 * PSIZE }).unwrap();
    apply_assigned(&vm, &meta, blob, &base, 0);

    let assigned: Vec<AssignedUpdate> = (0..6)
        .map(|_| vm.assign(blob, UpdateKind::Write { offset: 0, size: PSIZE }).unwrap())
        .collect();
    // Build in reverse order — maximum dependency inversion.
    for (i, a) in assigned.iter().enumerate().rev() {
        apply_assigned(&vm, &meta, blob, a, (i as u128 + 1) * 1000);
    }
    let newest = vm.get_recent(blob).unwrap();
    assert_eq!(newest, Version(7));
    let (_, root) = vm.read_view(blob, newest).unwrap();
    let lineage = vm.lineage(blob).unwrap();
    let reader = TreeReader::new(&meta, &lineage);
    let pds = read_meta(&reader, root.unwrap(), ByteRange::new(0, PSIZE), PSIZE).unwrap();
    // The LAST version's page wins (its index in `assigned` is 5).
    assert_eq!(pds[0].pid.raw(), 6000);
    // Every intermediate version sees its own writer's page.
    for (i, a) in assigned.iter().enumerate() {
        let (_, root) = vm.read_view(blob, a.vw).unwrap();
        let pds = read_meta(&reader, root.unwrap(), ByteRange::new(0, PSIZE), PSIZE).unwrap();
        assert_eq!(pds[0].pid.raw(), (i as u128 + 1) * 1000, "{}", a.vw);
    }
}

/// Concurrent appends that each grow the root by one level, built in
/// reverse: the deepest possible chain of override dependencies.
#[test]
fn cascading_root_growth_built_in_reverse() {
    let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5));
    let meta = MetaStore::new(2, Duration::from_millis(200));
    let blob = vm.create();
    let base = vm.assign(blob, UpdateKind::Append { size: PSIZE }).unwrap();
    apply_assigned(&vm, &meta, blob, &base, 0);

    // Appends of 1, 2, 4, 8, 16 pages: each crosses a power of two.
    let mut assigned = Vec::new();
    for (i, pages) in [1u64, 2, 4, 8, 16].into_iter().enumerate() {
        let a = vm.assign(blob, UpdateKind::Append { size: pages * PSIZE }).unwrap();
        assigned.push((a, (i as u128 + 1) * 100_000));
    }
    for (a, marker) in assigned.iter().rev() {
        apply_assigned(&vm, &meta, blob, a, *marker);
    }
    let newest = vm.get_recent(blob).unwrap();
    let (size, root) = vm.read_view(blob, newest).unwrap();
    assert_eq!(size, 32 * PSIZE);
    let lineage = vm.lineage(blob).unwrap();
    let reader = TreeReader::new(&meta, &lineage);
    let pds = read_meta(&reader, root.unwrap(), ByteRange::new(0, size), PSIZE).unwrap();
    assert_eq!(pds.len(), 32);
    // Page 0 from the base; pages of each append carry its marker.
    assert_eq!(pds[0].pid.raw(), 0);
    assert_eq!(pds[1].pid.raw(), 100_000 + 1);
    assert_eq!(pds[3].pid.raw(), 200_000 + 3);
    assert_eq!(pds[7].pid.raw(), 300_000 + 7);
    assert_eq!(pds[15].pid.raw(), 400_000 + 15);
    assert_eq!(pds[31].pid.raw(), 500_000 + 31);
}
