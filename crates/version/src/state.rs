//! Per-blob bookkeeping held by the version manager.

use std::collections::{BTreeMap, BTreeSet};

use blobseer_meta::{Lineage, RootRef};
use blobseer_types::{div_ceil, NodePos, PageRange, Version};
use parking_lot::{Condvar, Mutex};

use crate::seqlock::SeqLock;

/// Lifecycle of an assigned-but-unpublished update.
///
/// ```text
///            complete()                    drain (in order)
/// Active ───────────────────▶ Completed ─────────────────▶ published
///    │                                                     (removed)
///    │ lease expiry / explicit abort
///    │ (begin_abort)
///    ▼            repair tree durable
/// Aborting ─────────────────▶ Aborted ────────────────────▶ skipped
///              (commit_abort)              drain (in order) (removed,
///                                                    stays in `aborted`)
/// ```
///
/// Only `Active` versions carry a live lease; a `Completed` update is
/// the version manager's responsibility (the writer did its part) and
/// can never expire or abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum UpdateState {
    /// Assigned; the writer holds the lease and is (presumed) working.
    Active,
    /// Metadata fully written; waiting for lower versions to publish.
    Completed,
    /// Lease expired or abort requested; the no-op repair tree that
    /// keeps later versions' border references resolvable is being
    /// built. Retryable: a failed repair leaves the state here.
    Aborting,
    /// Repair durable; the version will be skipped by the next drain.
    Aborted,
}

/// An update that has been assigned a version but not yet published.
/// The VM keeps its range and root so it can compute partial border
/// sets for later concurrent writers (paper §4.2: such operations "have
/// been assigned a version number ... but they have not been published
/// yet"), and so an abort can rebuild the exact node skeleton the dead
/// writer was expected to create.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Inflight {
    pub range: PageRange,
    pub root: NodePos,
    pub state: UpdateState,
    /// Logical-clock tick at which the writer's lease lapses (only
    /// meaningful while `state == Active`).
    pub lease_expires: u64,
}

/// Mutable per-blob state, guarded by one mutex per blob so different
/// blobs never contend.
pub(crate) struct BlobInner {
    pub lineage: Lineage,
    /// `sizes[k]` = byte size of snapshot `k`; `sizes.len()-1` is the
    /// latest *assigned* version.
    pub sizes: Vec<u64>,
    /// Latest version the publication frontier has passed. Every
    /// version `≤ published` is either published or aborted (see
    /// [`BlobInner::aborted`]); use [`BlobInner::recent_readable`] for
    /// the newest version a reader may open.
    pub published: Version,
    /// Assigned-but-unpublished updates, keyed by raw version.
    pub inflight: BTreeMap<u64, Inflight>,
    /// Versions skipped by the total order: their writers died (or
    /// aborted) before completing. Never readable; kept forever (same
    /// order as `sizes`) so reads and branches stay typed.
    pub aborted: BTreeSet<u64>,
    /// Versions `1..retired_before` were reclaimed by garbage
    /// collection and are no longer readable.
    pub retired_before: Version,
    /// Bumped every time a retire actually advances `retired_before`.
    /// The scrubber's per-blob conflict token: a mark walk that hits
    /// missing metadata re-reads this generation — changed means a
    /// concurrent `retire_versions` swept nodes out from under the
    /// walk, and the mark of *this blob alone* restarts from a fresh
    /// cut instead of failing the whole pass.
    pub retire_gen: u64,
    /// Branch points of direct children — they pin the shared history
    /// against garbage collection.
    pub child_branch_points: Vec<Version>,
}

impl BlobInner {
    pub fn new(lineage: Lineage) -> Self {
        BlobInner {
            lineage,
            sizes: vec![0],
            published: Version::ZERO,
            inflight: BTreeMap::new(),
            aborted: BTreeSet::new(),
            retired_before: Version::ZERO,
            retire_gen: 0,
            child_branch_points: Vec::new(),
        }
    }

    /// Fork of `parent` at published version `at` for blob `child`.
    pub fn branched(parent: &BlobInner, at: Version, lineage: Lineage) -> Self {
        BlobInner {
            lineage,
            sizes: parent.sizes[..=at.raw() as usize].to_vec(),
            published: at,
            inflight: BTreeMap::new(),
            // Shared history keeps its holes: an aborted version is
            // aborted in every branch that inherits it.
            aborted: parent.aborted.range(..=at.raw()).copied().collect(),
            // The child's shared history is exactly as retired as the
            // parent's was at fork time.
            retired_before: parent.retired_before,
            // Its conflict token starts fresh: generations are per-blob
            // restart tokens, not lineage history.
            retire_gen: 0,
            child_branch_points: Vec::new(),
        }
    }

    /// `true` when `v` has been garbage-collected.
    pub fn is_retired(&self, v: Version) -> bool {
        v > Version::ZERO && v < self.retired_before
    }

    /// `true` when `v` was aborted (writer died before completion) —
    /// including while its repair is still in progress.
    pub fn is_aborted(&self, v: Version) -> bool {
        self.aborted.contains(&v.raw())
    }

    /// Latest assigned version.
    pub fn last_assigned(&self) -> Version {
        Version(self.sizes.len() as u64 - 1)
    }

    /// Newest version a reader may open: the publication frontier,
    /// walked down past aborted holes *and* retired history (snapshot
    /// 0 is never aborted nor retired, so this always terminates on a
    /// readable version). Retirement matters when the caller retires
    /// up to an aborted hole at the head of the order: the walk then
    /// falls through to the empty snapshot 0 rather than returning a
    /// version that reads as `VersionRetired`.
    pub fn recent_readable(&self) -> Version {
        let mut v = self.published;
        while v > Version::ZERO && (self.is_aborted(v) || self.is_retired(v)) {
            v = Version(v.raw() - 1);
        }
        v
    }

    /// Size in bytes of snapshot `v` (caller validates `v` assigned).
    pub fn size_of(&self, v: Version) -> u64 {
        self.sizes[v.raw() as usize]
    }

    /// Root position of snapshot `v`'s tree.
    pub fn root_pos_of(&self, v: Version, psize: u64) -> NodePos {
        NodePos::root_for(div_ceil(self.size_of(v), psize))
    }

    /// Root reference of snapshot `v`, or `None` when it is empty (the
    /// empty snapshot 0 — and only it — has no tree).
    pub fn root_of(&self, v: Version, psize: u64) -> Option<RootRef> {
        (self.size_of(v) > 0).then(|| RootRef { version: v, pos: self.root_pos_of(v, psize) })
    }

    /// `true` when any lease has lapsed (or an abort is stuck mid
    /// repair and should be retried) as of logical tick `now`. (The
    /// manager's production checks go through [`Self::expired_leases`]
    /// directly; this predicate form serves the unit tests.)
    #[cfg(test)]
    pub fn has_expired(&self, now: u64) -> bool {
        !self.expired_leases(now, None).is_empty()
    }

    /// Versions whose lease has lapsed as of `now` — plus any version
    /// stuck mid-abort — ascending, optionally restricted to versions
    /// strictly below `limit`.
    pub fn expired_leases(&self, now: u64, limit: Option<Version>) -> Vec<Version> {
        let upto = limit.map_or(u64::MAX, |v| v.raw());
        self.inflight
            .range(..upto)
            .filter(|(_, inf)| match inf.state {
                UpdateState::Active => inf.lease_expires <= now,
                UpdateState::Aborting => true,
                UpdateState::Completed | UpdateState::Aborted => false,
            })
            .map(|(&v, _)| Version(v))
            .collect()
    }

    /// Earliest lease expiry among live (`Active`) updates, or
    /// `u64::MAX` when none is live — the per-blob input to the
    /// version manager's expiry watermark.
    pub fn earliest_expiry(&self) -> u64 {
        self.inflight
            .values()
            .filter(|inf| inf.state == UpdateState::Active)
            .map(|inf| inf.lease_expires)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The blob's hot triple as seqlock words:
    /// `[latest readable version, its byte size, its root span in
    /// pages]` (span 0 for the empty snapshot, which has no tree).
    /// All three are derivable from the newest readable version, but
    /// they are published as independent words precisely so a torn
    /// observation is *detectable* — the stress suite's oracle matches
    /// whole triples, not reconstructible fields.
    pub fn hot_words(&self, psize: u64) -> [u64; 3] {
        let r = self.recent_readable();
        let size = self.size_of(r);
        let span = if size > 0 { self.root_pos_of(r, psize).size } else { 0 };
        [r.raw(), size, span]
    }

    /// Advance publication past every completed *or aborted* in-order
    /// update. Aborted versions are skipped: the frontier moves over
    /// them, they are dropped from the in-flight table, and they stay
    /// in [`BlobInner::aborted`] forever. Returns how many versions
    /// were `(published, skipped)`.
    pub fn drain_publishable(&mut self) -> (usize, usize) {
        let (mut published, mut skipped) = (0, 0);
        loop {
            let next = self.published.raw() + 1;
            match self.inflight.get(&next) {
                Some(inf) if inf.state == UpdateState::Completed => {
                    self.inflight.remove(&next);
                    self.published = Version(next);
                    published += 1;
                }
                Some(inf) if inf.state == UpdateState::Aborted => {
                    debug_assert!(self.aborted.contains(&next));
                    self.inflight.remove(&next);
                    self.published = Version(next);
                    skipped += 1;
                }
                _ => return (published, skipped),
            }
        }
    }
}

/// A blob's state cell: the inner data plus the condition variable on
/// which `SYNC` callers (and serialized-mode writers) wait for
/// publications, plus the lock-free read-path state — the seqlock-
/// published hot triple and an immutable lineage copy — that hot reads
/// touch without ever taking `inner`.
pub(crate) struct BlobState {
    pub inner: Mutex<BlobInner>,
    pub publish_cv: Condvar,
    /// Seqlock cell holding [`BlobInner::hot_words`]; republished under
    /// `inner`'s lock by every operation that can move the readable
    /// frontier (complete / commit_abort / begin_retire).
    pub hot: SeqLock<3>,
    /// A blob's lineage is fixed at creation (`Lineage::branch` reads
    /// the parent's, never mutates it), so hot readers may clone this
    /// copy without locking `inner`.
    pub lineage: Lineage,
}

impl BlobState {
    pub fn new(inner: BlobInner, psize: u64) -> Self {
        // Construction precedes sharing (the blob-map insert publishes
        // the Arc), so seeding the cell needs no protocol round.
        let hot = SeqLock::new(inner.hot_words(psize));
        let lineage = inner.lineage.clone();
        BlobState { inner: Mutex::new(inner), publish_cv: Condvar::new(), hot, lineage }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobId;

    fn inner() -> BlobInner {
        BlobInner::new(Lineage::root(BlobId(1)))
    }

    fn inflight(range: PageRange, root: NodePos, state: UpdateState) -> Inflight {
        Inflight { range, root, state, lease_expires: u64::MAX }
    }

    #[test]
    fn fresh_blob_is_empty_v0() {
        let b = inner();
        assert_eq!(b.last_assigned(), Version::ZERO);
        assert_eq!(b.published, Version::ZERO);
        assert_eq!(b.size_of(Version::ZERO), 0);
        assert!(b.root_of(Version::ZERO, 4).is_none());
        assert!(!b.has_expired(u64::MAX - 1));
    }

    #[test]
    fn drain_respects_order_and_completion() {
        let mut b = inner();
        b.sizes.extend([8, 16, 24]); // v1..v3 assigned
        b.inflight
            .insert(1, inflight(PageRange::new(0, 2), NodePos::new(0, 2), UpdateState::Active));
        b.inflight
            .insert(2, inflight(PageRange::new(2, 2), NodePos::new(0, 4), UpdateState::Completed));
        b.inflight
            .insert(3, inflight(PageRange::new(4, 2), NodePos::new(0, 8), UpdateState::Completed));
        // v1 incomplete: nothing publishes.
        assert_eq!(b.drain_publishable(), (0, 0));
        assert_eq!(b.published, Version(0));
        // Completing v1 releases all three.
        b.inflight.get_mut(&1).unwrap().state = UpdateState::Completed;
        assert_eq!(b.drain_publishable(), (3, 0));
        assert_eq!(b.published, Version(3));
        assert!(b.inflight.is_empty());
    }

    #[test]
    fn drain_skips_aborted_holes() {
        let mut b = inner();
        b.sizes.extend([8, 16, 24]);
        b.inflight
            .insert(1, inflight(PageRange::new(0, 2), NodePos::new(0, 2), UpdateState::Completed));
        b.inflight
            .insert(2, inflight(PageRange::new(2, 2), NodePos::new(0, 4), UpdateState::Aborted));
        b.aborted.insert(2);
        b.inflight
            .insert(3, inflight(PageRange::new(4, 2), NodePos::new(0, 8), UpdateState::Completed));
        assert_eq!(b.drain_publishable(), (2, 1));
        assert_eq!(b.published, Version(3));
        assert!(b.inflight.is_empty());
        assert!(b.is_aborted(Version(2)));
        assert_eq!(b.recent_readable(), Version(3));
    }

    #[test]
    fn drain_stops_at_aborting() {
        // An abort whose repair has not committed is not yet skippable.
        let mut b = inner();
        b.sizes.extend([8, 16]);
        b.inflight
            .insert(1, inflight(PageRange::new(0, 2), NodePos::new(0, 2), UpdateState::Aborting));
        b.aborted.insert(1);
        b.inflight
            .insert(2, inflight(PageRange::new(2, 2), NodePos::new(0, 4), UpdateState::Completed));
        assert_eq!(b.drain_publishable(), (0, 0));
        assert_eq!(b.published, Version(0));
        assert!(b.has_expired(0), "a stuck abort always wants a retry");
    }

    #[test]
    fn recent_readable_walks_past_trailing_holes() {
        let mut b = inner();
        b.sizes.extend([8, 16]);
        b.published = Version(2);
        b.aborted.insert(2);
        assert_eq!(b.recent_readable(), Version(1));
        b.aborted.insert(1);
        assert_eq!(b.recent_readable(), Version(0));
    }

    #[test]
    fn lease_expiry_is_per_state() {
        let mut b = inner();
        b.sizes.push(8);
        b.inflight.insert(
            1,
            Inflight {
                range: PageRange::new(0, 2),
                root: NodePos::new(0, 2),
                state: UpdateState::Active,
                lease_expires: 10,
            },
        );
        assert!(!b.has_expired(9));
        assert!(b.has_expired(10));
        b.inflight.get_mut(&1).unwrap().state = UpdateState::Completed;
        assert!(!b.has_expired(u64::MAX - 1), "completed updates never expire");
    }

    #[test]
    fn branched_state_copies_prefix() {
        let mut parent = inner();
        parent.sizes.extend([10, 20, 30]);
        parent.published = Version(3);
        parent.aborted.insert(1);
        parent.aborted.insert(3);
        let lineage = Lineage::branch(&parent.lineage, Version(2), BlobId(2));
        let child = BlobInner::branched(&parent, Version(2), lineage);
        assert_eq!(child.sizes, vec![0, 10, 20]);
        assert_eq!(child.published, Version(2));
        assert_eq!(child.last_assigned(), Version(2));
        // Holes in the shared prefix are inherited; later ones are not.
        assert!(child.is_aborted(Version(1)));
        assert!(!child.is_aborted(Version(3)));
    }

    #[test]
    fn root_positions_track_size() {
        let mut b = inner();
        b.sizes.push(9); // v1: 9 bytes, psize 4 → 3 pages → root (0,4)
        assert_eq!(b.root_pos_of(Version(1), 4), NodePos::new(0, 4));
        let r = b.root_of(Version(1), 4).unwrap();
        assert_eq!(r.version, Version(1));
        assert_eq!(r.pos, NodePos::new(0, 4));
    }
}
