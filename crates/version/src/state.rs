//! Per-blob bookkeeping held by the version manager.

use std::collections::BTreeMap;

use blobseer_meta::{Lineage, RootRef};
use blobseer_types::{div_ceil, NodePos, PageRange, Version};
use parking_lot::{Condvar, Mutex};

/// An update that has been assigned a version but not yet published.
/// The VM keeps its range and root so it can compute partial border
/// sets for later concurrent writers (paper §4.2: such operations "have
/// been assigned a version number ... but they have not been published
/// yet").
#[derive(Clone, Copy, Debug)]
pub(crate) struct Inflight {
    pub range: PageRange,
    pub root: NodePos,
    /// Metadata fully written; waiting for lower versions to publish.
    pub completed: bool,
}

/// Mutable per-blob state, guarded by one mutex per blob so different
/// blobs never contend.
pub(crate) struct BlobInner {
    pub lineage: Lineage,
    /// `sizes[k]` = byte size of snapshot `k`; `sizes.len()-1` is the
    /// latest *assigned* version.
    pub sizes: Vec<u64>,
    /// Latest published version.
    pub published: Version,
    /// Assigned-but-unpublished updates, keyed by raw version.
    pub inflight: BTreeMap<u64, Inflight>,
    /// Versions `1..retired_before` were reclaimed by garbage
    /// collection and are no longer readable.
    pub retired_before: Version,
    /// Branch points of direct children — they pin the shared history
    /// against garbage collection.
    pub child_branch_points: Vec<Version>,
}

impl BlobInner {
    pub fn new(lineage: Lineage) -> Self {
        BlobInner {
            lineage,
            sizes: vec![0],
            published: Version::ZERO,
            inflight: BTreeMap::new(),
            retired_before: Version::ZERO,
            child_branch_points: Vec::new(),
        }
    }

    /// Fork of `parent` at published version `at` for blob `child`.
    pub fn branched(parent: &BlobInner, at: Version, lineage: Lineage) -> Self {
        BlobInner {
            lineage,
            sizes: parent.sizes[..=at.raw() as usize].to_vec(),
            published: at,
            inflight: BTreeMap::new(),
            // The child's shared history is exactly as retired as the
            // parent's was at fork time.
            retired_before: parent.retired_before,
            child_branch_points: Vec::new(),
        }
    }

    /// `true` when `v` has been garbage-collected.
    pub fn is_retired(&self, v: Version) -> bool {
        v > Version::ZERO && v < self.retired_before
    }

    /// Latest assigned version.
    pub fn last_assigned(&self) -> Version {
        Version(self.sizes.len() as u64 - 1)
    }

    /// Size in bytes of snapshot `v` (caller validates `v` assigned).
    pub fn size_of(&self, v: Version) -> u64 {
        self.sizes[v.raw() as usize]
    }

    /// Root position of snapshot `v`'s tree.
    pub fn root_pos_of(&self, v: Version, psize: u64) -> NodePos {
        NodePos::root_for(div_ceil(self.size_of(v), psize))
    }

    /// Root reference of snapshot `v`, or `None` when it is empty (the
    /// empty snapshot 0 — and only it — has no tree).
    pub fn root_of(&self, v: Version, psize: u64) -> Option<RootRef> {
        (self.size_of(v) > 0).then(|| RootRef { version: v, pos: self.root_pos_of(v, psize) })
    }

    /// Advance publication past every completed in-order update.
    /// Returns how many versions were published.
    pub fn drain_publishable(&mut self) -> usize {
        let mut published = 0;
        loop {
            let next = self.published.raw() + 1;
            match self.inflight.get(&next) {
                Some(inf) if inf.completed => {
                    self.inflight.remove(&next);
                    self.published = Version(next);
                    published += 1;
                }
                _ => return published,
            }
        }
    }
}

/// A blob's state cell: the inner data plus the condition variable on
/// which `SYNC` callers (and serialized-mode writers) wait for
/// publications.
pub(crate) struct BlobState {
    pub inner: Mutex<BlobInner>,
    pub publish_cv: Condvar,
}

impl BlobState {
    pub fn new(inner: BlobInner) -> Self {
        BlobState { inner: Mutex::new(inner), publish_cv: Condvar::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobId;

    fn inner() -> BlobInner {
        BlobInner::new(Lineage::root(BlobId(1)))
    }

    #[test]
    fn fresh_blob_is_empty_v0() {
        let b = inner();
        assert_eq!(b.last_assigned(), Version::ZERO);
        assert_eq!(b.published, Version::ZERO);
        assert_eq!(b.size_of(Version::ZERO), 0);
        assert!(b.root_of(Version::ZERO, 4).is_none());
    }

    #[test]
    fn drain_respects_order_and_completion() {
        let mut b = inner();
        b.sizes.extend([8, 16, 24]); // v1..v3 assigned
        b.inflight.insert(
            1,
            Inflight { range: PageRange::new(0, 2), root: NodePos::new(0, 2), completed: false },
        );
        b.inflight.insert(
            2,
            Inflight { range: PageRange::new(2, 2), root: NodePos::new(0, 4), completed: true },
        );
        b.inflight.insert(
            3,
            Inflight { range: PageRange::new(4, 2), root: NodePos::new(0, 8), completed: true },
        );
        // v1 incomplete: nothing publishes.
        assert_eq!(b.drain_publishable(), 0);
        assert_eq!(b.published, Version(0));
        // Completing v1 releases all three.
        b.inflight.get_mut(&1).unwrap().completed = true;
        assert_eq!(b.drain_publishable(), 3);
        assert_eq!(b.published, Version(3));
        assert!(b.inflight.is_empty());
    }

    #[test]
    fn branched_state_copies_prefix() {
        let mut parent = inner();
        parent.sizes.extend([10, 20, 30]);
        parent.published = Version(3);
        let lineage = Lineage::branch(&parent.lineage, Version(2), BlobId(2));
        let child = BlobInner::branched(&parent, Version(2), lineage);
        assert_eq!(child.sizes, vec![0, 10, 20]);
        assert_eq!(child.published, Version(2));
        assert_eq!(child.last_assigned(), Version(2));
    }

    #[test]
    fn root_positions_track_size() {
        let mut b = inner();
        b.sizes.push(9); // v1: 9 bytes, psize 4 → 3 pages → root (0,4)
        assert_eq!(b.root_pos_of(Version(1), 4), NodePos::new(0, 4));
        let r = b.root_of(Version(1), 4).unwrap();
        assert_eq!(r.version, Version(1));
        assert_eq!(r.pos, NodePos::new(0, 4));
    }
}
