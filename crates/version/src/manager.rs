//! The version manager proper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blobseer_meta::plan::{border_positions, creates_position};
use blobseer_meta::{Lineage, RootRef};
use blobseer_types::{div_ceil, BlobError, BlobId, ByteRange, NodePos, PageRange, Result, Version};
use parking_lot::RwLock;

use crate::state::{BlobInner, BlobState, Inflight};

/// How writers interact with concurrent metadata builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// The paper's scheme: writers get partial border sets and build
    /// metadata concurrently (§4.2).
    Concurrent,
    /// Ablation baseline: a writer's version assignment blocks until
    /// all lower versions have *published*, so metadata builds are
    /// serialized version by version. Measured by experiment E5.
    SerializedMetadata,
}

/// The update type being registered (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Replace `size` bytes starting at `offset`.
    Write {
        /// Absolute byte offset (must be ≤ the previous snapshot size).
        offset: u64,
        /// Bytes written.
        size: u64,
    },
    /// Append `size` bytes at the end of the previous snapshot ("the
    /// offset is implicitly assumed to be the size of snapshot va − 1").
    Append {
        /// Bytes appended.
        size: u64,
    },
}

/// The version manager's reply to an update registration: everything the
/// writer needs to build and weave its metadata (paper §4.2).
#[derive(Clone, Debug)]
pub struct AssignedUpdate {
    /// Assigned snapshot version `vw`.
    pub vw: Version,
    /// Resolved byte offset of the update.
    pub offset: u64,
    /// Byte size of the update.
    pub size: u64,
    /// Size of snapshot `vw − 1` in bytes.
    pub prev_size: u64,
    /// Size of snapshot `vw` in bytes.
    pub new_size: u64,
    /// Pages covered by the update.
    pub range: PageRange,
    /// Root position of the new tree.
    pub new_root: NodePos,
    /// Partial border set: positions that in-flight lower-versioned
    /// updates will create, with the creating version (§4.2).
    pub overrides: Vec<(NodePos, Version)>,
    /// Root of the latest *published* snapshot (the "recently published
    /// snapshot version" of §4.2); `None` while nothing non-empty is
    /// published.
    pub ref_root: Option<RootRef>,
    /// Root of snapshot `vw − 1` (possibly still in flight); used by the
    /// unaligned-write merge path. `None` when `vw − 1` is empty.
    pub prev_root: Option<RootRef>,
}

/// Everything a reader needs to serve any number of reads of one
/// published snapshot: resolved once, under a single acquisition of the
/// blob's lock, and valid forever (snapshots are immutable).
///
/// This is the cache behind `blobseer`'s `Snapshot` handle: constructing
/// the handle costs one VM round-trip, after which reads never consult
/// the version manager again.
#[derive(Clone, Debug)]
pub struct ReadView {
    /// Size of the snapshot in bytes.
    pub size: u64,
    /// Tree root, `None` for the empty snapshot.
    pub root: Option<RootRef>,
    /// The blob's lineage (for metadata key resolution across branches).
    pub lineage: Lineage,
}

/// Counters exposed for the E6 micro-experiment (VM work is claimed to
/// be "negligible when compared to the full operation", §4.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Blobs registered.
    pub blobs: u64,
    /// Updates assigned.
    pub assigned: u64,
    /// Versions published.
    pub published: u64,
    /// Branches created.
    pub branches: u64,
    /// Read-view resolutions served ([`VersionManager::read_view`] +
    /// [`VersionManager::snapshot_view`]). Version-pinned `Snapshot`
    /// reads must not move this counter after construction — asserted
    /// by the engine's tests.
    pub read_views: u64,
}

/// The centralized version manager.
pub struct VersionManager {
    psize: u64,
    mode: ConcurrencyMode,
    publish_wait: Duration,
    blobs: RwLock<HashMap<BlobId, Arc<BlobState>>>,
    next_blob: AtomicU64,
    assigned: AtomicU64,
    published: AtomicU64,
    branches: AtomicU64,
    read_views: AtomicU64,
}

impl VersionManager {
    /// VM for a deployment with the given page size.
    pub fn new(psize: u64, mode: ConcurrencyMode, publish_wait: Duration) -> Self {
        assert!(psize.is_power_of_two(), "page size must be a power of two");
        VersionManager {
            psize,
            mode,
            publish_wait,
            blobs: RwLock::new(HashMap::new()),
            next_blob: AtomicU64::new(1),
            assigned: AtomicU64::new(0),
            published: AtomicU64::new(0),
            branches: AtomicU64::new(0),
            read_views: AtomicU64::new(0),
        }
    }

    /// Page size the VM was configured with.
    pub fn page_size(&self) -> u64 {
        self.psize
    }

    /// Configured concurrency mode.
    pub fn mode(&self) -> ConcurrencyMode {
        self.mode
    }

    fn blob_state(&self, blob: BlobId) -> Result<Arc<BlobState>> {
        self.blobs.read().get(&blob).cloned().ok_or(BlobError::BlobNotFound(blob))
    }

    /// `CREATE`: register a new blob with the empty snapshot 0.
    pub fn create(&self) -> BlobId {
        let id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(BlobState::new(BlobInner::new(Lineage::root(id))));
        self.blobs.write().insert(id, state);
        id
    }

    /// `BRANCH(id, v)`: fork a blob at a *published* version. The new
    /// blob shares all data and metadata up to (and including) `v`.
    pub fn branch(&self, blob: BlobId, at: Version) -> Result<BlobId> {
        let state = self.blob_state(blob)?;
        let mut parent = state.inner.lock();
        if at > parent.published {
            return Err(BlobError::VersionNotPublished { blob, version: at });
        }
        if parent.is_retired(at) {
            return Err(BlobError::VersionRetired { blob, version: at });
        }
        let child_id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let lineage = Lineage::branch(&parent.lineage, at, child_id);
        let child = BlobInner::branched(&parent, at, lineage);
        parent.child_branch_points.push(at);
        drop(parent);
        self.blobs.write().insert(child_id, Arc::new(BlobState::new(child)));
        self.branches.fetch_add(1, Ordering::Relaxed);
        Ok(child_id)
    }

    /// Register an update and assign it the next snapshot version
    /// (Algorithm 2 line 10 plus the §4.2 border-set supply).
    pub fn assign(&self, blob: BlobId, kind: UpdateKind) -> Result<AssignedUpdate> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();

        let prev_size = *inner.sizes.last().expect("sizes non-empty");
        let (offset, size) = match kind {
            UpdateKind::Write { offset, size } => {
                if offset > prev_size {
                    return Err(BlobError::WriteBeyondEnd {
                        blob,
                        offset,
                        snapshot_size: prev_size,
                    });
                }
                (offset, size)
            }
            UpdateKind::Append { size } => (prev_size, size),
        };
        if size == 0 {
            return Err(BlobError::EmptyUpdate);
        }

        let vw = Version(inner.sizes.len() as u64);
        let new_size = prev_size.max(offset + size);
        let range = ByteRange::new(offset, size).pages(self.psize);
        let new_root = NodePos::root_for(div_ceil(new_size, self.psize));

        // Partial border set: for each border position, the *highest*
        // in-flight (assigned, unpublished) version creating a node
        // there. Iterating the BTreeMap ascending makes "last match
        // wins" select the maximum.
        let mut overrides = Vec::new();
        if self.mode == ConcurrencyMode::Concurrent {
            for pos in border_positions(range, new_root) {
                let mut best: Option<Version> = None;
                for (&vk, inf) in inner.inflight.iter() {
                    if creates_position(inf.range, inf.root, pos) {
                        best = Some(Version(vk));
                    }
                }
                if let Some(v) = best {
                    overrides.push((pos, v));
                }
            }
        }

        inner.sizes.push(new_size);
        inner.inflight.insert(vw.raw(), Inflight { range, root: new_root, completed: false });
        self.assigned.fetch_add(1, Ordering::Relaxed);

        if self.mode == ConcurrencyMode::SerializedMetadata {
            // Ablation: hold the writer until every lower version has
            // published, so its border resolution needs no overrides.
            let deadline = Instant::now() + self.publish_wait;
            while inner.published.next() != vw {
                if state.publish_cv.wait_until(&mut inner, deadline).timed_out() {
                    return Err(BlobError::Timeout("serialized publication order"));
                }
            }
        }

        let ref_root = inner.root_of(inner.published, self.psize);
        let prev_root = inner.root_of(vw.prev().expect("vw ≥ 1"), self.psize);
        Ok(AssignedUpdate {
            vw,
            offset,
            size,
            prev_size,
            new_size,
            range,
            new_root,
            overrides,
            ref_root,
            prev_root,
        })
    }

    /// Writer notification that metadata for `vw` is durable
    /// (Algorithm 2 line 12). The VM "takes the responsibility of
    /// eventually publishing vw": it publishes as soon as all lower
    /// versions are published, preserving total order.
    pub fn complete(&self, blob: BlobId, vw: Version) -> Result<()> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        match inner.inflight.get_mut(&vw.raw()) {
            Some(inf) if !inf.completed => inf.completed = true,
            Some(_) => {
                return Err(BlobError::Internal(format!("{vw} completed twice")));
            }
            None => {
                return Err(BlobError::VersionUnknown { blob, version: vw });
            }
        }
        let n = inner.drain_publishable();
        if n > 0 {
            self.published.fetch_add(n as u64, Ordering::Relaxed);
            state.publish_cv.notify_all();
        }
        Ok(())
    }

    /// `GET_RECENT`: a recently published version (monotonic, hence ≥
    /// every version published before the call).
    pub fn get_recent(&self, blob: BlobId) -> Result<Version> {
        Ok(self.blob_state(blob)?.inner.lock().published)
    }

    /// `true` when `v` is published for `blob`.
    pub fn is_published(&self, blob: BlobId, v: Version) -> Result<bool> {
        Ok(v <= self.blob_state(blob)?.inner.lock().published)
    }

    /// `GET_SIZE`: size of a *published* snapshot.
    pub fn get_size(&self, blob: BlobId, v: Version) -> Result<u64> {
        let state = self.blob_state(blob)?;
        let inner = state.inner.lock();
        if v > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: v });
        }
        if inner.is_retired(v) {
            return Err(BlobError::VersionRetired { blob, version: v });
        }
        Ok(inner.size_of(v))
    }

    /// Everything a READ needs: the snapshot size and tree root of a
    /// published version (`None` root for the empty snapshot 0).
    pub fn read_view(&self, blob: BlobId, v: Version) -> Result<(u64, Option<RootRef>)> {
        let view = self.snapshot_view(blob, v)?;
        Ok((view.size, view.root))
    }

    /// [`VersionManager::read_view`] plus the blob's lineage, resolved
    /// under a *single* acquisition of the blob's lock. This is the
    /// one-time lookup a version-pinned `Snapshot` caches; all
    /// subsequent reads of that snapshot are VM-free.
    pub fn snapshot_view(&self, blob: BlobId, v: Version) -> Result<ReadView> {
        self.read_views.fetch_add(1, Ordering::Relaxed);
        let state = self.blob_state(blob)?;
        let inner = state.inner.lock();
        if v > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: v });
        }
        if inner.is_retired(v) {
            return Err(BlobError::VersionRetired { blob, version: v });
        }
        Ok(ReadView {
            size: inner.size_of(v),
            root: inner.root_of(v, self.psize),
            lineage: inner.lineage.clone(),
        })
    }

    /// `SYNC`: block until `v` is published or `timeout` elapses.
    pub fn sync(&self, blob: BlobId, v: Version, timeout: Duration) -> Result<()> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if v > inner.last_assigned() {
            return Err(BlobError::VersionUnknown { blob, version: v });
        }
        let deadline = Instant::now() + timeout;
        while inner.published < v {
            if state.publish_cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(BlobError::Timeout("snapshot publication"));
            }
        }
        Ok(())
    }

    /// Begin garbage collection: retire every version `< keep_from`.
    ///
    /// Preconditions (all typed errors, nothing partial happens on
    /// failure): `keep_from` must be published; no update may be in
    /// flight (quiescence — the sweep must not race border
    /// resolution); no live branch may pin history below `keep_from`.
    ///
    /// On success the retired versions immediately become unreadable
    /// ([`BlobError::VersionRetired`]) and the *mark roots* — the tree
    /// roots of every retained, non-empty snapshot — are returned for
    /// the caller's mark-and-sweep.
    pub fn begin_retire(&self, blob: BlobId, keep_from: Version) -> Result<Vec<RootRef>> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if keep_from > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: keep_from });
        }
        if !inner.inflight.is_empty() {
            return Err(BlobError::GcConflict(format!(
                "{} update(s) in flight; GC requires quiescence",
                inner.inflight.len()
            )));
        }
        if let Some(&pin) = inner.child_branch_points.iter().min() {
            if pin < keep_from {
                return Err(BlobError::GcConflict(format!(
                    "a branch pins history at {pin} (< {keep_from})"
                )));
            }
        }
        if keep_from <= inner.retired_before {
            // Nothing new to retire.
            return Ok(Vec::new());
        }
        inner.retired_before = keep_from;
        let roots = (keep_from.raw()..=inner.published.raw())
            .filter_map(|v| inner.root_of(Version(v), self.psize))
            .collect();
        Ok(roots)
    }

    /// The earliest readable version of `blob` (`v0` when nothing has
    /// been retired).
    pub fn retired_before(&self, blob: BlobId) -> Result<Version> {
        Ok(self.blob_state(blob)?.inner.lock().retired_before)
    }

    /// The blob's lineage (for metadata key resolution).
    pub fn lineage(&self, blob: BlobId) -> Result<Lineage> {
        Ok(self.blob_state(blob)?.inner.lock().lineage.clone())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VmStats {
        VmStats {
            blobs: self.blobs.read().len() as u64,
            assigned: self.assigned.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            branches: self.branches.load(Ordering::Relaxed),
            read_views: self.read_views.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for VersionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionManager")
            .field("psize", &self.psize)
            .field("mode", &self.mode)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSIZE: u64 = 4;

    fn vm() -> VersionManager {
        VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5))
    }

    #[test]
    fn create_starts_empty() {
        let vm = vm();
        let b = vm.create();
        assert_eq!(vm.get_recent(b).unwrap(), Version::ZERO);
        assert_eq!(vm.get_size(b, Version::ZERO).unwrap(), 0);
        let (size, root) = vm.read_view(b, Version::ZERO).unwrap();
        assert_eq!(size, 0);
        assert!(root.is_none());
    }

    #[test]
    fn unknown_blob_errors() {
        let vm = vm();
        let ghost = BlobId(999);
        assert!(matches!(vm.get_recent(ghost), Err(BlobError::BlobNotFound(_))));
        assert!(vm.assign(ghost, UpdateKind::Append { size: 4 }).is_err());
    }

    #[test]
    fn assign_sequences_versions_and_sizes() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a1.vw, Version(1));
        assert_eq!(a1.offset, 0);
        assert_eq!(a1.new_size, 8);
        assert_eq!(a1.range, PageRange::new(0, 2));
        assert_eq!(a1.new_root, NodePos::new(0, 2));
        assert!(a1.ref_root.is_none(), "nothing published yet");
        assert!(a1.prev_root.is_none(), "v0 is empty");

        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(a2.vw, Version(2));
        assert_eq!(a2.offset, 8, "append offset = previous assigned size");
        assert_eq!(a2.new_size, 12);
        assert_eq!(a2.new_root, NodePos::new(0, 4));
        // v1 not yet complete → prev root refers to the in-flight v1.
        assert_eq!(a2.prev_root.unwrap().version, Version(1));
    }

    #[test]
    fn write_validation() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(
            vm.assign(b, UpdateKind::Write { offset: 1, size: 4 }),
            Err(BlobError::WriteBeyondEnd { .. })
        ));
        assert!(matches!(
            vm.assign(b, UpdateKind::Append { size: 0 }),
            Err(BlobError::EmptyUpdate)
        ));
        vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        // Offset equal to the assigned (unpublished) size is allowed:
        // updates chain on assigned order, not publication order.
        let a = vm.assign(b, UpdateKind::Write { offset: 8, size: 4 }).unwrap();
        assert_eq!(a.vw, Version(2));
        // Overwrite within bounds does not grow the blob.
        let a3 = vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap();
        assert_eq!(a3.new_size, 12);
    }

    #[test]
    fn publication_is_total_order() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let a3 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        // Completing out of order publishes nothing until the gap fills.
        vm.complete(b, a3.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(0));
        vm.complete(b, a2.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(0));
        vm.complete(b, a1.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(3));
        // Published sizes now visible.
        assert_eq!(vm.get_size(b, Version(2)).unwrap(), 8);
    }

    #[test]
    fn get_size_requires_publication() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(matches!(vm.get_size(b, a1.vw), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        assert_eq!(vm.get_size(b, a1.vw).unwrap(), 4);
    }

    #[test]
    fn complete_validation() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(vm.complete(b, Version(1)), Err(BlobError::VersionUnknown { .. })));
        let a = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a.vw).unwrap();
        assert!(vm.complete(b, a.vw).is_err(), "double complete");
    }

    #[test]
    fn sync_blocks_until_publication() {
        let vm = Arc::new(vm());
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let vm2 = Arc::clone(&vm);
        let waiter = std::thread::spawn(move || vm2.sync(b, Version(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        vm.complete(b, a1.vw).unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn sync_times_out_and_rejects_unknown() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(
            vm.sync(b, Version(5), Duration::from_millis(5)),
            Err(BlobError::VersionUnknown { .. })
        ));
        vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(
            vm.sync(b, Version(1), Duration::from_millis(10)),
            Err(BlobError::Timeout("snapshot publication"))
        );
    }

    #[test]
    fn overrides_point_to_inflight_creators() {
        // Replays the §4.2 scenario from the meta crate's concurrent
        // test, now with the VM computing the override itself.
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 16 }).unwrap(); // v1: 4 pages
        vm.complete(b, a1.vw).unwrap();
        // C1: v2 appends pages [4,6); stays in flight.
        let a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a2.range, PageRange::new(4, 2));
        assert!(a2.overrides.is_empty(), "borders all come from published v1");
        // C2: v3 appends pages [6,8); its border (4,2) is created by v2.
        let a3 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a3.range, PageRange::new(6, 2));
        assert_eq!(a3.overrides, vec![(NodePos::new(4, 2), Version(2))]);
        assert_eq!(a3.ref_root.unwrap().version, Version(1));
    }

    #[test]
    fn overrides_pick_highest_inflight_version() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 16 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        // Two in-flight overwrites of page 0; a third writer of page 2
        // needs border (0,2) → must take the *newest* in-flight creator.
        vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap(); // v2
        vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap(); // v3
        let a4 = vm.assign(b, UpdateKind::Write { offset: 8, size: 4 }).unwrap(); // v4
        assert!(a4.overrides.contains(&(NodePos::new(0, 2), Version(3))));
        assert!(!a4.overrides.iter().any(|&(_, v)| v == Version(2)));
    }

    #[test]
    fn branch_requires_published_version() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(matches!(vm.branch(b, Version(1)), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        let c = vm.branch(b, Version(1)).unwrap();
        assert_ne!(c, b);
        assert_eq!(vm.get_recent(c).unwrap(), Version(1));
        assert_eq!(vm.get_size(c, Version(1)).unwrap(), 4);
        // The branch evolves independently.
        let ac = vm.assign(c, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(ac.vw, Version(2));
        vm.complete(c, ac.vw).unwrap();
        assert_eq!(vm.get_size(c, Version(2)).unwrap(), 8);
        assert_eq!(vm.get_recent(b).unwrap(), Version(1), "parent unaffected");
        // Lineage resolves shared versions to the parent.
        let lin = vm.lineage(c).unwrap();
        assert_eq!(lin.owner_of(Version(1)), b);
        assert_eq!(lin.owner_of(Version(2)), c);
    }

    #[test]
    fn serialized_mode_blocks_until_predecessor_publishes() {
        let vm = Arc::new(VersionManager::new(
            PSIZE,
            ConcurrencyMode::SerializedMetadata,
            Duration::from_secs(5),
        ));
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(a1.overrides.is_empty());
        let vm2 = Arc::clone(&vm);
        let t0 = Instant::now();
        let second = std::thread::spawn(move || {
            let a2 = vm2.assign(b, UpdateKind::Append { size: 4 }).unwrap();
            (a2, Instant::now())
        });
        std::thread::sleep(Duration::from_millis(40));
        vm.complete(b, a1.vw).unwrap();
        let (a2, done) = second.join().unwrap();
        assert!(done - t0 >= Duration::from_millis(40), "assign was blocked");
        assert!(a2.overrides.is_empty());
        assert_eq!(a2.ref_root.unwrap().version, Version(1));
    }

    #[test]
    fn concurrent_assign_storm_is_gapless() {
        let vm = Arc::new(vm());
        let b = vm.create();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vm = Arc::clone(&vm);
            handles.push(std::thread::spawn(move || {
                let mut versions = Vec::new();
                for _ in 0..50 {
                    let a = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
                    versions.push(a.vw);
                    vm.complete(b, a.vw).unwrap();
                }
                versions
            }));
        }
        let mut all: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).map(|v| v.raw()).collect();
        all.sort_unstable();
        assert_eq!(all, (1..=400).collect::<Vec<u64>>(), "dense, unique versions");
        assert_eq!(vm.get_recent(b).unwrap(), Version(400));
        assert_eq!(vm.get_size(b, Version(400)).unwrap(), 1600);
        let stats = vm.stats();
        assert_eq!(stats.assigned, 400);
        assert_eq!(stats.published, 400);
    }

    #[test]
    fn retire_validates_and_marks() {
        let vm = vm();
        let b = vm.create();
        for _ in 0..5 {
            let a = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
            vm.complete(b, a.vw).unwrap();
        }
        // Unpublished keep_from rejected.
        assert!(matches!(
            vm.begin_retire(b, Version(9)),
            Err(BlobError::VersionNotPublished { .. })
        ));
        // Quiescence required.
        let inflight = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert!(matches!(vm.begin_retire(b, Version(3)), Err(BlobError::GcConflict(_))));
        vm.complete(b, inflight.vw).unwrap();
        // Success: roots of v3..=v6 returned, v1..v2 retired.
        let roots = vm.begin_retire(b, Version(3)).unwrap();
        assert_eq!(roots.len(), 4);
        assert_eq!(roots[0].version, Version(3));
        assert_eq!(vm.retired_before(b).unwrap(), Version(3));
        assert!(matches!(vm.get_size(b, Version(2)), Err(BlobError::VersionRetired { .. })));
        assert!(matches!(vm.read_view(b, Version(1)), Err(BlobError::VersionRetired { .. })));
        assert!(vm.get_size(b, Version(3)).is_ok());
        // Re-retiring below the watermark is a no-op.
        assert!(vm.begin_retire(b, Version(2)).unwrap().is_empty());
        // Branching at a retired version is rejected.
        assert!(matches!(vm.branch(b, Version(1)), Err(BlobError::VersionRetired { .. })));
    }

    #[test]
    fn branches_pin_history_against_gc() {
        let vm = vm();
        let b = vm.create();
        for _ in 0..4 {
            let a = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
            vm.complete(b, a.vw).unwrap();
        }
        let _child = vm.branch(b, Version(2)).unwrap();
        assert!(matches!(vm.begin_retire(b, Version(4)), Err(BlobError::GcConflict(_))));
        // Retiring up to (and including protection of) the pin is fine.
        assert_eq!(vm.begin_retire(b, Version(2)).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_view_resolves_once_and_counts() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 9 }).unwrap();
        // Unpublished versions are not viewable.
        assert!(matches!(vm.snapshot_view(b, a1.vw), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        let view = vm.snapshot_view(b, a1.vw).unwrap();
        assert_eq!(view.size, 9);
        let root = view.root.unwrap();
        assert_eq!(root.version, a1.vw);
        assert_eq!(root.pos, NodePos::new(0, 4)); // 9 B at psize 4 → 3 pages
        assert_eq!(view.lineage.owner_of(a1.vw), b);
        // Both view entry points move the read_views counter; nothing
        // else does.
        let before = vm.stats().read_views;
        vm.read_view(b, a1.vw).unwrap();
        vm.snapshot_view(b, a1.vw).unwrap();
        vm.get_size(b, a1.vw).unwrap();
        vm.get_recent(b).unwrap();
        assert_eq!(vm.stats().read_views, before + 2);
    }

    #[test]
    fn append_offsets_chain_across_inflight_versions() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 6 }).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 6 }).unwrap();
        // a2 starts where a1 *will* end, even though a1 is unpublished.
        assert_eq!(a2.offset, 6);
        assert_eq!(a2.new_size, 12);
        vm.complete(b, a1.vw).unwrap();
        vm.complete(b, a2.vw).unwrap();
        assert_eq!(vm.get_size(b, Version(2)).unwrap(), 12);
    }
}
