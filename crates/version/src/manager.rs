//! The version manager proper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blobseer_meta::plan::{border_positions, creates_position};
use blobseer_meta::{Lineage, RootRef};
use blobseer_types::{div_ceil, BlobError, BlobId, ByteRange, NodePos, PageRange, Result, Version};
use parking_lot::{Mutex, RwLock};

use crate::state::{BlobInner, BlobState, Inflight, UpdateState};

/// Shards in the blob registry. Power of two; blob ids are sequential,
/// so `id & (SHARDS - 1)` spreads unrelated blobs round-robin and
/// registry operations on different blobs stop serializing on one lock.
const BLOB_SHARDS: usize = 16;

/// The blob registry, sharded by blob id. Each shard is an independent
/// `RwLock<HashMap>`; lookups take one shard's read lock (shared, never
/// exclusive on the hot path), inserts one shard's write lock.
struct BlobShards {
    shards: Vec<RwLock<HashMap<BlobId, Arc<BlobState>>>>,
}

impl BlobShards {
    fn new() -> Self {
        BlobShards { shards: (0..BLOB_SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard(&self, id: BlobId) -> &RwLock<HashMap<BlobId, Arc<BlobState>>> {
        &self.shards[id.raw() as usize & (BLOB_SHARDS - 1)]
    }

    fn get(&self, id: BlobId) -> Option<Arc<BlobState>> {
        self.shard(id).read().get(&id).cloned()
    }

    fn insert(&self, id: BlobId, state: Arc<BlobState>) {
        self.shard(id).write().insert(id, state);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Snapshot of every registered blob. Not atomic across shards,
    /// which every caller (expiry scan, scrub cut) already tolerates —
    /// neither was atomic across blobs before sharding either.
    fn all(&self) -> Vec<(BlobId, Arc<BlobState>)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.read().iter().map(|(id, state)| (*id, Arc::clone(state))).collect::<Vec<_>>()
            })
            .collect()
    }
}

/// Test-only observer of seqlock publications:
/// `(blob, new sequence, published words)`, called under the blob's
/// mutex so the stress suite can build an exact oracle of every state
/// the cell ever held.
#[doc(hidden)]
pub type PublishProbe = Box<dyn Fn(BlobId, u64, [u64; 3]) + Send + Sync>;

/// Default writer-lease TTL in logical ticks, matching
/// `StoreConfig::default().lease_ttl_ticks` (the engine always passes
/// its configured value through [`VersionManager::with_lease_ttl`]).
pub const DEFAULT_LEASE_TTL_TICKS: u64 = 1 << 20;

/// How writers interact with concurrent metadata builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// The paper's scheme: writers get partial border sets and build
    /// metadata concurrently (§4.2).
    Concurrent,
    /// Ablation baseline: a writer's version assignment blocks until
    /// all lower versions have *published*, so metadata builds are
    /// serialized version by version. Measured by experiment E5.
    SerializedMetadata,
}

/// The update type being registered (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Replace `size` bytes starting at `offset`.
    Write {
        /// Absolute byte offset (must be ≤ the previous snapshot size).
        offset: u64,
        /// Bytes written.
        size: u64,
    },
    /// Append `size` bytes at the end of the previous snapshot ("the
    /// offset is implicitly assumed to be the size of snapshot va − 1").
    Append {
        /// Bytes appended.
        size: u64,
    },
}

/// The version manager's reply to an update registration: everything the
/// writer needs to build and weave its metadata (paper §4.2).
#[derive(Clone, Debug)]
pub struct AssignedUpdate {
    /// Assigned snapshot version `vw`.
    pub vw: Version,
    /// Resolved byte offset of the update.
    pub offset: u64,
    /// Byte size of the update.
    pub size: u64,
    /// Size of snapshot `vw − 1` in bytes.
    pub prev_size: u64,
    /// Size of snapshot `vw` in bytes.
    pub new_size: u64,
    /// Pages covered by the update.
    pub range: PageRange,
    /// Root position of the new tree.
    pub new_root: NodePos,
    /// Partial border set: positions that in-flight lower-versioned
    /// updates will create, with the creating version (§4.2).
    pub overrides: Vec<(NodePos, Version)>,
    /// Root of the latest *published* snapshot (the "recently published
    /// snapshot version" of §4.2); `None` while nothing non-empty is
    /// published.
    pub ref_root: Option<RootRef>,
    /// Root of snapshot `vw − 1` (possibly still in flight); used by the
    /// unaligned-write merge path. `None` when `vw − 1` is empty.
    pub prev_root: Option<RootRef>,
}

/// Everything a reader needs to serve any number of reads of one
/// published snapshot: resolved once, under a single acquisition of the
/// blob's lock, and valid forever (snapshots are immutable).
///
/// This is the cache behind `blobseer`'s `Snapshot` handle: constructing
/// the handle costs one VM round-trip, after which reads never consult
/// the version manager again.
#[derive(Clone, Debug)]
pub struct ReadView {
    /// Size of the snapshot in bytes.
    pub size: u64,
    /// Tree root, `None` for the empty snapshot.
    pub root: Option<RootRef>,
    /// The blob's lineage (for metadata key resolution across branches).
    pub lineage: Lineage,
}

/// Everything an abort needs to build the **repair tree** of a dead
/// writer's version: the exact node skeleton the writer was expected to
/// create (later versions' border sets already point into it), with the
/// weaving inputs recomputed as of abort time.
///
/// Returned by [`VersionManager::begin_abort`]; the caller stores a
/// no-op tree for `vw` — snapshot `vw − 1`'s bytes over the assigned
/// range, zero-extended to `new_size` — and then calls
/// [`VersionManager::commit_abort`] so the total order can skip the
/// hole.
#[derive(Clone, Debug)]
pub struct AbortTicket {
    /// The version being aborted.
    pub vw: Version,
    /// Pages the dead update was assigned (the repair tree must create
    /// exactly these leaves).
    pub range: PageRange,
    /// Root position of the dead update's tree.
    pub new_root: NodePos,
    /// Size of snapshot `vw − 1` in bytes.
    pub prev_size: u64,
    /// Size the dead update would have published (repair zero-extends
    /// to it, so later appends keep their assigned offsets).
    pub new_size: u64,
    /// Border overrides recomputed as of abort time. Identical in
    /// effect to what the dead writer was handed at assignment: both
    /// resolve each border position to the newest version `< vw`
    /// creating it — versions only move from in-flight to published,
    /// never disappear (aborted ones leave a repair tree behind).
    pub overrides: Vec<(NodePos, Version)>,
    /// Root of the latest published snapshot (always `< vw`).
    pub ref_root: Option<RootRef>,
    /// Root of snapshot `vw − 1` (possibly still in flight).
    pub prev_root: Option<RootRef>,
}

/// One blob's slice of the orphan scrubber's **mark cut**, captured
/// atomically under that blob's lock by [`VersionManager::scrub_cut`]:
/// everything the mark phase needs to enumerate the blob's live pages.
///
/// * [`BlobScrubCut::roots`] — trees the frontier has passed. These are
///   guaranteed complete (published versions by construction; aborted
///   versions only pass the frontier after their repair committed), so
///   the mark walks them with non-blocking fetches.
/// * [`BlobScrubCut::inflight`] — assigned-but-unpublished updates, in
///   *any* state (active, completed-waiting, aborting, aborted-but-
///   blocked). Their trees may be arbitrarily incomplete; the scrubber
///   probes each update's leaf positions directly and marks whatever
///   landed, because a durable leaf's page is referenced forever
///   (repair fills gaps, never overwrites).
#[derive(Clone, Debug)]
pub struct BlobScrubCut {
    /// The blob this cut describes.
    pub blob: BlobId,
    /// Its lineage, for metadata key resolution across branches.
    pub lineage: Lineage,
    /// Roots of every retained version the frontier has passed,
    /// ascending by version.
    pub roots: Vec<RootRef>,
    /// In-flight updates as `(version, assigned page range)` pairs,
    /// ascending by version.
    pub inflight: Vec<(Version, PageRange)>,
    /// The blob's retire generation at capture time
    /// ([`VersionManager::retire_generation`]). A marker that hits
    /// missing metadata compares this against the current generation:
    /// changed means a concurrent `retire_versions` swept nodes from
    /// under the walk — re-cut **this blob** and restart its mark;
    /// unchanged means genuinely incomplete metadata, a hard conflict.
    pub retire_gen: u64,
}

/// Counters exposed for the E6 micro-experiment (VM work is claimed to
/// be "negligible when compared to the full operation", §4.3) and for
/// the writer-fault-tolerance experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Blobs registered.
    pub blobs: u64,
    /// Updates assigned.
    pub assigned: u64,
    /// Versions published.
    pub published: u64,
    /// Branches created.
    pub branches: u64,
    /// Read-view resolutions served ([`VersionManager::read_view`] +
    /// [`VersionManager::snapshot_view`]). Version-pinned `Snapshot`
    /// reads must not move this counter after construction — asserted
    /// by the engine's tests.
    pub read_views: u64,
    /// Versions aborted (writer died or explicitly aborted); these were
    /// skipped by the total order, not published.
    pub aborted: u64,
    /// Lease renewals served to live writers.
    pub lease_renewals: u64,
    /// Hot-path reads served entirely from a blob's seqlock cell —
    /// no blob mutex taken. The engine's tests assert this counter
    /// moves in lockstep with hot reads, which is what *proves* (not
    /// just claims) the read path is lock-free.
    pub lockfree_reads: u64,
}

/// The centralized version manager.
pub struct VersionManager {
    psize: u64,
    mode: ConcurrencyMode,
    publish_wait: Duration,
    lease_ttl: u64,
    /// The lease clock: logical ticks, advanced by VM write-path
    /// operations (assign / renew / complete / abort) and by explicit
    /// [`VersionManager::advance_clock`] calls — never by wall time, so
    /// lease expiry is deterministic under test.
    clock: AtomicU64,
    /// Conservative lower bound on the earliest expiry of any live
    /// lease (`u64::MAX` when provably none). Lowered by `assign`;
    /// raised only by a full scan, and only when nobody lowered it
    /// meanwhile — so it may be stale-*low* (costing a spurious scan)
    /// but never stale-high past a grant. Lets the hot-path expiry
    /// check ([`VersionManager::has_expired_leases`] and friends) be a
    /// single atomic load while every lease is within TTL.
    lease_watermark: AtomicU64,
    /// Versions currently stuck in `Aborting` (a begun-but-uncommitted
    /// abort): sweep work that must stay visible regardless of the
    /// watermark.
    aborting: AtomicU64,
    blobs: BlobShards,
    next_blob: AtomicU64,
    assigned: AtomicU64,
    published: AtomicU64,
    branches: AtomicU64,
    read_views: AtomicU64,
    aborted: AtomicU64,
    renewals: AtomicU64,
    /// `false` routes every hot read through the blob mutex — the
    /// benchmarkable baseline behind `hot_blob_snapshot`'s A/B.
    lockfree: bool,
    lockfree_reads: AtomicU64,
    probe_armed: std::sync::atomic::AtomicBool,
    publish_probe: Mutex<Option<PublishProbe>>,
}

impl VersionManager {
    /// VM for a deployment with the given page size.
    pub fn new(psize: u64, mode: ConcurrencyMode, publish_wait: Duration) -> Self {
        assert!(psize.is_power_of_two(), "page size must be a power of two");
        VersionManager {
            psize,
            mode,
            publish_wait,
            lease_ttl: DEFAULT_LEASE_TTL_TICKS,
            clock: AtomicU64::new(0),
            lease_watermark: AtomicU64::new(u64::MAX),
            aborting: AtomicU64::new(0),
            blobs: BlobShards::new(),
            next_blob: AtomicU64::new(1),
            assigned: AtomicU64::new(0),
            published: AtomicU64::new(0),
            branches: AtomicU64::new(0),
            read_views: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            renewals: AtomicU64::new(0),
            lockfree: true,
            lockfree_reads: AtomicU64::new(0),
            probe_armed: std::sync::atomic::AtomicBool::new(false),
            publish_probe: Mutex::new(None),
        }
    }

    /// Enable or disable the seqlock hot read path (builder style; on
    /// by default). Disabled, every read resolves under the blob mutex
    /// — the baseline the `hot_blob_snapshot` bench compares against.
    pub fn with_lockfree_reads(mut self, enabled: bool) -> Self {
        self.lockfree = enabled;
        self
    }

    /// Set the writer-lease TTL in logical ticks (builder style; must
    /// be ≥ 1).
    pub fn with_lease_ttl(mut self, ticks: u64) -> Self {
        assert!(ticks >= 1, "lease TTL must be at least one tick");
        self.lease_ttl = ticks;
        self
    }

    /// Page size the VM was configured with.
    pub fn page_size(&self) -> u64 {
        self.psize
    }

    /// Configured concurrency mode.
    pub fn mode(&self) -> ConcurrencyMode {
        self.mode
    }

    /// Configured lease TTL in logical ticks.
    pub fn lease_ttl(&self) -> u64 {
        self.lease_ttl
    }

    /// Current logical-clock reading.
    pub fn now_ticks(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advance the lease clock by `ticks` (tests and deployments that
    /// map wall time to ticks call this; VM write ops tick implicitly).
    pub fn advance_clock(&self, ticks: u64) -> u64 {
        self.clock.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    fn tick(&self) -> u64 {
        self.advance_clock(1)
    }

    fn blob_state(&self, blob: BlobId) -> Result<Arc<BlobState>> {
        self.blobs.get(blob).ok_or(BlobError::BlobNotFound(blob))
    }

    /// Republish `blob`'s hot triple after an operation (made under the
    /// blob's mutex — `inner` is the held guard's target) that may have
    /// moved the readable frontier. Writer serialization for the
    /// seqlock comes from that mutex.
    fn republish(&self, blob: BlobId, state: &BlobState, inner: &BlobInner) {
        let words = inner.hot_words(self.psize);
        let seq = state.hot.publish(words);
        if self.probe_armed.load(Ordering::Relaxed) {
            if let Some(probe) = self.publish_probe.lock().as_ref() {
                probe(blob, seq, words);
            }
        }
    }

    /// `CREATE`: register a new blob with the empty snapshot 0.
    pub fn create(&self) -> BlobId {
        let id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(BlobState::new(BlobInner::new(Lineage::root(id)), self.psize));
        self.blobs.insert(id, state);
        id
    }

    /// `BRANCH(id, v)`: fork a blob at a *published* version. The new
    /// blob shares all data and metadata up to (and including) `v`.
    pub fn branch(&self, blob: BlobId, at: Version) -> Result<BlobId> {
        let state = self.blob_state(blob)?;
        let mut parent = state.inner.lock();
        if parent.is_aborted(at) {
            return Err(BlobError::VersionAborted { blob, version: at });
        }
        if at > parent.published {
            return Err(BlobError::VersionNotPublished { blob, version: at });
        }
        if parent.is_retired(at) {
            return Err(BlobError::VersionRetired { blob, version: at });
        }
        let child_id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let lineage = Lineage::branch(&parent.lineage, at, child_id);
        let child = BlobInner::branched(&parent, at, lineage);
        parent.child_branch_points.push(at);
        drop(parent);
        self.blobs.insert(child_id, Arc::new(BlobState::new(child, self.psize)));
        self.branches.fetch_add(1, Ordering::Relaxed);
        Ok(child_id)
    }

    /// Register an update and assign it the next snapshot version
    /// (Algorithm 2 line 10 plus the §4.2 border-set supply). The
    /// assignment grants the writer a **lease** of the configured TTL;
    /// see [`VersionManager::renew_lease`].
    pub fn assign(&self, blob: BlobId, kind: UpdateKind) -> Result<AssignedUpdate> {
        let now = self.tick();
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();

        let prev_size = *inner.sizes.last().expect("sizes non-empty");
        let (offset, size) = match kind {
            UpdateKind::Write { offset, size } => {
                if offset > prev_size {
                    return Err(BlobError::WriteBeyondEnd {
                        blob,
                        offset,
                        snapshot_size: prev_size,
                    });
                }
                (offset, size)
            }
            UpdateKind::Append { size } => (prev_size, size),
        };
        if size == 0 {
            return Err(BlobError::EmptyUpdate);
        }

        let vw = Version(inner.sizes.len() as u64);
        let new_size = prev_size.max(offset + size);
        let range = ByteRange::new(offset, size).pages(self.psize);
        let new_root = NodePos::root_for(div_ceil(new_size, self.psize));

        // Partial border set: for each border position, the *highest*
        // in-flight (assigned, unpublished) version creating a node
        // there. Iterating the BTreeMap ascending makes "last match
        // wins" select the maximum.
        let mut overrides = Vec::new();
        if self.mode == ConcurrencyMode::Concurrent {
            for pos in border_positions(range, new_root) {
                let mut best: Option<Version> = None;
                for (&vk, inf) in inner.inflight.iter() {
                    if creates_position(inf.range, inf.root, pos) {
                        best = Some(Version(vk));
                    }
                }
                if let Some(v) = best {
                    overrides.push((pos, v));
                }
            }
        }

        inner.sizes.push(new_size);
        let lease_expires = now + self.lease_ttl;
        inner.inflight.insert(
            vw.raw(),
            Inflight { range, root: new_root, state: UpdateState::Active, lease_expires },
        );
        self.lease_watermark.fetch_min(lease_expires, Ordering::Relaxed);
        self.assigned.fetch_add(1, Ordering::Relaxed);

        if self.mode == ConcurrencyMode::SerializedMetadata {
            // Ablation: hold the writer until every lower version has
            // published, so its border resolution needs no overrides.
            let deadline = Instant::now() + self.publish_wait;
            while inner.published.next() != vw {
                if inner.is_aborted(vw) {
                    // The sweeper presumed us dead while we waited.
                    return Err(BlobError::VersionAborted { blob, version: vw });
                }
                if state.publish_cv.wait_until(&mut inner, deadline).timed_out() {
                    return Err(BlobError::Timeout("serialized publication order"));
                }
            }
        }

        let ref_root = inner.root_of(inner.published, self.psize);
        let prev_root = inner.root_of(vw.prev().expect("vw ≥ 1"), self.psize);
        Ok(AssignedUpdate {
            vw,
            offset,
            size,
            prev_size,
            new_size,
            range,
            new_root,
            overrides,
            ref_root,
            prev_root,
        })
    }

    /// Writer notification that metadata for `vw` is durable
    /// (Algorithm 2 line 12). The VM "takes the responsibility of
    /// eventually publishing vw": it publishes as soon as all lower
    /// versions are published, preserving total order. Completion also
    /// retires the writer's lease — a completed version can no longer
    /// expire or abort. Fails with [`BlobError::VersionAborted`] when
    /// the sweeper already presumed this writer dead.
    pub fn complete(&self, blob: BlobId, vw: Version) -> Result<()> {
        self.tick();
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if let Some(inf) = inner.inflight.get_mut(&vw.raw()) {
            match inf.state {
                UpdateState::Active => inf.state = UpdateState::Completed,
                UpdateState::Completed => {
                    return Err(BlobError::Internal(format!("{vw} completed twice")));
                }
                UpdateState::Aborting | UpdateState::Aborted => {
                    return Err(BlobError::VersionAborted { blob, version: vw });
                }
            }
        } else if inner.is_aborted(vw) {
            return Err(BlobError::VersionAborted { blob, version: vw });
        } else {
            return Err(BlobError::VersionUnknown { blob, version: vw });
        }
        let (published, skipped) = inner.drain_publishable();
        if published > 0 {
            self.published.fetch_add(published as u64, Ordering::Relaxed);
        }
        if published + skipped > 0 {
            self.republish(blob, &state, &inner);
            state.publish_cv.notify_all();
        }
        Ok(())
    }

    /// Renew the lease of an in-flight update. Pipeline stages call
    /// this as they progress; any renewal pushes expiry a full TTL out.
    /// Renewing an expired-but-not-yet-aborted lease *revives* it (the
    /// writer beat the sweeper); renewing an aborted version fails with
    /// [`BlobError::VersionAborted`] — the fencing signal telling a
    /// presumed-dead writer to stop storing state. Renewing an
    /// already-completed (or published) version is a harmless no-op.
    pub fn renew_lease(&self, blob: BlobId, v: Version) -> Result<()> {
        let now = self.tick();
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if let Some(inf) = inner.inflight.get_mut(&v.raw()) {
            return match inf.state {
                UpdateState::Active => {
                    inf.lease_expires = now + self.lease_ttl;
                    self.renewals.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                UpdateState::Completed => Ok(()),
                UpdateState::Aborting | UpdateState::Aborted => {
                    Err(BlobError::VersionAborted { blob, version: v })
                }
            };
        }
        if inner.is_aborted(v) {
            Err(BlobError::VersionAborted { blob, version: v })
        } else if v <= inner.published {
            Ok(())
        } else {
            Err(BlobError::VersionUnknown { blob, version: v })
        }
    }

    /// `true` when some writer's lease may have lapsed (or an earlier
    /// abort is stuck mid-repair and wants a retry). One atomic load
    /// in the common all-leases-fresh case — safe to call per
    /// operation; the engine's sweeper gates on it.
    pub fn has_expired_leases(&self) -> bool {
        if self.aborting.load(Ordering::Relaxed) > 0 {
            return true;
        }
        if self.now_ticks() < self.lease_watermark.load(Ordering::Relaxed) {
            return false;
        }
        !self.scan_expired().is_empty()
    }

    /// The single-blob form of [`VersionManager::has_expired_leases`],
    /// restricted to versions strictly below `v` — what a completion
    /// stage asks before its boundary merge ("is anything I might
    /// block on dead?"). Same one-atomic fast path; the slow path
    /// locks only this blob.
    pub fn has_expired_below(&self, blob: BlobId, v: Version) -> Result<bool> {
        if self.aborting.load(Ordering::Relaxed) == 0
            && self.now_ticks() < self.lease_watermark.load(Ordering::Relaxed)
        {
            return Ok(false);
        }
        let state = self.blob_state(blob)?;
        let now = self.now_ticks();
        let inner = state.inner.lock();
        Ok(!inner.expired_leases(now, Some(v)).is_empty())
    }

    /// Every `(blob, version)` whose lease has lapsed as of the current
    /// clock, plus any version stuck in a failed abort. Sorted, and
    /// ascending per blob — aborts must run lowest-version-first so a
    /// repair only ever waits on strictly lower versions.
    pub fn expired_leases(&self) -> Vec<(BlobId, Version)> {
        self.scan_expired()
    }

    /// The single-blob list behind [`VersionManager::has_expired_below`]:
    /// expired (or abort-stuck) versions of `blob` strictly below `v`,
    /// ascending. Locks only this blob.
    pub fn expired_leases_below(&self, blob: BlobId, v: Version) -> Result<Vec<Version>> {
        let state = self.blob_state(blob)?;
        let now = self.now_ticks();
        let inner = state.inner.lock();
        Ok(inner.expired_leases(now, Some(v)))
    }

    /// Full scan behind the expiry checks. When nothing is due, raises
    /// the watermark to the earliest live expiry — but never above
    /// `now + ttl` (a lease granted mid-scan on an already-visited
    /// blob expires no earlier than that) and only if no concurrent
    /// `assign` lowered it meanwhile (the CAS); a lost race leaves the
    /// watermark stale-low, which costs a spurious scan, never a
    /// missed expiry.
    fn scan_expired(&self) -> Vec<(BlobId, Version)> {
        let wm_before = self.lease_watermark.load(Ordering::Relaxed);
        let now = self.now_ticks();
        let blobs = self.blobs.all();
        let mut out = Vec::new();
        let mut earliest = u64::MAX;
        for (id, state) in blobs {
            let inner = state.inner.lock();
            out.extend(inner.expired_leases(now, None).into_iter().map(|v| (id, v)));
            earliest = earliest.min(inner.earliest_expiry());
        }
        out.sort_unstable_by_key(|&(b, v)| (b.raw(), v.raw()));
        if out.is_empty() {
            let target = earliest.min(now.saturating_add(self.lease_ttl));
            let _ = self.lease_watermark.compare_exchange(
                wm_before,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        out
    }

    /// Begin aborting an assigned-but-unpublished version: mark it
    /// aborted (racing readers and a racing `complete` now surface
    /// [`BlobError::VersionAborted`]) and return the [`AbortTicket`]
    /// describing the repair tree the caller must store before
    /// [`VersionManager::commit_abort`]. Idempotent over a failed
    /// repair (state `Aborting` re-issues the ticket); refuses —
    /// typed, with nothing changed — once the version completed,
    /// published, or fully aborted.
    pub fn begin_abort(&self, blob: BlobId, v: Version) -> Result<AbortTicket> {
        self.tick();
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if v > inner.last_assigned() {
            return Err(BlobError::VersionUnknown { blob, version: v });
        }
        let prior = match inner.inflight.get(&v.raw()).map(|inf| inf.state) {
            Some(s @ (UpdateState::Active | UpdateState::Aborting)) => s,
            Some(UpdateState::Completed) => {
                return Err(BlobError::AbortConflict(format!(
                    "{v} already completed; publication is the version manager's job"
                )));
            }
            Some(UpdateState::Aborted) => {
                return Err(BlobError::AbortConflict(format!("{v} already aborted")));
            }
            None if inner.is_aborted(v) => {
                return Err(BlobError::AbortConflict(format!("{v} already aborted")));
            }
            None => {
                return Err(BlobError::AbortConflict(format!(
                    "{v} already published; use garbage collection to drop history"
                )));
            }
        };
        let inf = {
            let entry = inner.inflight.get_mut(&v.raw()).expect("checked above");
            entry.state = UpdateState::Aborting;
            *entry
        };
        if prior == UpdateState::Active {
            // Keep the stuck-abort gauge exact across retries: one
            // increment per version entering Aborting, one decrement
            // at commit.
            self.aborting.fetch_add(1, Ordering::Relaxed);
        }
        inner.aborted.insert(v.raw());
        // Wake SYNC waiters parked on the aborted version right away.
        state.publish_cv.notify_all();

        // Recompute the weaving inputs the dead writer was handed: for
        // every border position, the newest version `< v` creating it —
        // either still in flight (scanned here, aborted holes included:
        // their repair trees create those nodes) or already published
        // (resolved by descending `ref_root`).
        let mut overrides = Vec::new();
        for pos in border_positions(inf.range, inf.root) {
            let mut best: Option<Version> = None;
            for (&vk, other) in inner.inflight.iter() {
                if vk >= v.raw() {
                    break;
                }
                if creates_position(other.range, other.root, pos) {
                    best = Some(Version(vk));
                }
            }
            if let Some(creator) = best {
                overrides.push((pos, creator));
            }
        }
        let prev = v.prev().expect("v ≥ 1: snapshot 0 is never in flight");
        Ok(AbortTicket {
            vw: v,
            range: inf.range,
            new_root: inf.root,
            prev_size: inner.size_of(prev),
            new_size: inner.size_of(v),
            overrides,
            ref_root: inner.root_of(inner.published, self.psize),
            prev_root: inner.root_of(prev, self.psize),
        })
    }

    /// Finish an abort after the repair tree is durable: the version
    /// becomes skippable, and publication drains over the hole — every
    /// completed later version publishes immediately.
    pub fn commit_abort(&self, blob: BlobId, v: Version) -> Result<()> {
        self.tick();
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        match inner.inflight.get_mut(&v.raw()) {
            Some(inf) if inf.state == UpdateState::Aborting => inf.state = UpdateState::Aborted,
            Some(inf) => {
                return Err(BlobError::AbortConflict(format!(
                    "{v} is {:?}, not mid-abort",
                    inf.state
                )));
            }
            None => {
                return Err(BlobError::AbortConflict(format!("{v} is not in flight")));
            }
        }
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.aborting.fetch_sub(1, Ordering::Relaxed);
        let (published, skipped) = inner.drain_publishable();
        if published > 0 {
            self.published.fetch_add(published as u64, Ordering::Relaxed);
        }
        if published + skipped > 0 {
            self.republish(blob, &state, &inner);
            state.publish_cv.notify_all();
        }
        Ok(())
    }

    /// `GET_RECENT`: a recently published version (monotonic with
    /// respect to publications — garbage collection that retires up to
    /// a trailing aborted hole may regress it, see
    /// `get_recent_stays_readable_when_gc_meets_a_trailing_hole`).
    /// Aborted holes at the head of the order are skipped — the result
    /// is always readable. Served wait-free from the blob's seqlock
    /// cell: no blob mutex on this path.
    pub fn get_recent(&self, blob: BlobId) -> Result<Version> {
        let state = self.blob_state(blob)?;
        if self.lockfree {
            let (words, _) = state.hot.read();
            self.lockfree_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(Version(words[0]));
        }
        let recent = state.inner.lock().recent_readable();
        Ok(recent)
    }

    /// `true` when `v` is published for `blob` (aborted versions are
    /// never published — the order skips them).
    pub fn is_published(&self, blob: BlobId, v: Version) -> Result<bool> {
        let state = self.blob_state(blob)?;
        let inner = state.inner.lock();
        Ok(v <= inner.published && !inner.is_aborted(v))
    }

    /// `true` when `v` was aborted for `blob`.
    pub fn is_aborted(&self, blob: BlobId, v: Version) -> Result<bool> {
        Ok(self.blob_state(blob)?.inner.lock().is_aborted(v))
    }

    /// `GET_SIZE`: size of a *published* snapshot.
    pub fn get_size(&self, blob: BlobId, v: Version) -> Result<u64> {
        let state = self.blob_state(blob)?;
        let inner = state.inner.lock();
        if inner.is_aborted(v) {
            return Err(BlobError::VersionAborted { blob, version: v });
        }
        if v > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: v });
        }
        if inner.is_retired(v) {
            return Err(BlobError::VersionRetired { blob, version: v });
        }
        Ok(inner.size_of(v))
    }

    /// Everything a READ needs: the snapshot size and tree root of a
    /// published version (`None` root for the empty snapshot 0).
    pub fn read_view(&self, blob: BlobId, v: Version) -> Result<(u64, Option<RootRef>)> {
        let view = self.snapshot_view(blob, v)?;
        Ok((view.size, view.root))
    }

    /// [`VersionManager::read_view`] plus the blob's lineage. This is
    /// the one-time lookup a version-pinned `Snapshot` caches; all
    /// subsequent reads of that snapshot are VM-free.
    ///
    /// When `v` is the blob's current readable frontier — the hot case:
    /// open-latest traffic hammering one blob — the view is served
    /// wait-free from the seqlock cell without touching the blob mutex
    /// ([`VmStats::lockfree_reads`] counts exactly these). Other
    /// versions resolve under a single acquisition of the blob's lock,
    /// as before.
    pub fn snapshot_view(&self, blob: BlobId, v: Version) -> Result<ReadView> {
        self.read_views.fetch_add(1, Ordering::Relaxed);
        let state = self.blob_state(blob)?;
        if self.lockfree {
            let (words, _) = state.hot.read();
            if words[0] == v.raw() {
                // The triple was the readable frontier at publication
                // time and snapshots are immutable, so it is valid for
                // `v` forever; the read linearizes at the seqlock load.
                self.lockfree_reads.fetch_add(1, Ordering::Relaxed);
                return Ok(Self::view_from_words(&state, words));
            }
        }
        let inner = state.inner.lock();
        if inner.is_aborted(v) {
            return Err(BlobError::VersionAborted { blob, version: v });
        }
        if v > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: v });
        }
        if inner.is_retired(v) {
            return Err(BlobError::VersionRetired { blob, version: v });
        }
        Ok(ReadView {
            size: inner.size_of(v),
            root: inner.root_of(v, self.psize),
            lineage: inner.lineage.clone(),
        })
    }

    /// A [`ReadView`] reconstructed from a consistently-read hot
    /// triple: the root has offset 0 (every root does), the published
    /// span, and the published version; lineage comes from the blob's
    /// immutable copy.
    fn view_from_words(state: &BlobState, words: [u64; 3]) -> ReadView {
        let root = (words[1] > 0)
            .then(|| RootRef { version: Version(words[0]), pos: NodePos::new(0, words[2]) });
        ReadView { size: words[1], root, lineage: state.lineage.clone() }
    }

    /// The open-latest operation, fused: the blob's current readable
    /// version and its [`ReadView`], resolved from one wait-free
    /// seqlock read — the `(GET_RECENT, snapshot_view)` pair without
    /// the race window between the two calls and without the blob
    /// mutex. Counts one read-view resolution and (when the seqlock
    /// path is enabled) one [`VmStats::lockfree_reads`].
    pub fn latest_view(&self, blob: BlobId) -> Result<(Version, ReadView)> {
        self.read_views.fetch_add(1, Ordering::Relaxed);
        let state = self.blob_state(blob)?;
        if self.lockfree {
            let (words, _) = state.hot.read();
            self.lockfree_reads.fetch_add(1, Ordering::Relaxed);
            return Ok((Version(words[0]), Self::view_from_words(&state, words)));
        }
        let inner = state.inner.lock();
        let v = inner.recent_readable();
        Ok((
            v,
            ReadView {
                size: inner.size_of(v),
                root: inner.root_of(v, self.psize),
                lineage: inner.lineage.clone(),
            },
        ))
    }

    /// `SYNC`: block until `v` is published or `timeout` elapses. A
    /// reader racing an abort of `v` is woken as soon as the abort
    /// begins and gets the typed [`BlobError::VersionAborted`].
    pub fn sync(&self, blob: BlobId, v: Version, timeout: Duration) -> Result<()> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if v > inner.last_assigned() {
            return Err(BlobError::VersionUnknown { blob, version: v });
        }
        let deadline = Instant::now() + timeout;
        loop {
            if inner.is_aborted(v) {
                return Err(BlobError::VersionAborted { blob, version: v });
            }
            if inner.published >= v {
                return Ok(());
            }
            if state.publish_cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(BlobError::Timeout("snapshot publication"));
            }
        }
    }

    /// Begin garbage collection: retire every version `< keep_from`.
    ///
    /// Preconditions (all typed errors, nothing partial happens on
    /// failure): `keep_from` must be published; no update may be in
    /// flight (quiescence — the sweep must not race border
    /// resolution); no live branch may pin history below `keep_from`.
    ///
    /// On success the retired versions immediately become unreadable
    /// ([`BlobError::VersionRetired`]) and the *mark roots* — the tree
    /// roots of every retained, non-empty snapshot — are returned for
    /// the caller's mark-and-sweep.
    pub fn begin_retire(&self, blob: BlobId, keep_from: Version) -> Result<Vec<RootRef>> {
        let state = self.blob_state(blob)?;
        let mut inner = state.inner.lock();
        if keep_from > inner.published {
            return Err(BlobError::VersionNotPublished { blob, version: keep_from });
        }
        if !inner.inflight.is_empty() {
            return Err(BlobError::GcConflict(format!(
                "{} update(s) in flight; GC requires quiescence",
                inner.inflight.len()
            )));
        }
        if let Some(&pin) = inner.child_branch_points.iter().min() {
            if pin < keep_from {
                return Err(BlobError::GcConflict(format!(
                    "a branch pins history at {pin} (< {keep_from})"
                )));
            }
        }
        if keep_from <= inner.retired_before {
            // Nothing new to retire.
            return Ok(Vec::new());
        }
        inner.retired_before = keep_from;
        // Advance the conflict token only when something actually
        // retires: no-op retires cannot have swept anything, so they
        // must not make a concurrent scrub restart its mark.
        inner.retire_gen += 1;
        // Retiring up to a trailing aborted hole can *regress* the
        // readable frontier (down to v0 in the degenerate case) — the
        // hot triple must follow it, so racing readers get the typed
        // retired/readable split, never a stale root.
        self.republish(blob, &state, &inner);
        let roots = (keep_from.raw()..=inner.published.raw())
            .filter_map(|v| inner.root_of(Version(v), self.psize))
            .collect();
        Ok(roots)
    }

    /// The orphan scrubber's **metadata cut**: for every registered
    /// blob, the retained roots to mark and the in-flight updates to
    /// probe (see [`BlobScrubCut`]). Each blob's slice is captured
    /// atomically under its own lock; the cut is *not* atomic across
    /// blobs, which is sound because anything assigned after a blob's
    /// slice was taken stores its pages at or above the scrubber's
    /// page-id epoch and is exempt from the sweep (the engine takes
    /// the epoch **before** calling this).
    pub fn scrub_cut(&self) -> Vec<BlobScrubCut> {
        let mut cuts: Vec<BlobScrubCut> =
            self.blobs.all().into_iter().map(|(id, state)| self.cut_of(id, &state)).collect();
        cuts.sort_by_key(|c| c.blob.raw());
        cuts
    }

    /// One blob's slice of the mark cut, captured under its lock —
    /// identical to its entry in [`VersionManager::scrub_cut`]. This is
    /// the per-blob *restart* path: a marker that detected a retire
    /// race (see [`BlobScrubCut::retire_gen`]) re-cuts just the
    /// affected blob and walks again, leaving every other blob's
    /// already-completed mark untouched.
    pub fn scrub_cut_for(&self, blob: BlobId) -> Result<BlobScrubCut> {
        let state = self.blob_state(blob)?;
        Ok(self.cut_of(blob, &state))
    }

    /// The blob's current retire generation (bumped by every retire
    /// that actually reclaimed versions).
    pub fn retire_generation(&self, blob: BlobId) -> Result<u64> {
        Ok(self.blob_state(blob)?.inner.lock().retire_gen)
    }

    fn cut_of(&self, id: BlobId, state: &BlobState) -> BlobScrubCut {
        let inner = state.inner.lock();
        // Versions below `retired_before` were reclaimed; v0 is
        // empty. Aborted versions the frontier passed keep
        // their (complete) repair trees and are marked too.
        let first = inner.retired_before.raw().max(1);
        let roots = (first..=inner.published.raw())
            .filter_map(|v| inner.root_of(Version(v), self.psize))
            .collect();
        let inflight = inner.inflight.iter().map(|(&v, inf)| (Version(v), inf.range)).collect();
        BlobScrubCut {
            blob: id,
            lineage: inner.lineage.clone(),
            roots,
            inflight,
            retire_gen: inner.retire_gen,
        }
    }

    /// The earliest readable version of `blob` (`v0` when nothing has
    /// been retired).
    pub fn retired_before(&self, blob: BlobId) -> Result<Version> {
        Ok(self.blob_state(blob)?.inner.lock().retired_before)
    }

    /// The blob's lineage (for metadata key resolution).
    pub fn lineage(&self, blob: BlobId) -> Result<Lineage> {
        Ok(self.blob_state(blob)?.inner.lock().lineage.clone())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VmStats {
        VmStats {
            blobs: self.blobs.len() as u64,
            assigned: self.assigned.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            branches: self.branches.load(Ordering::Relaxed),
            read_views: self.read_views.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            lease_renewals: self.renewals.load(Ordering::Relaxed),
            lockfree_reads: self.lockfree_reads.load(Ordering::Relaxed),
        }
    }

    /// Arm (or disarm, with `None`) a blob's test-only mid-publication
    /// pause hook: the next publication calls `hook` after its first
    /// payload store — the torn intermediate — so deterministic
    /// interleaving tests can hold a writer there. Test infrastructure,
    /// not API.
    #[doc(hidden)]
    pub fn set_publish_pause(
        &self,
        blob: BlobId,
        hook: Option<Box<dyn Fn() + Send + Sync>>,
    ) -> Result<()> {
        self.blob_state(blob)?.hot.set_pause(hook);
        Ok(())
    }

    /// Arm (or disarm, with `None`) the test-only publication probe,
    /// called under the publishing blob's mutex with
    /// `(blob, new sequence, words)` for every republication — the
    /// stress suite's oracle feed. Test infrastructure, not API.
    #[doc(hidden)]
    pub fn set_publish_probe(&self, probe: Option<PublishProbe>) {
        self.probe_armed.store(probe.is_some(), Ordering::Relaxed);
        *self.publish_probe.lock() = probe;
    }

    /// One protocol-validated read of a blob's hot seqlock cell:
    /// `(words, sequence, retries)`. Test observable (the stress
    /// suite's reader primitive), not API.
    #[doc(hidden)]
    pub fn debug_hot_read(&self, blob: BlobId) -> Result<([u64; 3], u64, u64)> {
        Ok(self.blob_state(blob)?.hot.read_counted())
    }

    /// Raw, unvalidated `(words, sequence)` peek at a blob's hot cell —
    /// bypasses the seqlock protocol so tests can prove a paused
    /// publication really is torn. Never a correctness primitive.
    #[doc(hidden)]
    pub fn debug_peek_hot(&self, blob: BlobId) -> Result<([u64; 3], u64)> {
        Ok(self.blob_state(blob)?.hot.debug_peek())
    }
}

impl std::fmt::Debug for VersionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionManager")
            .field("psize", &self.psize)
            .field("mode", &self.mode)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSIZE: u64 = 4;

    fn vm() -> VersionManager {
        VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5))
    }

    #[test]
    fn create_starts_empty() {
        let vm = vm();
        let b = vm.create();
        assert_eq!(vm.get_recent(b).unwrap(), Version::ZERO);
        assert_eq!(vm.get_size(b, Version::ZERO).unwrap(), 0);
        let (size, root) = vm.read_view(b, Version::ZERO).unwrap();
        assert_eq!(size, 0);
        assert!(root.is_none());
    }

    #[test]
    fn unknown_blob_errors() {
        let vm = vm();
        let ghost = BlobId(999);
        assert!(matches!(vm.get_recent(ghost), Err(BlobError::BlobNotFound(_))));
        assert!(vm.assign(ghost, UpdateKind::Append { size: 4 }).is_err());
    }

    #[test]
    fn assign_sequences_versions_and_sizes() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a1.vw, Version(1));
        assert_eq!(a1.offset, 0);
        assert_eq!(a1.new_size, 8);
        assert_eq!(a1.range, PageRange::new(0, 2));
        assert_eq!(a1.new_root, NodePos::new(0, 2));
        assert!(a1.ref_root.is_none(), "nothing published yet");
        assert!(a1.prev_root.is_none(), "v0 is empty");

        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(a2.vw, Version(2));
        assert_eq!(a2.offset, 8, "append offset = previous assigned size");
        assert_eq!(a2.new_size, 12);
        assert_eq!(a2.new_root, NodePos::new(0, 4));
        // v1 not yet complete → prev root refers to the in-flight v1.
        assert_eq!(a2.prev_root.unwrap().version, Version(1));
    }

    #[test]
    fn write_validation() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(
            vm.assign(b, UpdateKind::Write { offset: 1, size: 4 }),
            Err(BlobError::WriteBeyondEnd { .. })
        ));
        assert!(matches!(
            vm.assign(b, UpdateKind::Append { size: 0 }),
            Err(BlobError::EmptyUpdate)
        ));
        vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        // Offset equal to the assigned (unpublished) size is allowed:
        // updates chain on assigned order, not publication order.
        let a = vm.assign(b, UpdateKind::Write { offset: 8, size: 4 }).unwrap();
        assert_eq!(a.vw, Version(2));
        // Overwrite within bounds does not grow the blob.
        let a3 = vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap();
        assert_eq!(a3.new_size, 12);
    }

    #[test]
    fn publication_is_total_order() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let a3 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        // Completing out of order publishes nothing until the gap fills.
        vm.complete(b, a3.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(0));
        vm.complete(b, a2.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(0));
        vm.complete(b, a1.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(3));
        // Published sizes now visible.
        assert_eq!(vm.get_size(b, Version(2)).unwrap(), 8);
    }

    #[test]
    fn get_size_requires_publication() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(matches!(vm.get_size(b, a1.vw), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        assert_eq!(vm.get_size(b, a1.vw).unwrap(), 4);
    }

    #[test]
    fn complete_validation() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(vm.complete(b, Version(1)), Err(BlobError::VersionUnknown { .. })));
        let a = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a.vw).unwrap();
        assert!(vm.complete(b, a.vw).is_err(), "double complete");
    }

    #[test]
    fn sync_blocks_until_publication() {
        let vm = Arc::new(vm());
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let vm2 = Arc::clone(&vm);
        let waiter = std::thread::spawn(move || vm2.sync(b, Version(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        vm.complete(b, a1.vw).unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn sync_times_out_and_rejects_unknown() {
        let vm = vm();
        let b = vm.create();
        assert!(matches!(
            vm.sync(b, Version(5), Duration::from_millis(5)),
            Err(BlobError::VersionUnknown { .. })
        ));
        vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(
            vm.sync(b, Version(1), Duration::from_millis(10)),
            Err(BlobError::Timeout("snapshot publication"))
        );
    }

    #[test]
    fn overrides_point_to_inflight_creators() {
        // Replays the §4.2 scenario from the meta crate's concurrent
        // test, now with the VM computing the override itself.
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 16 }).unwrap(); // v1: 4 pages
        vm.complete(b, a1.vw).unwrap();
        // C1: v2 appends pages [4,6); stays in flight.
        let a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a2.range, PageRange::new(4, 2));
        assert!(a2.overrides.is_empty(), "borders all come from published v1");
        // C2: v3 appends pages [6,8); its border (4,2) is created by v2.
        let a3 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert_eq!(a3.range, PageRange::new(6, 2));
        assert_eq!(a3.overrides, vec![(NodePos::new(4, 2), Version(2))]);
        assert_eq!(a3.ref_root.unwrap().version, Version(1));
    }

    #[test]
    fn overrides_pick_highest_inflight_version() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 16 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        // Two in-flight overwrites of page 0; a third writer of page 2
        // needs border (0,2) → must take the *newest* in-flight creator.
        vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap(); // v2
        vm.assign(b, UpdateKind::Write { offset: 0, size: 4 }).unwrap(); // v3
        let a4 = vm.assign(b, UpdateKind::Write { offset: 8, size: 4 }).unwrap(); // v4
        assert!(a4.overrides.contains(&(NodePos::new(0, 2), Version(3))));
        assert!(!a4.overrides.iter().any(|&(_, v)| v == Version(2)));
    }

    #[test]
    fn branch_requires_published_version() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(matches!(vm.branch(b, Version(1)), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        let c = vm.branch(b, Version(1)).unwrap();
        assert_ne!(c, b);
        assert_eq!(vm.get_recent(c).unwrap(), Version(1));
        assert_eq!(vm.get_size(c, Version(1)).unwrap(), 4);
        // The branch evolves independently.
        let ac = vm.assign(c, UpdateKind::Append { size: 4 }).unwrap();
        assert_eq!(ac.vw, Version(2));
        vm.complete(c, ac.vw).unwrap();
        assert_eq!(vm.get_size(c, Version(2)).unwrap(), 8);
        assert_eq!(vm.get_recent(b).unwrap(), Version(1), "parent unaffected");
        // Lineage resolves shared versions to the parent.
        let lin = vm.lineage(c).unwrap();
        assert_eq!(lin.owner_of(Version(1)), b);
        assert_eq!(lin.owner_of(Version(2)), c);
    }

    #[test]
    fn serialized_mode_blocks_until_predecessor_publishes() {
        let vm = Arc::new(VersionManager::new(
            PSIZE,
            ConcurrencyMode::SerializedMetadata,
            Duration::from_secs(5),
        ));
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(a1.overrides.is_empty());
        let vm2 = Arc::clone(&vm);
        let t0 = Instant::now();
        let second = std::thread::spawn(move || {
            let a2 = vm2.assign(b, UpdateKind::Append { size: 4 }).unwrap();
            (a2, Instant::now())
        });
        std::thread::sleep(Duration::from_millis(40));
        vm.complete(b, a1.vw).unwrap();
        let (a2, done) = second.join().unwrap();
        assert!(done - t0 >= Duration::from_millis(40), "assign was blocked");
        assert!(a2.overrides.is_empty());
        assert_eq!(a2.ref_root.unwrap().version, Version(1));
    }

    #[test]
    fn concurrent_assign_storm_is_gapless() {
        let vm = Arc::new(vm());
        let b = vm.create();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vm = Arc::clone(&vm);
            handles.push(std::thread::spawn(move || {
                let mut versions = Vec::new();
                for _ in 0..50 {
                    let a = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
                    versions.push(a.vw);
                    vm.complete(b, a.vw).unwrap();
                }
                versions
            }));
        }
        let mut all: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).map(|v| v.raw()).collect();
        all.sort_unstable();
        assert_eq!(all, (1..=400).collect::<Vec<u64>>(), "dense, unique versions");
        assert_eq!(vm.get_recent(b).unwrap(), Version(400));
        assert_eq!(vm.get_size(b, Version(400)).unwrap(), 1600);
        let stats = vm.stats();
        assert_eq!(stats.assigned, 400);
        assert_eq!(stats.published, 400);
    }

    #[test]
    fn retire_validates_and_marks() {
        let vm = vm();
        let b = vm.create();
        for _ in 0..5 {
            let a = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
            vm.complete(b, a.vw).unwrap();
        }
        // Unpublished keep_from rejected.
        assert!(matches!(
            vm.begin_retire(b, Version(9)),
            Err(BlobError::VersionNotPublished { .. })
        ));
        // Quiescence required.
        let inflight = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        assert!(matches!(vm.begin_retire(b, Version(3)), Err(BlobError::GcConflict(_))));
        vm.complete(b, inflight.vw).unwrap();
        // Success: roots of v3..=v6 returned, v1..v2 retired.
        let roots = vm.begin_retire(b, Version(3)).unwrap();
        assert_eq!(roots.len(), 4);
        assert_eq!(roots[0].version, Version(3));
        assert_eq!(vm.retired_before(b).unwrap(), Version(3));
        assert!(matches!(vm.get_size(b, Version(2)), Err(BlobError::VersionRetired { .. })));
        assert!(matches!(vm.read_view(b, Version(1)), Err(BlobError::VersionRetired { .. })));
        assert!(vm.get_size(b, Version(3)).is_ok());
        // Re-retiring below the watermark is a no-op.
        assert!(vm.begin_retire(b, Version(2)).unwrap().is_empty());
        // Branching at a retired version is rejected.
        assert!(matches!(vm.branch(b, Version(1)), Err(BlobError::VersionRetired { .. })));
    }

    #[test]
    fn branches_pin_history_against_gc() {
        let vm = vm();
        let b = vm.create();
        for _ in 0..4 {
            let a = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
            vm.complete(b, a.vw).unwrap();
        }
        let _child = vm.branch(b, Version(2)).unwrap();
        assert!(matches!(vm.begin_retire(b, Version(4)), Err(BlobError::GcConflict(_))));
        // Retiring up to (and including protection of) the pin is fine.
        assert_eq!(vm.begin_retire(b, Version(2)).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_view_resolves_once_and_counts() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 9 }).unwrap();
        // Unpublished versions are not viewable.
        assert!(matches!(vm.snapshot_view(b, a1.vw), Err(BlobError::VersionNotPublished { .. })));
        vm.complete(b, a1.vw).unwrap();
        let view = vm.snapshot_view(b, a1.vw).unwrap();
        assert_eq!(view.size, 9);
        let root = view.root.unwrap();
        assert_eq!(root.version, a1.vw);
        assert_eq!(root.pos, NodePos::new(0, 4)); // 9 B at psize 4 → 3 pages
        assert_eq!(view.lineage.owner_of(a1.vw), b);
        // Both view entry points move the read_views counter; nothing
        // else does.
        let before = vm.stats().read_views;
        vm.read_view(b, a1.vw).unwrap();
        vm.snapshot_view(b, a1.vw).unwrap();
        vm.get_size(b, a1.vw).unwrap();
        vm.get_recent(b).unwrap();
        assert_eq!(vm.stats().read_views, before + 2);
    }

    /// Drive a full abort at the VM level (the engine layers the repair
    /// tree build between the two calls).
    fn abort(vm: &VersionManager, b: BlobId, v: Version) -> AbortTicket {
        let ticket = vm.begin_abort(b, v).unwrap();
        vm.commit_abort(b, v).unwrap();
        ticket
    }

    #[test]
    fn leases_expire_on_the_logical_clock_only() {
        let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5))
            .with_lease_ttl(10);
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        assert!(!vm.has_expired_leases());
        assert!(vm.expired_leases().is_empty());
        vm.advance_clock(9);
        assert!(!vm.has_expired_leases(), "TTL not yet reached");
        vm.advance_clock(1);
        assert!(vm.has_expired_leases());
        assert_eq!(vm.expired_leases(), vec![(b, a1.vw)]);
        // Renewal revives an expired-but-unaborted lease.
        vm.renew_lease(b, a1.vw).unwrap();
        assert!(!vm.has_expired_leases());
        assert_eq!(vm.stats().lease_renewals, 1);
        // Completion retires the lease entirely.
        vm.complete(b, a1.vw).unwrap();
        vm.advance_clock(1_000);
        assert!(!vm.has_expired_leases());
    }

    #[test]
    fn abort_skips_the_hole_and_later_versions_publish() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap(); // dies
        let a3 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        vm.complete(b, a3.vw).unwrap();
        // v3 is complete but wedged behind the dead v2.
        assert_eq!(vm.get_recent(b).unwrap(), Version(1));

        let ticket = abort(&vm, b, a2.vw);
        assert_eq!(ticket.vw, Version(2));
        assert_eq!(ticket.range, PageRange::new(2, 2));
        assert_eq!(ticket.prev_size, 8);
        assert_eq!(ticket.new_size, 16);
        assert_eq!(ticket.prev_root.unwrap().version, Version(1));

        // The frontier drained over the hole; v3 is published.
        assert_eq!(vm.get_recent(b).unwrap(), Version(3));
        assert_eq!(vm.get_size(b, Version(3)).unwrap(), 24, "assigned offsets kept");
        assert!(vm.is_published(b, Version(3)).unwrap());
        // The hole is typed everywhere.
        assert!(!vm.is_published(b, Version(2)).unwrap());
        assert!(vm.is_aborted(b, Version(2)).unwrap());
        assert!(matches!(vm.get_size(b, Version(2)), Err(BlobError::VersionAborted { .. })));
        assert!(matches!(vm.snapshot_view(b, Version(2)), Err(BlobError::VersionAborted { .. })));
        assert!(matches!(vm.branch(b, Version(2)), Err(BlobError::VersionAborted { .. })));
        assert!(matches!(
            vm.sync(b, Version(2), Duration::from_millis(5)),
            Err(BlobError::VersionAborted { .. })
        ));
        let stats = vm.stats();
        assert_eq!(stats.aborted, 1);
        assert_eq!(stats.published, 2, "skipped versions are not counted as published");
    }

    #[test]
    fn get_recent_walks_past_trailing_aborted_heads() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        abort(&vm, b, a2.vw);
        // Frontier passed v2, but the newest *readable* version is v1.
        assert_eq!(vm.get_recent(b).unwrap(), Version(1));
        // A later writer publishes right over the hole.
        let a3 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a3.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(3));
    }

    #[test]
    fn abort_conflicts_are_typed_and_side_effect_free() {
        let vm = vm();
        let b = vm.create();
        // Never-assigned versions are unknown.
        assert!(matches!(vm.begin_abort(b, Version(7)), Err(BlobError::VersionUnknown { .. })));
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        // Completed updates cannot abort — publication is the VM's job.
        vm.complete(b, a1.vw).unwrap();
        assert!(matches!(vm.begin_abort(b, a1.vw), Err(BlobError::AbortConflict(_))));
        assert_eq!(vm.get_recent(b).unwrap(), Version(1), "still published");
        // Double aborts are conflicts too.
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        abort(&vm, b, a2.vw);
        assert!(matches!(vm.begin_abort(b, a2.vw), Err(BlobError::AbortConflict(_))));
        assert!(matches!(vm.commit_abort(b, a2.vw), Err(BlobError::AbortConflict(_))));
        assert_eq!(vm.stats().aborted, 1);
    }

    #[test]
    fn complete_racing_abort_is_fenced() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        // Sweeper begins the abort; the zombie writer's complete (and
        // renew — the stage fencing check) must fail typed.
        vm.begin_abort(b, a1.vw).unwrap();
        assert!(matches!(vm.complete(b, a1.vw), Err(BlobError::VersionAborted { .. })));
        assert!(matches!(vm.renew_lease(b, a1.vw), Err(BlobError::VersionAborted { .. })));
        // A failed repair leaves the version retryable.
        assert!(vm.has_expired_leases(), "Aborting state always wants a retry");
        let ticket = vm.begin_abort(b, a1.vw).unwrap();
        assert_eq!(ticket.vw, a1.vw);
        vm.commit_abort(b, a1.vw).unwrap();
        assert!(!vm.has_expired_leases());
    }

    #[test]
    fn abort_ticket_recomputes_overrides_for_inflight_creators() {
        // §4.2 scenario, with the middle writer dying: the repair tree
        // of v3 must weave against v2's (in-flight) nodes exactly as
        // the dead writer would have.
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 16 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let _a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap(); // pages [4,6)
        let a3 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap(); // pages [6,8), dies
        let ticket = vm.begin_abort(b, a3.vw).unwrap();
        assert_eq!(ticket.overrides, vec![(NodePos::new(4, 2), Version(2))]);
        assert_eq!(ticket.ref_root.unwrap().version, Version(1));
        assert_eq!(ticket.prev_root.unwrap().version, Version(2));
        vm.commit_abort(b, a3.vw).unwrap();
    }

    #[test]
    fn sync_racing_an_abort_wakes_with_the_typed_error() {
        let vm = Arc::new(vm());
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let vm2 = Arc::clone(&vm);
        let reader = std::thread::spawn(move || vm2.sync(b, Version(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        // begin_abort alone must wake the reader — it does not wait for
        // the repair to finish.
        vm.begin_abort(b, a1.vw).unwrap();
        assert_eq!(
            reader.join().unwrap(),
            Err(BlobError::VersionAborted { blob: b, version: Version(1) })
        );
        vm.commit_abort(b, a1.vw).unwrap();
    }

    #[test]
    fn branch_inherits_holes_but_not_later_ones() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        abort(&vm, b, a2.vw);
        let a3 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a3.vw).unwrap();
        let c = vm.branch(b, Version(3)).unwrap();
        // The shared hole is a hole in the child too.
        assert!(matches!(vm.get_size(c, Version(2)), Err(BlobError::VersionAborted { .. })));
        assert_eq!(vm.get_size(c, Version(3)).unwrap(), 12);
        // The child's own updates are unaffected by the parent's hole.
        let ac = vm.assign(c, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(c, ac.vw).unwrap();
        assert_eq!(vm.get_recent(c).unwrap(), Version(4));
    }

    #[test]
    fn get_recent_stays_readable_when_gc_meets_a_trailing_hole() {
        // Regression: retire up to a hole at the head of the order —
        // GET_RECENT must fall through to the (readable, empty) v0,
        // never to a retired version.
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        abort(&vm, b, a2.vw); // frontier passes v2; newest readable is v1
        vm.begin_retire(b, Version(2)).unwrap(); // retires v1
        let recent = vm.get_recent(b).unwrap();
        assert_eq!(recent, Version::ZERO);
        assert!(vm.snapshot_view(b, recent).is_ok(), "GET_RECENT must be readable");
        // The blob keeps working past the degenerate state.
        let a3 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        vm.complete(b, a3.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(3));
    }

    #[test]
    fn expiry_checks_are_watermark_gated() {
        let vm = VersionManager::new(PSIZE, ConcurrencyMode::Concurrent, Duration::from_secs(5))
            .with_lease_ttl(10);
        let b = vm.create();
        assert!(!vm.has_expired_leases(), "no leases, nothing expires");
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        // A scan before the TTL raises the stale-low watermark...
        assert!(!vm.has_expired_leases());
        assert!(!vm.has_expired_below(b, Version(9)).unwrap());
        // ...but expiry is still detected exactly at the TTL.
        vm.advance_clock(20);
        assert!(vm.has_expired_leases());
        assert!(vm.has_expired_below(b, Version(9)).unwrap());
        assert!(!vm.has_expired_below(b, a1.vw).unwrap(), "strictly-below filter");
        // A stuck abort stays visible regardless of the watermark.
        vm.begin_abort(b, a1.vw).unwrap();
        assert!(vm.has_expired_leases());
        vm.commit_abort(b, a1.vw).unwrap();
        assert!(!vm.has_expired_leases());
    }

    #[test]
    fn serialized_mode_writer_unblocks_when_predecessor_aborts() {
        let vm = Arc::new(
            VersionManager::new(PSIZE, ConcurrencyMode::SerializedMetadata, Duration::from_secs(5))
                .with_lease_ttl(5),
        );
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 4 }).unwrap();
        let vm2 = Arc::clone(&vm);
        let second = std::thread::spawn(move || vm2.assign(b, UpdateKind::Append { size: 4 }));
        std::thread::sleep(Duration::from_millis(30));
        abort(&vm, b, a1.vw);
        let a2 = second.join().unwrap().unwrap();
        assert_eq!(a2.vw, Version(2));
        vm.complete(b, a2.vw).unwrap();
        assert_eq!(vm.get_recent(b).unwrap(), Version(2));
    }

    #[test]
    fn scrub_cut_captures_roots_holes_and_inflight() {
        let vm = vm();
        let b = vm.create();
        // v1 published, v2 aborted (frontier passes it), v3 published,
        // v4 in flight, then retire v1.
        let a1 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        abort(&vm, b, a2.vw);
        let a3 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        vm.complete(b, a3.vw).unwrap();
        vm.begin_retire(b, Version(2)).unwrap(); // GC needs quiescence
        let a4 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();

        let cuts = vm.scrub_cut();
        assert_eq!(cuts.len(), 1);
        let cut = &cuts[0];
        assert_eq!(cut.blob, b);
        // Retained roots: v2 (the aborted hole's complete repair tree)
        // and v3; the retired v1 is gone, v4 is not yet a root.
        let root_versions: Vec<Version> = cut.roots.iter().map(|r| r.version).collect();
        assert_eq!(root_versions, vec![Version(2), Version(3)]);
        assert_eq!(cut.inflight, vec![(a4.vw, a4.range)]);
        assert_eq!(cut.lineage.owner_of(Version(3)), b);
        // A fresh empty blob contributes an empty cut, not an absence.
        let b2 = vm.create();
        let cuts = vm.scrub_cut();
        assert_eq!(cuts.len(), 2);
        let empty = cuts.iter().find(|c| c.blob == b2).unwrap();
        assert!(empty.roots.is_empty());
        assert!(empty.inflight.is_empty());
    }

    #[test]
    fn retire_generation_advances_only_on_real_retires() {
        let vm = vm();
        let b = vm.create();
        assert_eq!(vm.retire_generation(b).unwrap(), 0);
        let a1 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        vm.complete(b, a1.vw).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 8 }).unwrap();
        vm.complete(b, a2.vw).unwrap();
        // A retire that advances the boundary bumps the token …
        vm.begin_retire(b, Version(2)).unwrap();
        assert_eq!(vm.retire_generation(b).unwrap(), 1);
        // … and no-op retires (repeat, or below the boundary) do not:
        // they swept nothing, so no concurrent mark needs restarting.
        vm.begin_retire(b, Version(2)).unwrap();
        vm.begin_retire(b, Version(1)).unwrap();
        assert_eq!(vm.retire_generation(b).unwrap(), 1);
        let cut = vm.scrub_cut_for(b).unwrap();
        assert_eq!(cut.retire_gen, 1);
        assert_eq!(cut.blob, b);
        // The per-blob cut matches the blob's slice of the global cut.
        let global = vm.scrub_cut();
        let slice = global.iter().find(|c| c.blob == b).unwrap();
        assert_eq!(
            (slice.retire_gen, &slice.roots, &slice.inflight),
            (cut.retire_gen, &cut.roots, &cut.inflight)
        );
        // Other blobs are unaffected; unknown blobs are typed errors.
        let b2 = vm.create();
        assert_eq!(vm.retire_generation(b2).unwrap(), 0);
        assert!(vm.scrub_cut_for(BlobId(999)).is_err());
        assert!(vm.retire_generation(BlobId(999)).is_err());
    }

    #[test]
    fn append_offsets_chain_across_inflight_versions() {
        let vm = vm();
        let b = vm.create();
        let a1 = vm.assign(b, UpdateKind::Append { size: 6 }).unwrap();
        let a2 = vm.assign(b, UpdateKind::Append { size: 6 }).unwrap();
        // a2 starts where a1 *will* end, even though a1 is unpublished.
        assert_eq!(a2.offset, 6);
        assert_eq!(a2.new_size, 12);
        vm.complete(b, a1.vw).unwrap();
        vm.complete(b, a2.vw).unwrap();
        assert_eq!(vm.get_size(b, Version(2)).unwrap(), 12);
    }
}
