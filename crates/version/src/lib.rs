//! The version manager — "the key actor of the system" (paper §3.1).
//!
//! The version manager (VM):
//!
//! * assigns snapshot version numbers to WRITE/APPEND requests, fixing
//!   the per-blob **total order** of updates (§2);
//! * **publishes** versions strictly in order once their metadata is
//!   complete, which is what makes every operation atomic (§4.3: "it is
//!   up to the version manager to decide when their effects will be
//!   revealed ... The only synchronization occurs at the level of the
//!   version manager");
//! * supplies each writer with the **partial border set**: the tree
//!   positions that concurrent, lower-versioned, still-unpublished
//!   updates will create (§4.2). This is the trick that lets metadata
//!   builds proceed in parallel instead of serializing version by
//!   version — and it is computable without touching the DHT because
//!   the set of positions an update creates is a pure function of its
//!   range and root (see [`blobseer_meta::plan::creates_position`]);
//! * tracks per-version snapshot sizes (`GET_SIZE`), recent published
//!   versions (`GET_RECENT`), publication waits (`SYNC`) and the
//!   branching registry (`BRANCH`).
//!
//! The VM is centralized, as in the paper ("In our current
//! implementation, atomicity is easy to achieve, as the version manager
//! is centralized"); distribution of the VM is explicitly future work
//! there and is out of scope here too.
//!
//! ## Writer fault tolerance (beyond the paper)
//!
//! The paper defers client failures to future work; this VM does not.
//! Every assignment grants the writer a **lease** measured on a
//! deterministic logical clock ([`VersionManager::renew_lease`],
//! [`VersionManager::advance_clock`]). A writer that dies mid-update
//! stops renewing; once its lease lapses it can be **aborted**
//! ([`VersionManager::begin_abort`] / [`VersionManager::commit_abort`]):
//! a no-op *repair tree* — built from the [`AbortTicket`] — replaces
//! the metadata the dead writer owed to later versions' border sets,
//! and the total order then **skips the hole**, so every later version
//! publishes. Aborted versions are never readable; racing readers get
//! the typed `BlobError::VersionAborted`. See `docs/ARCHITECTURE.md`
//! for the full failure model and the lease state machine.
//!
//! ## Wait-free snapshot publication (beyond the paper)
//!
//! Each blob's hot triple `(latest readable version, size, root span)`
//! is additionally published through a [`SeqLock`] cell, republished
//! under the blob mutex by every frontier-moving operation. The hot
//! read paths — [`VersionManager::get_recent`],
//! [`VersionManager::latest_view`] and the latest-version case of
//! [`VersionManager::snapshot_view`] — resolve entirely from that cell:
//! no blob mutex, [`VmStats::lockfree_reads`] counts the proof. The
//! mutex survives only on the write/assign/abort/retire side. The blob
//! registry itself is sharded by blob id so unrelated blobs do not
//! serialize on one registry lock either. See the seqlock section of
//! `docs/ARCHITECTURE.md` for the protocol and why it is safe against
//! the abort path.

mod manager;
mod seqlock;
mod state;

#[doc(hidden)]
pub use manager::PublishProbe;
pub use manager::{
    AbortTicket, AssignedUpdate, BlobScrubCut, ConcurrencyMode, ReadView, UpdateKind,
    VersionManager, VmStats, DEFAULT_LEASE_TTL_TICKS,
};
pub use seqlock::SeqLock;
