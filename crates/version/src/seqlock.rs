//! A writer-serialized seqlock over a small array of `u64` words — the
//! wait-free publication cell behind the VM's hot read path.
//!
//! The version manager publishes each blob's hot triple
//! `(latest_readable_version, size, root_span)` through one of these
//! cells so `GET_RECENT` and snapshot-view construction never take the
//! blob mutex. Writers (already serialized by that mutex) bump an
//! even/odd sequence word around the payload stores; readers retry
//! until they observe the same even sequence on both sides of their
//! loads, which proves no writer overlapped the read.
//!
//! The payload is an array of `AtomicU64` accessed with `Relaxed`
//! loads/stores, so a torn *observation* (reader overlapping a writer)
//! is defined behavior — the protocol detects it via the sequence word
//! and discards it; there is no `unsafe` and no UB-prone `UnsafeCell`
//! payload. Cross-thread ordering comes from the classic fence pairing
//! (Boehm, "Can seqlocks get along with programming language memory
//! models?"): the writer's `Release` fence before its payload stores
//! pairs with the reader's `Acquire` fence after its payload loads, and
//! the final `Release` store of the even sequence pairs with the
//! reader's initial `Acquire` load.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Seqlock-published cell of `N` words. Writers must be externally
/// serialized (the VM calls [`SeqLock::publish`] only while holding the
/// owning blob's mutex); readers are wait-free in the absence of
/// writers and lock-free under contention (they retry, but never
/// block).
pub struct SeqLock<const N: usize> {
    /// Even = stable, odd = publication in progress. Starts at 0.
    seq: AtomicU64,
    words: [AtomicU64; N],
    /// Test-only spin-injection: when armed, [`SeqLock::publish`] calls
    /// the hook after storing word 0 — exactly the torn intermediate a
    /// reader must never return. One `Relaxed` load when disarmed.
    pause_armed: AtomicBool,
    pause: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl<const N: usize> SeqLock<N> {
    /// Cell pre-published with `initial` (sequence 0): constructors run
    /// before the cell is shared, so the first state needs no protocol.
    pub fn new(initial: [u64; N]) -> Self {
        SeqLock {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|i| AtomicU64::new(initial[i])),
            pause_armed: AtomicBool::new(false),
            pause: Mutex::new(None),
        }
    }

    /// Publish a new payload; returns the new (even) sequence value.
    ///
    /// Callers must be serialized: the sequence is asserted even at
    /// entry, which a concurrent publisher would violate.
    pub fn publish(&self, words: [u64; N]) -> u64 {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s % 2, 0, "concurrent publishers — writer serialization broken");
        // Odd sequence: readers that start now will retry.
        self.seq.store(s + 1, Ordering::Relaxed);
        // Pairs with the reader's Acquire fence: a reader whose payload
        // loads overlap these stores cannot miss the odd sequence.
        fence(Ordering::Release);
        for (i, slot) in self.words.iter().enumerate() {
            slot.store(words[i], Ordering::Relaxed);
            if i == 0 && self.pause_armed.load(Ordering::Relaxed) {
                if let Some(hook) = self.pause.lock().as_ref() {
                    hook();
                }
            }
        }
        // Even again: Release so a reader whose first Acquire load sees
        // s + 2 also sees every payload store above.
        self.seq.store(s + 2, Ordering::Release);
        s + 2
    }

    /// Read a consistent payload (retrying past concurrent writers);
    /// returns `(words, sequence)`. The sequence is even and strictly
    /// monotone across publications, so callers can order observations.
    pub fn read(&self) -> ([u64; N], u64) {
        let (words, seq, _) = self.read_counted();
        (words, seq)
    }

    /// [`SeqLock::read`] plus the number of retries the loop needed —
    /// the observable the interleaving tests assert on.
    pub fn read_counted(&self) -> ([u64; N], u64, u64) {
        let mut retries = 0u64;
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1.is_multiple_of(2) {
                let mut out = [0u64; N];
                for (i, slot) in self.words.iter().enumerate() {
                    out[i] = slot.load(Ordering::Relaxed);
                }
                // Pairs with the writer's Release fence; only then is
                // re-checking the sequence meaningful.
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return (out, s1, retries);
                }
            }
            retries += 1;
            std::hint::spin_loop();
        }
    }

    /// Raw unvalidated snapshot of `(words, sequence)` — deliberately
    /// bypasses the retry protocol so tests can prove the paused
    /// intermediate really is torn. Never a correctness primitive.
    #[doc(hidden)]
    pub fn debug_peek(&self) -> ([u64; N], u64) {
        let mut out = [0u64; N];
        for (i, slot) in self.words.iter().enumerate() {
            out[i] = slot.load(Ordering::Relaxed);
        }
        (out, self.seq.load(Ordering::Relaxed))
    }

    /// Arm (or disarm, with `None`) the test-only mid-publication pause
    /// hook. See [`SeqLock::publish`].
    #[doc(hidden)]
    pub fn set_pause(&self, hook: Option<Box<dyn Fn() + Send + Sync>>) {
        self.pause_armed.store(hook.is_some(), Ordering::Relaxed);
        *self.pause.lock() = hook;
    }
}

impl<const N: usize> std::fmt::Debug for SeqLock<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (words, seq) = self.debug_peek();
        f.debug_struct("SeqLock").field("seq", &seq).field("words", &&words[..]).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn initial_state_is_published_at_seq_zero() {
        let cell = SeqLock::new([7, 8, 9]);
        let (words, seq, retries) = cell.read_counted();
        assert_eq!(words, [7, 8, 9]);
        assert_eq!(seq, 0);
        assert_eq!(retries, 0);
    }

    #[test]
    fn publish_bumps_by_two_and_stays_even() {
        let cell = SeqLock::new([0; 2]);
        assert_eq!(cell.publish([1, 2]), 2);
        assert_eq!(cell.publish([3, 4]), 4);
        let (words, seq) = cell.read();
        assert_eq!(words, [3, 4]);
        assert_eq!(seq, 4);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_pair() {
        // Writer publishes [k, 2k]; any torn observation breaks the
        // w[1] == 2 * w[0] invariant.
        let cell = Arc::new(SeqLock::new([0u64, 0]));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_seq = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let (w, seq) = cell.read();
                        assert_eq!(w[1], 2 * w[0], "torn read at seq {seq}");
                        assert!(seq >= last_seq, "sequence went backwards");
                        last_seq = seq;
                    }
                })
            })
            .collect();
        for k in 1..=10_000u64 {
            cell.publish([k, 2 * k]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.read(), ([10_000, 20_000], 20_000));
    }

    #[test]
    fn debug_peek_bypasses_the_protocol() {
        let cell = SeqLock::new([5]);
        let (words, seq) = cell.debug_peek();
        assert_eq!((words, seq), ([5], 0));
    }
}
