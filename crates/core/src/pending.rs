//! Pipelined (non-blocking) updates: the [`PendingWrite`] handle.
//!
//! `Blob::write_pipelined` / `Blob::append_pipelined` split the update
//! pipeline at the version-assignment boundary. The caller's thread runs
//! the order-sensitive half — interior page pre-store and version
//! registration — and gets a `PendingWrite` back immediately; boundary
//! completion, metadata weaving and version-manager notification run on
//! the engine's pipeline pool. A single client can therefore keep N
//! updates in flight (the paper's Figure 4/5 overlap scenario) without
//! spawning threads, while the version manager's total order still
//! reflects call order.
//!
//! Dropping a `PendingWrite` without waiting does not abandon the
//! update: the completion stage was already queued and runs regardless,
//! so a successful completion publishes exactly as if the caller had
//! waited. Completion *errors*, however, surface only through
//! [`PendingWrite::wait`]/[`PendingWrite::try_wait`] — a dropped handle
//! discards them. A stage that fails or panics **aborts its version**
//! (see [`crate::abort`]): the version is retired as a no-op, the
//! total order skips it, and every later version still publishes — a
//! failed update never wedges the blob. The only way to leave a
//! genuine hole is a real client crash (process death between version
//! assignment and completion), which the version manager's writer
//! leases catch: the sweeper aborts the dead writer once its lease
//! lapses.

use std::sync::Arc;

use blobseer_types::{BlobError, BlobId, Result, Version};
use parking_lot::{Condvar, Mutex};

use crate::engine::Engine;
use crate::write::{self, Prepared, Target};

/// Completion cell shared between a [`PendingWrite`] and its queued
/// pipeline stage.
struct Cell {
    done: Mutex<Option<Result<Version>>>,
    cv: Condvar,
}

/// An update whose version is assigned but whose completion (boundary
/// merge, metadata weave, publication hand-off) is still running on the
/// engine's pipeline pool.
///
/// [`PendingWrite::version`] is available immediately — it is the
/// version the snapshot *will* publish as. [`PendingWrite::wait`] joins
/// the completion stage; [`PendingWrite::try_wait`] polls it. Note that
/// completion is *not* publication: a completed update still publishes
/// only once all lower versions have (use `sync` for read-your-writes).
#[must_use = "the update completes in the background either way, but errors surface only via wait()/try_wait()"]
pub struct PendingWrite {
    engine: Arc<Engine>,
    blob: BlobId,
    version: Version,
    cell: Arc<Cell>,
}

impl PendingWrite {
    /// Run the caller-side half of `target` and queue the rest.
    pub(crate) fn spawn(
        engine: &Arc<Engine>,
        blob: BlobId,
        data: bytes::Bytes,
        target: Target,
        tenant: blobseer_types::TenantId,
    ) -> Result<PendingWrite> {
        // QoS admission first (when configured), one-shot: a pipelined
        // API must not block its caller, so an over-quota submission
        // fails typed immediately — before the order lock, before any
        // page store, before a version exists. Zero side effects.
        crate::qos::admit_nonblocking(engine, tenant, data.len() as u64)?;
        let cost = data.len() as u64;
        // Serialize (assign, enqueue) per blob so the pipeline queue
        // holds this blob's stages in version order — a stage may block
        // on a lower version's metadata, which must never sit *behind*
        // it in the queue (see `Engine::order_locks`). Concurrent
        // submitters to the same blob serialize their caller-side
        // halves here; different blobs are unaffected, and completion
        // stages still weave metadata concurrently (§4.2). With QoS
        // on, the DRR queue keeps this FIFO guarantee per tenant lane —
        // see `crate::qos` for the cross-tenant same-blob caveat.
        let order = engine.order_lock(blob);
        let _ordered = order.lock();
        // Latency of a pipelined update spans submission to completion
        // (not publication): the same span `wait()` would cover.
        let op_timer = engine.metrics.timer();
        let is_append = matches!(target, Target::Append);
        let prepared: Prepared = write::prepare(engine, blob, data, target)?;
        let version = prepared.assigned.vw;
        let cell = Arc::new(Cell { done: Mutex::new(None), cv: Condvar::new() });
        let (eng, c) = (Arc::clone(engine), Arc::clone(&cell));
        crate::qos::dispatch(
            engine,
            tenant,
            cost,
            Box::new(move || {
                // A panicking stage must still resolve the cell, or a
                // wait() would hang until its timeout.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    write::finish(&eng, blob, prepared)
                }))
                .unwrap_or_else(|_| {
                    Err(BlobError::Internal("pipelined completion stage panicked".into()))
                });
                let result = result.inspect_err(|e| {
                    // A failed (or panicked) stage retires its version as a
                    // no-op instead of wedging the blob; VersionAborted
                    // means the sweeper or an explicit abort already did.
                    if !matches!(e, BlobError::VersionAborted { .. }) {
                        let _ = crate::abort::abort_version(&eng, blob, version);
                    }
                });
                if result.is_ok() {
                    write::record_update(&eng, is_append, op_timer);
                }
                *c.done.lock() = Some(result);
                c.cv.notify_all();
                // Completion stages double as the lease sweeper's heartbeat.
                crate::abort::maybe_sweep(&eng);
            }),
        );
        Ok(PendingWrite { engine: Arc::clone(engine), blob, version, cell })
    }

    /// The version assigned to this update. Known immediately; the
    /// snapshot publishes under this number once completion (and every
    /// lower version) finishes.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// // Known before completion: the order is already fixed.
    /// assert_eq!(p.version(), blobseer::Version(1));
    /// p.wait()?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn version(&self) -> Version {
        self.version
    }

    /// The blob being updated.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// assert_eq!(p.blob_id(), blob.id());
    /// p.wait()?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn blob_id(&self) -> BlobId {
        self.blob
    }

    /// `true` once the completion stage has finished (successfully or
    /// not). Non-blocking.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// while !p.is_done() {
    ///     std::thread::yield_now(); // overlap useful work here
    /// }
    /// p.wait()?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn is_done(&self) -> bool {
        self.cell.done.lock().is_some()
    }

    /// Poll for completion: `None` while the stage is still running,
    /// `Some(result)` once it finished. Non-blocking; can be called
    /// repeatedly (the result is `Clone`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// let v = loop {
    ///     if let Some(result) = p.try_wait() {
    ///         break result?;
    ///     }
    /// };
    /// assert_eq!(v, p.version());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn try_wait(&self) -> Option<Result<Version>> {
        self.cell.done.lock().clone()
    }

    /// Cancel this in-flight update: abort its version so the total
    /// order skips it (see [`crate::Blob::abort`]). The queued
    /// completion stage is fenced — its next lease renewal fails with
    /// [`BlobError::VersionAborted`] and it stops storing state. Fails
    /// with [`BlobError::AbortConflict`] when the stage already
    /// completed (the update will publish; too late to cancel).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # use blobseer::BlobError;
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// let v = p.version();
    /// match p.abort() {
    ///     // Cancelled: the version is a skipped hole now.
    ///     Ok(()) => assert!(matches!(
    ///         blob.snapshot(v),
    ///         Err(BlobError::VersionAborted { .. })
    ///     )),
    ///     // The stage finished first; the update will publish.
    ///     Err(BlobError::AbortConflict(_)) => blob.sync(v)?,
    ///     Err(other) => return Err(other),
    /// }
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn abort(self) -> Result<()> {
        crate::abort::abort_version(&self.engine, self.blob, self.version)
    }

    /// Block until the completion stage finishes and return the
    /// published-to-be version. Bounded by the deployment's metadata
    /// wait timeout (a crashed stage surfaces as [`BlobError::Timeout`]
    /// rather than a hang).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let p = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// let v = p.wait()?; // completion, not yet publication
    /// blob.sync(v)?;    // read-your-writes
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn wait(self) -> Result<Version> {
        let deadline = std::time::Instant::now() + self.engine.wait_timeout();
        let mut done = self.cell.done.lock();
        loop {
            if let Some(result) = done.clone() {
                return result;
            }
            if self.cell.cv.wait_until(&mut done, deadline).timed_out() {
                return match done.clone() {
                    Some(result) => result,
                    None => Err(BlobError::Timeout("pipelined update completion")),
                };
            }
        }
    }
}

impl std::fmt::Debug for PendingWrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingWrite")
            .field("blob", &self.blob)
            .field("version", &self.version)
            .field("done", &self.is_done())
            .finish()
    }
}
