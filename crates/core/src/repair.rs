//! The replica repairer: restore every live page to full replication.
//!
//! Write-path failover (PR 7) keeps updates succeeding while providers
//! are down, at the price of *degraded* pages: copies re-placed on
//! fallback providers, chain slots left empty, or copies that rotted
//! at rest (checksum failures). [`repair_replicas`] walks the same
//! metadata the orphan scrubber trusts and converges the physical
//! copy set of every live page back to its expected replica chain:
//!
//! 1. **Mark** (shared with `crate::scrub`, same epoch-cut safety
//!    argument): take the page-id epoch, cut the retained roots of
//!    every blob, and walk them — collecting each live page *with the
//!    primary provider its leaf names*. A blob whose mark races a
//!    concurrent `retire_versions` is re-cut and re-walked alone
//!    (retire-generation token), like the scrubber. Pages at or above
//!    the epoch belong to in-flight operations and are exempt — their
//!    writers are still storing copies.
//! 2. **Scan**: enumerate every provider's stored pages (one parallel
//!    job per provider). An offline provider is skipped: its copies
//!    can neither be verified nor counted, so its chain slots are
//!    treated as unrepairable-for-now rather than guessed at.
//! 3. **Diff + copy**: for each live page, the expected chain is the
//!    deterministic function writers use
//!    ([`blobseer_provider::ProviderManager::replicas_of`]). Every
//!    chain copy present is fetched and checksum-verified; every slot
//!    that is empty or holds a corrupt copy is re-filled from the
//!    first copy that verifies anywhere — chain first, then the
//!    failover fallbacks. **Repair fills, never overwrites**: a copy
//!    that verifies is never rewritten (the one exception is replacing
//!    a checksum-failed copy, whose bytes were provably not the page).
//!    Once a page's chain is fully verified, redundant failover copies
//!    outside the chain are trimmed so a later scrub/scan sees a clean
//!    deployment.
//!
//! A second pass over a healthy deployment is a no-op: every chain
//! copy verifies, nothing is copied, nothing is trimmed. Pages with
//! **no** verified copy anywhere are reported
//! ([`RepairReport::pages_unrepairable`]) and left untouched — that is
//! data loss beyond replication's budget, an operator problem (see
//! `docs/OPERATIONS.md`, "degraded mode").

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use blobseer_meta::NodeKey;
use blobseer_rt::parallel_map_jobs;
use blobseer_types::{PageId, ProviderId, Result};

use crate::engine::Engine;
use crate::scrub::mark_one_blob;

/// What a [`crate::BlobSeer::repair_replicas`] pass found and fixed.
/// On a fully healthy deployment everything but `pages_examined`,
/// `copies_verified` and `providers_scanned` is zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct live pages below the epoch cut whose copy set was
    /// diffed against the expected chain.
    pub pages_examined: usize,
    /// Live pages at or above the epoch cut, exempt (their writer is
    /// still storing copies; a later pass judges them).
    pub pages_exempt: u64,
    /// Expected-chain copies that were present and verified — left
    /// untouched.
    pub copies_verified: u64,
    /// Chain copies re-filled: slots that were empty plus corrupt
    /// copies replaced from a verified source.
    pub copies_repaired: u64,
    /// Payload bytes written by those repairs.
    pub bytes_copied: u64,
    /// Repair stores that failed at the target (offline or erroring
    /// provider); the slot stays degraded until a later pass.
    pub copies_failed: u64,
    /// Live pages with **no** verified copy on any provider: nothing
    /// was touched, the data needs an operator (backup, provider
    /// recovery). Reads of these pages fail typed
    /// ([`blobseer_types::BlobError::PageCorrupt`] or missing).
    pub pages_unrepairable: u64,
    /// Redundant failover copies outside a fully-verified chain that
    /// were trimmed.
    pub strays_trimmed: u64,
    /// Providers whose scan completed.
    pub providers_scanned: usize,
    /// Offline providers skipped (scan failed); their copies were
    /// neither counted nor trimmed — re-run after recovery.
    pub providers_skipped: usize,
    /// Per-blob mark restarts absorbed (concurrent `retire_versions`);
    /// same mechanism as [`crate::ScrubReport::mark_restarts`].
    pub mark_restarts: u64,
}

pub(crate) fn repair_replicas(engine: &Arc<Engine>) -> Result<RepairReport> {
    // ── Mark: live pages with their leaf-named primary. Same epoch-cut
    // discipline as the scrubber: epoch strictly before the metadata
    // cut, per-blob restart on a retire race, transactional visited
    // scratch (see crate::scrub for the full argument).
    let mark_timer = engine.metrics.timer();
    let epoch = engine.scrub_pid_epoch();
    let cuts = engine.vm.scrub_cut();

    let mut visited: HashSet<NodeKey> = HashSet::new();
    let mut expected: HashMap<PageId, ProviderId> = HashMap::new();
    let mut mark_restarts = 0u64;
    for mut cut in cuts {
        loop {
            let mut scratch_visited = visited.clone();
            // Leaves land in a per-attempt scratch too: unlike the
            // scrubber (where over-marking only spares pages), stale
            // entries from a failed walk could make the repairer
            // re-replicate pages of a retired tree.
            let mut scratch_pages: HashMap<PageId, ProviderId> = HashMap::new();
            let mut on_leaf = |pid: PageId, provider: ProviderId| {
                scratch_pages.insert(pid, provider);
            };
            match mark_one_blob(engine, &cut, &mut scratch_visited, &mut on_leaf) {
                Ok(()) => {
                    visited = scratch_visited;
                    expected.extend(scratch_pages);
                    break;
                }
                Err(conflict) => {
                    let gen = engine.vm.retire_generation(cut.blob).unwrap_or(cut.retire_gen);
                    if gen == cut.retire_gen {
                        return Err(conflict);
                    }
                    mark_restarts += 1;
                    cut = engine.vm.scrub_cut_for(cut.blob)?;
                }
            }
        }
    }

    // ── Scan: who physically holds what, one parallel job per
    // provider. `None` = offline (scan refused), recorded and excluded
    // from both sourcing and trimming.
    let providers = engine.providers.all_providers();
    let n = providers.len();
    let scan_providers = providers.clone();
    let scans: Vec<Option<HashSet<PageId>>> =
        parallel_map_jobs(&engine.pool, n, engine.max_parallel_jobs(), move |i| {
            scan_providers[i]
                .scan_pages()
                .ok()
                .map(|pages| pages.into_iter().map(|(pid, _)| pid).collect())
        });
    let mut holders: HashMap<ProviderId, HashSet<PageId>> = HashMap::new();
    let mut report = RepairReport { mark_restarts, ..RepairReport::default() };
    for (provider, scan) in providers.iter().zip(scans) {
        match scan {
            Some(pages) => {
                report.providers_scanned += 1;
                holders.insert(provider.id(), pages);
            }
            None => report.providers_skipped += 1,
        }
    }
    crate::metrics::EngineMetrics::record(mark_timer, &engine.metrics.repair_mark_latency);

    // ── Diff + copy.
    let copy_timer = engine.metrics.timer();
    let replication = engine.config.replication;
    for (&pid, &primary) in &expected {
        if pid >= epoch {
            report.pages_exempt += 1;
            continue;
        }
        report.pages_examined += 1;

        // The retired-aware expected chain: once a drain retired a
        // member, the chain re-derives over the survivors and this
        // pass converges the copies to it (a post-drain repair is a
        // no-op because the drain already filled exactly this chain).
        let chain = engine.providers.chain_of(primary, replication)?;
        // Everything live beyond the chain, in failover order. With a
        // retired primary the chain starts one position later, so
        // filter against the chain rather than slicing by count.
        let fallbacks: Vec<ProviderId> = engine
            .providers
            .fallbacks_of(primary, 1)?
            .into_iter()
            .filter(|id| !chain.contains(id))
            .collect();

        // Verify what the chain holds; classify each slot.
        let mut degraded: Vec<ProviderId> = Vec::new(); // empty or corrupt slot
        let mut source: Option<bytes::Bytes> = None;
        for &id in &chain {
            let holds = holders.get(&id).is_some_and(|pages| pages.contains(&pid));
            if !holds {
                // Not listed by the scan — either truly absent or the
                // provider is offline; a store to an offline target
                // fails and is counted, never guessed.
                degraded.push(id);
                continue;
            }
            match engine.providers.provider(id).and_then(|p| p.fetch_page(pid)) {
                Ok(data) => {
                    report.copies_verified += 1;
                    source.get_or_insert(data);
                }
                // Corrupt (counted by the provider) or unreadable: the
                // slot needs a re-copy either way. Replacing a
                // checksum-failed copy is the one legitimate overwrite
                // — its bytes were provably not the page.
                Err(_) => degraded.push(id),
            }
        }

        // No verified source in the chain: try the failover fallbacks
        // (where write-path failover put copies), best one wins.
        if source.is_none() {
            for &id in &fallbacks {
                let holds = holders.get(&id).is_some_and(|pages| pages.contains(&pid));
                if !holds {
                    continue;
                }
                if let Ok(data) = engine.providers.provider(id).and_then(|p| p.fetch_page(pid)) {
                    source = Some(data);
                    break;
                }
            }
        }

        let Some(data) = source else {
            // Every copy of a live page is gone or corrupt. Touch
            // nothing — a later pass (after provider recovery) may
            // still find a copy on a currently-offline provider.
            report.pages_unrepairable += 1;
            continue;
        };

        // Fill every degraded chain slot from the verified source.
        let mut chain_complete = true;
        for &id in &degraded {
            match engine
                .providers
                .provider(id)
                .and_then(|p| p.store_repaired_page(pid, data.clone()))
            {
                Ok(()) => {
                    report.copies_repaired += 1;
                    report.bytes_copied += data.len() as u64;
                }
                Err(_) => {
                    report.copies_failed += 1;
                    chain_complete = false;
                }
            }
        }

        // Trim redundant failover copies — only once the chain fully
        // verifies, so a stray is never the last good copy removed.
        if chain_complete {
            for &id in &fallbacks {
                let holds = holders.get(&id).is_some_and(|pages| pages.contains(&pid));
                if !holds {
                    continue;
                }
                if let Ok(Some(_)) = engine.providers.provider(id).and_then(|p| p.delete_page(pid))
                {
                    report.strays_trimmed += 1;
                }
            }
        }
    }
    crate::metrics::EngineMetrics::record(copy_timer, &engine.metrics.repair_copy_latency);
    Ok(report)
}
