//! Version-pinned, immutable read views: [`Snapshot`] and the zero-copy
//! [`ScatterRead`].
//!
//! A snapshot in BlobSeer never changes once published, so everything
//! the version manager knows about it — size, tree root, lineage — can
//! be resolved **once** and cached. `Snapshot` does exactly that: after
//! construction, its reads go straight to metadata and data providers
//! with zero version-manager involvement, which is what lets thousands
//! of concurrent readers share one hot snapshot without serializing on
//! the VM (asserted via the `read_views` counter in `StoreStats`).

use std::collections::HashMap;
use std::sync::Arc;

use blobseer_meta::{Lineage, RootRef};
use blobseer_types::{BlobError, BlobId, ByteRange, PageId, PageSlice, Result, Version};
use bytes::Bytes;

use crate::engine::Engine;
use crate::read;

/// An immutable read view of one published snapshot.
///
/// Obtained from [`crate::Blob::snapshot`] / [`crate::Blob::latest`]
/// (or [`crate::BlobSeer::snapshot`]). Cheap to clone; all clones share
/// the cached resolution. Reads validate against the cached size and
/// never consult the version manager again — except on a failed read,
/// where the VM is re-checked once so that a snapshot whose version was
/// retired by [`crate::Blob::retire_versions`] *after* pinning surfaces
/// the typed [`BlobError::VersionRetired`] (a live `Snapshot` does not
/// pin its version against garbage collection).
#[derive(Clone)]
pub struct Snapshot {
    engine: Arc<Engine>,
    blob: BlobId,
    version: Version,
    /// Cached from the VM at construction: snapshot size ...
    size: u64,
    /// ... tree root (`None` for the empty snapshot) ...
    root: Option<RootRef>,
    /// ... and the blob's lineage at resolution time. Lineage only
    /// grows (branches never detach), so a snapshot taken at version
    /// `v` resolves every key of versions `≤ v` forever.
    lineage: Lineage,
}

impl Snapshot {
    /// Resolve (and pin) published version `v` of `blob`. The single
    /// version-manager round-trip this handle will ever make.
    pub(crate) fn open(engine: &Arc<Engine>, blob: BlobId, v: Version) -> Result<Snapshot> {
        let view = engine.vm.snapshot_view(blob, v)?;
        Ok(Snapshot {
            engine: Arc::clone(engine),
            blob,
            version: v,
            size: view.size,
            root: view.root,
            lineage: view.lineage,
        })
    }

    /// Resolve (and pin) the blob's most recently published version in
    /// one fused VM call — version and view come from a single
    /// wait-free seqlock read, so there is no race window between a
    /// `GET_RECENT` and a separate view lookup, and no blob mutex on
    /// this path.
    pub(crate) fn open_latest(engine: &Arc<Engine>, blob: BlobId) -> Result<Snapshot> {
        let (v, view) = engine.vm.latest_view(blob)?;
        Ok(Snapshot {
            engine: Arc::clone(engine),
            blob,
            version: v,
            size: view.size,
            root: view.root,
            lineage: view.lineage,
        })
    }

    /// The blob this snapshot belongs to.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"x")?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// assert_eq!(snap.blob_id(), blob.id());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn blob_id(&self) -> BlobId {
        self.blob
    }

    /// The pinned version.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"x")?;
    /// blob.sync(v)?;
    /// // The handle stays pinned even as the blob moves on.
    /// let snap = blob.snapshot(v)?;
    /// blob.append(b"y")?;
    /// assert_eq!(snap.version(), v);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn version(&self) -> Version {
        self.version
    }

    /// Snapshot size in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(&[0u8; 100])?;
    /// blob.sync(v)?;
    /// assert_eq!(blob.snapshot(v)?.len(), 100);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn len(&self) -> u64 {
        self.size
    }

    /// `true` for the empty snapshot (version 0 of an unwritten blob).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Version;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// assert!(blob.snapshot(Version(0))?.is_empty());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn check(&self, range: ByteRange) -> Result<()> {
        if range.end() > self.size {
            return Err(BlobError::ReadBeyondEnd {
                blob: self.blob,
                version: self.version,
                requested_end: range.end(),
                snapshot_size: self.size,
            });
        }
        Ok(())
    }

    fn root(&self) -> Result<RootRef> {
        self.root
            .ok_or_else(|| BlobError::Internal("non-empty snapshot without a tree root".into()))
    }

    /// A pinned snapshot does not protect its version from
    /// [`crate::Blob::retire_versions`]: garbage collection may delete
    /// the version's metadata and pages out from under live handles.
    /// (Only *may*: GC is reachability-based, so whatever the retained
    /// versions still share remains physically present, and reads of a
    /// retired-but-fully-shared snapshot keep succeeding.) When swept
    /// data is actually hit, the read fails at the substrate — after
    /// the metadata wait, since missing nodes look like in-flight
    /// writers; this re-checks the version manager *on that error path
    /// only* and surfaces the typed [`BlobError::VersionRetired`]
    /// instead. The successful-read path stays VM-free.
    fn refine_error(&self, e: BlobError) -> BlobError {
        let substrate = matches!(
            e,
            BlobError::Timeout(_)
                | BlobError::MetadataMissing { .. }
                | BlobError::PageMissing { .. }
                | BlobError::Internal(_)
        );
        if substrate {
            if let Err(check) = self.engine.vm.snapshot_view(self.blob, self.version) {
                return check;
            }
        }
        e
    }

    /// Read `range` into a fresh contiguous buffer.
    ///
    /// When the whole range falls inside a single page, the returned
    /// [`Bytes`] is a refcounted window of the stored page (no copy);
    /// multi-page ranges are gathered into one allocation. Use
    /// [`Snapshot::read_scatter`] to avoid the gather entirely.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"hello, world")?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// assert_eq!(&snap.read(ByteRange::new(7, 5))?[..], b"world");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn read(&self, range: ByteRange) -> Result<Bytes> {
        let op_timer = self.engine.metrics.timer();
        let scatter = self.scatter_inner(range)?;
        self.engine.metrics.read_ops.increment();
        crate::metrics::EngineMetrics::record(op_timer, &self.engine.metrics.read_latency);
        Ok(scatter.into_bytes())
    }

    /// Read exactly `buf.len()` bytes at `offset` into a caller-owned
    /// buffer (the paper's `READ` signature; reusable across calls).
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"reuse me")?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// let mut buf = [0u8; 5];
    /// snap.read_into(0, &mut buf)?; // no allocation per call
    /// assert_eq!(&buf, b"reuse");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let op_timer = self.engine.metrics.timer();
        let request = ByteRange::new(offset, buf.len() as u64);
        self.check(request)?;
        if request.is_empty() {
            return Ok(());
        }
        read::plan_slices(&self.engine, &self.lineage, self.root()?, request)
            .and_then(|slices| read::fetch_slices_into(&self.engine, slices, buf))
            .map_err(|e| self.refine_error(e))?;
        self.engine.metrics.read_ops.increment();
        crate::metrics::EngineMetrics::record(op_timer, &self.engine.metrics.read_latency);
        Ok(())
    }

    /// Zero-copy scatter read: fetch `range` as refcounted page windows
    /// without assembling a contiguous buffer — the read-side dual of
    /// the zero-copy write path. For page-aligned ranges every segment
    /// aliases the stored page directly (pointer-identical `Bytes`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(&vec![7u8; 2 * 4096])?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(0, 2 * 4096))?;
    /// // One refcounted window per stored page; nothing was gathered.
    /// assert_eq!(scatter.segments().len(), 2);
    /// assert_eq!(scatter.len(), 2 * 4096);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn read_scatter(&self, range: ByteRange) -> Result<ScatterRead> {
        let op_timer = self.engine.metrics.timer();
        let scatter = self.scatter_inner(range)?;
        self.engine.metrics.read_scatter_ops.increment();
        crate::metrics::EngineMetrics::record(op_timer, &self.engine.metrics.read_scatter_latency);
        Ok(scatter)
    }

    /// Shared body of [`Snapshot::read`] and [`Snapshot::read_scatter`]
    /// — factored out so each public entry point records its *own*
    /// counter and latency histogram exactly once.
    fn scatter_inner(&self, range: ByteRange) -> Result<ScatterRead> {
        self.check(range)?;
        if range.is_empty() {
            return Ok(ScatterRead { range, segments: Vec::new() });
        }
        read::plan_slices(&self.engine, &self.lineage, self.root()?, range)
            .and_then(|slices| Self::fetch_segments(&self.engine, range, slices))
            .map(|segments| ScatterRead { range, segments })
            .map_err(|e| self.refine_error(e))
    }

    /// Vectored read: fetch every range of `requests`, planning them
    /// all in **one** segment-tree pass (shared upper tree levels are
    /// fetched once, not once per range) and fetching each distinct
    /// page window **once** — overlapping requests that hit the same
    /// window of the same page share a single provider fetch, every
    /// request receiving a refcounted clone of the same buffer
    /// (pointer-identical `Bytes`). Returns one [`ScatterRead`] per
    /// request, in request order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(&vec![1u8; 2 * 4096])?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// let reads = snap.readv(&[ByteRange::new(0, 4096), ByteRange::new(0, 4096)])?;
    /// // Overlapping requests share one fetch of the common page.
    /// let (a, b) = (&reads[0].segments()[0].data, &reads[1].segments()[0].data);
    /// assert_eq!(a.as_ptr(), b.as_ptr());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn readv(&self, requests: &[ByteRange]) -> Result<Vec<ScatterRead>> {
        let op_timer = self.engine.metrics.timer();
        for &r in requests {
            self.check(r)?;
        }
        if requests.iter().all(|r| r.is_empty()) {
            return Ok(requests
                .iter()
                .map(|&range| ScatterRead { range, segments: Vec::new() })
                .collect());
        }
        let plans = read::plan_slices_multi(&self.engine, &self.lineage, self.root()?, requests)
            .map_err(|e| self.refine_error(e))?;

        // Dedup identical (page, window) fetches across requests.
        let mut unique: Vec<PageSlice> = Vec::new();
        let mut seen: HashMap<(PageId, u64, u64), usize> = HashMap::new();
        let assignments: Vec<Vec<(u64, usize)>> = plans
            .iter()
            .map(|slices| {
                slices
                    .iter()
                    .map(|s| {
                        let key = (s.descriptor.pid, s.within.offset, s.within.size);
                        let idx = *seen.entry(key).or_insert_with(|| {
                            unique.push(*s);
                            unique.len() - 1
                        });
                        (s.buffer_offset, idx)
                    })
                    .collect()
            })
            .collect();
        let fetched =
            read::fetch_slices_data(&self.engine, unique).map_err(|e| self.refine_error(e))?;
        self.engine.metrics.readv_ops.increment();
        crate::metrics::EngineMetrics::record(op_timer, &self.engine.metrics.readv_latency);

        Ok(requests
            .iter()
            .zip(assignments)
            .map(|(&range, parts)| {
                let mut segments: Vec<ScatterSegment> = parts
                    .into_iter()
                    .map(|(buffer_offset, idx)| ScatterSegment {
                        offset: range.offset + buffer_offset,
                        data: fetched[idx].clone(),
                    })
                    .collect();
                segments.sort_by_key(|s| s.offset);
                ScatterRead { range, segments }
            })
            .collect())
    }

    fn fetch_segments(
        engine: &Arc<Engine>,
        range: ByteRange,
        slices: Vec<PageSlice>,
    ) -> Result<Vec<ScatterSegment>> {
        let mut parts = read::fetch_slices(engine, slices)?;
        parts.sort_by_key(|&(buffer_offset, _)| buffer_offset);
        Ok(parts
            .into_iter()
            .map(|(buffer_offset, data)| ScatterSegment {
                offset: range.offset + buffer_offset,
                data,
            })
            .collect())
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("blob", &self.blob)
            .field("version", &self.version)
            .field("size", &self.size)
            .finish()
    }
}

/// One contiguous piece of a [`ScatterRead`]: a refcounted window of a
/// stored page.
#[derive(Clone, Debug)]
pub struct ScatterSegment {
    /// Absolute byte offset of this segment within the blob snapshot.
    pub offset: u64,
    /// The bytes, aliasing provider storage (no copy was made).
    pub data: Bytes,
}

/// The result of a zero-copy read: the requested range as a sequence of
/// page-backed segments, in offset order, tiling the range exactly.
///
/// Iterate the segments to stream them out (e.g. vectored socket
/// writes), or call [`ScatterRead::into_bytes`] to gather into one
/// contiguous buffer when an API demands it.
#[derive(Clone, Debug)]
pub struct ScatterRead {
    range: ByteRange,
    segments: Vec<ScatterSegment>,
}

impl ScatterRead {
    /// The byte range this read covers.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(2, 5))?;
    /// assert_eq!(scatter.range(), ByteRange::new(2, 5));
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn range(&self) -> ByteRange {
        self.range
    }

    /// Total bytes covered (the sum of all segment lengths).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(0, 7))?;
    /// assert_eq!(scatter.len(), 7);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn len(&self) -> u64 {
        self.range.size
    }

    /// `true` when the read covered no bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// assert!(snap.read_scatter(ByteRange::new(3, 0))?.is_empty());
    /// assert!(!snap.read_scatter(ByteRange::new(0, 1))?.is_empty());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The segments, ordered by offset.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(0, 7))?;
    /// for seg in scatter.segments() {
    ///     assert!(seg.offset + seg.data.len() as u64 <= 7);
    /// }
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn segments(&self) -> &[ScatterSegment] {
        &self.segments
    }

    /// Iterate the segment payloads in offset order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(0, 7))?;
    /// // e.g. feed the windows to a vectored socket write.
    /// let total: usize = scatter.iter().map(|b| b.len()).sum();
    /// assert_eq!(total, 7);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = &Bytes> {
        self.segments.iter().map(|s| &s.data)
    }

    /// Gather into one contiguous buffer. Borrows the single-segment
    /// fast path: a read within one page returns the page window itself
    /// (still zero-copy).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// # let v = blob.append(b"scatter")?;
    /// # blob.sync(v)?;
    /// # let snap = blob.snapshot(v)?;
    /// let scatter = snap.read_scatter(ByteRange::new(0, 7))?;
    /// assert_eq!(&scatter.into_bytes()[..], b"scatter");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn into_bytes(self) -> Bytes {
        match self.segments.len() {
            0 => Bytes::new(),
            1 => self.segments.into_iter().next().expect("one segment").data,
            _ => {
                let mut out = Vec::with_capacity(self.range.size as usize);
                for s in &self.segments {
                    out.extend_from_slice(&s.data);
                }
                Bytes::from(out)
            }
        }
    }
}

impl IntoIterator for ScatterRead {
    type Item = ScatterSegment;
    type IntoIter = std::vec::IntoIter<ScatterSegment>;

    fn into_iter(self) -> Self::IntoIter {
        self.segments.into_iter()
    }
}
