//! Version garbage collection: reclaiming pages and metadata of retired
//! snapshots.
//!
//! The paper's versioning never deletes anything — space efficiency
//! comes from sharing (§4.3) — but any long-running deployment
//! eventually wants to drop ancient history. Because snapshots share
//! pages and subtrees, deletion must be **reachability-based**:
//!
//! 1. the version manager retires versions `< keep_from` (validating
//!    quiescence and branch pins, and making the versions unreadable);
//! 2. **mark**: walk the trees of every retained snapshot, collecting
//!    reachable node keys — shared subtrees created by retired versions
//!    are reachable and survive;
//! 3. **sweep**: delete this blob's nodes from retired versions that
//!    were not marked; the pages named by swept leaves are — by the
//!    1:1 leaf↔page property of immutable trees — unreferenced, and
//!    are deleted from their providers (replica chains included).

use std::collections::HashSet;
use std::sync::Arc;

use blobseer_meta::{collect_tree_pages, NodeKey, TreeReader};
use blobseer_types::{BlobId, Result, Version};

use crate::engine::Engine;

/// What a [`crate::BlobSeer::retire_versions`] call reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Tree nodes deleted from the metadata DHT.
    pub nodes_removed: usize,
    /// Distinct pages deleted (each may have had several replicas).
    pub pages_removed: usize,
    /// Page payload bytes reclaimed, replicas included.
    pub bytes_reclaimed: u64,
}

pub(crate) fn retire_versions(
    engine: &Arc<Engine>,
    blob: BlobId,
    keep_from: Version,
) -> Result<GcReport> {
    // 1. Retire at the version manager (all validation lives there).
    let roots = engine.vm.begin_retire(blob, keep_from)?;
    if roots.is_empty() {
        return Ok(GcReport::default());
    }
    let lineage = engine.vm.lineage(blob)?;
    let reader = TreeReader::new(&engine.meta, &lineage);

    // 2. Mark: every node reachable from a retained root. Published
    // trees are complete, so non-blocking fetches suffice. The shared
    // walk (`collect_tree_pages`, also the orphan scrubber's mark)
    // fills `reachable` as its visited set; the leaves themselves are
    // not needed here — the sweep derives orphaned pages from the
    // removed leaf *nodes*.
    let mut reachable: HashSet<NodeKey> = HashSet::new();
    for root in &roots {
        collect_tree_pages(&reader, *root, &mut reachable, &mut |_, _| {})?;
    }

    // 3. Sweep nodes, then delete the orphaned pages on every replica.
    let (nodes_removed, orphaned) = engine.meta.sweep_retired(blob, keep_from, &reachable);
    let mut bytes_reclaimed = 0u64;
    let mut pages_removed = 0usize;
    for (pid, primary) in orphaned {
        // Retired-aware: the copies live on the current chain (which
        // skips drained-and-retired members), not necessarily on the
        // leaf's literal primary.
        let mut targets = engine.providers.chain_of(primary, engine.config.replication)?;
        // Plus the literal primary if it differs (pre-drain copies a
        // failed drain left behind are still best-effort deleted).
        if !targets.contains(&primary) {
            targets.push(primary);
        }
        let mut any = false;
        for target in targets {
            // Best effort: a failed provider keeps its (orphaned) copy;
            // it can be re-swept after recovery.
            if let Ok(provider) = engine.providers.provider(target) {
                if provider.is_available() {
                    if let Ok(Some(bytes)) = provider.delete_page(pid) {
                        bytes_reclaimed += bytes;
                        any = true;
                    }
                }
            }
        }
        if any {
            pages_removed += 1;
        }
    }
    Ok(GcReport { nodes_removed, pages_removed, bytes_reclaimed })
}
